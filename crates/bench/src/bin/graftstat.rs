//! `graftstat`: summarize or diff the JSON run artifacts that the
//! table/figure binaries write with `--json`.
//!
//! With one artifact it prints a summary (tables, sample count, distinct
//! metrics, wall clock). With two it diffs them per indexed sample
//! (robust `min_ns` estimates) and per counter, and declares drift when
//! any sample moved by more than the threshold.
//!
//! Two subcommands read the flight recorder's output back out of an
//! artifact: `graftstat timeline <run.json>` prints the recorded trace
//! events in causal order — sorted by `(ts_ns, trace id, seq)`, the
//! same total order the kernel's merged cross-shard timeline uses — and
//! `graftstat postmortem <run.json>` renders every quarantine
//! postmortem report embedded in the artifact (Table 12's drill pair),
//! including the event tail that reconstructs the detach.

use std::fmt::Write as _;

use graft_core::artifact::RunArtifact;
use graft_telemetry::json::Json;

/// Writes to stdout, ignoring EPIPE (e.g. when piped through `head`).
fn emit(text: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

const USAGE: &str = "usage: graftstat <baseline.json> [candidate.json] [--threshold <pct>]\n       graftstat timeline <run.json>\n       graftstat postmortem <run.json>";

/// Relative change of one indexed sample between two artifacts.
#[derive(Debug, Clone, PartialEq)]
struct SampleDelta {
    key: String,
    base_ns: f64,
    cand_ns: f64,
}

impl SampleDelta {
    /// Percent change candidate-over-baseline; 0 when the baseline is 0.
    fn pct(&self) -> f64 {
        if self.base_ns == 0.0 {
            0.0
        } else {
            (self.cand_ns - self.base_ns) / self.base_ns * 100.0
        }
    }
}

/// The full comparison of two artifacts.
#[derive(Debug, Clone, Default)]
struct Report {
    /// Per-sample deltas for keys present in both artifacts.
    samples: Vec<SampleDelta>,
    /// Sample keys present in only one side: `(key, in_baseline)`.
    missing: Vec<(String, bool)>,
    /// Counters whose value changed: `(name, baseline, candidate)`.
    counters: Vec<(String, u64, u64)>,
}

impl Report {
    /// True when nothing moved at all — the self-diff invariant.
    fn zero_drift(&self) -> bool {
        self.missing.is_empty()
            && self.counters.is_empty()
            && self.samples.iter().all(|d| d.pct() == 0.0)
    }

    /// Samples that moved by more than `threshold` percent (absolute).
    fn drifted(&self, threshold: f64) -> Vec<&SampleDelta> {
        self.samples
            .iter()
            .filter(|d| d.pct().abs() > threshold)
            .collect()
    }
}

/// Counter names and values of one artifact, for the diff.
fn counters_of(a: &RunArtifact) -> Vec<(String, u64)> {
    a.metrics
        .get("counters")
        .and_then(Json::as_obj)
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default()
}

/// Diffs two artifacts structurally: shared sample keys become deltas,
/// one-sided keys are reported as missing, and counters are compared by
/// name.
fn diff(base: &RunArtifact, cand: &RunArtifact) -> Report {
    let mut report = Report::default();
    for key in base.samples.keys() {
        match (base.sample_best_ns(key), cand.sample_best_ns(key)) {
            (Some(b), Some(c)) => report.samples.push(SampleDelta {
                key: key.clone(),
                base_ns: b,
                cand_ns: c,
            }),
            _ => report.missing.push((key.clone(), true)),
        }
    }
    for key in cand.samples.keys() {
        if !base.samples.contains_key(key) {
            report.missing.push((key.clone(), false));
        }
    }
    let base_counters = counters_of(base);
    let cand_counters = counters_of(cand);
    let mut names: Vec<&String> = base_counters.iter().map(|(k, _)| k).collect();
    names.extend(cand_counters.iter().map(|(k, _)| k));
    names.sort();
    names.dedup();
    let value = |set: &[(String, u64)], name: &str| {
        set.iter().find(|(k, _)| k == name).map(|&(_, v)| v).unwrap_or(0)
    };
    for name in names {
        let (b, c) = (value(&base_counters, name), value(&cand_counters, name));
        if b != c {
            report.counters.push((name.clone(), b, c));
        }
    }
    report
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// One-artifact mode: a human summary of what the run recorded.
fn summarize(path: &str, a: &RunArtifact) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "artifact {path}");
    let _ = writeln!(out, "  tables:   {}", {
        let names: Vec<&str> = a.tables.keys().map(String::as_str).collect();
        names.join(", ")
    });
    let _ = writeln!(out, "  samples:  {}", a.samples.len());
    let _ = writeln!(out, "  metrics:  {} distinct", a.distinct_metrics());
    let _ = writeln!(out, "  wall:     {}", fmt_ns(a.wall_clock.as_nanos() as f64));
    let mut keyed: Vec<(&String, f64)> = a
        .samples
        .keys()
        .filter_map(|k| a.sample_best_ns(k).map(|ns| (k, ns)))
        .collect();
    keyed.sort_by(|x, y| x.0.cmp(y.0));
    for (key, ns) in keyed {
        let _ = writeln!(out, "  {key:<44} {:>12}", fmt_ns(ns));
    }
    // The ABI-level counters — bind cache behaviour, batching, and
    // buffer reuse on the upcall transport — plus everything else the
    // telemetry registry recorded during the run.
    let mut counters = counters_of(a);
    counters.sort();
    if !counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for (name, v) in &counters {
            let _ = writeln!(out, "    {name:<42} {v:>12}");
        }
    }
    if let Some(hists) = a.metrics.get("histograms").and_then(Json::as_arr) {
        for h in hists {
            let (Some(name), Some(count)) = (
                h.get("name").and_then(Json::as_str),
                h.get("count").and_then(Json::as_u64),
            ) else {
                continue;
            };
            let mean = h.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
            let p50 = h.get("p50").and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(out, "    hist {name:<37} n={count} mean={mean:.1} p50={p50:.0}");
        }
    }
    out.push_str(&summarize_kernel(a));
    out.push_str(&summarize_shards(a));
    out.push_str(&summarize_recovery(a));
    out.push_str(&summarize_durable(a));
    out.push_str(&summarize_server(a));
    out
}

/// The durable-logdisk section: scrub/audit activity, checksum
/// failures and quarantines, point-in-time restores, and how much
/// history the disk retains, from the `ld.*` durability namespace.
/// Empty when the run never scrubbed, restored, or merged. Checksum
/// failures outside a bit-rot fault drill mean real (not injected)
/// corruption, so they get a WARN bar.
fn summarize_durable(a: &RunArtifact) -> String {
    let mut out = String::new();
    let scrub_passes = a.counter("ld.scrub.passes");
    let restores = a.counter("ld.restores");
    let merges = a.counter("ld.merge.passes");
    if scrub_passes == 0 && restores == 0 && merges == 0 {
        return out;
    }
    let _ = writeln!(out, "  durable logdisk:");
    let scrubbed = a.counter("ld.scrub.segments");
    let failures = a.counter("ld.checksum_failures");
    let _ = writeln!(
        out,
        "    scrub: passes {scrub_passes}  segments {scrubbed}  checksum failures {failures}  quarantined {}",
        a.counter("ld.quarantined"),
    );
    let _ = writeln!(
        out,
        "    restores: {restores}  mappings materialized {}",
        a.counter("ld.restored_mappings"),
    );
    let _ = writeln!(
        out,
        "    retention: merges {merges}  merged segments {}  pruned entries {}  retained {} entries / {} segments",
        a.counter("ld.merge.merged_segments"),
        a.counter("ld.merge.pruned_entries"),
        a.counter("ld.retained_entries"),
        a.counter("ld.retained_segments"),
    );
    if failures > 0 && a.counter("disk.faults.bitrot") == 0 {
        out.push_str(
            "  !! WARN: checksum failures with no bit-rot drill armed — real corruption\n",
        );
    }
    out
}

/// The recovery section: supervisor salvage activity, fault-injection
/// accounting, and Logical Disk crash/rebuild traffic from the
/// `kernel.recovery.*`, `disk.faults.*`, and `ld.*` namespaces. Empty
/// when the run neither salvaged nor injected nor crashed.
fn summarize_recovery(a: &RunArtifact) -> String {
    let mut out = String::new();
    let salvages = a.counter("kernel.recovery.salvages");
    let injected = a.counter("disk.faults.injected");
    let crashes = a.counter("ld.crashes") + a.counter("disk.faults.crashes");
    if salvages == 0 && injected == 0 && crashes == 0 {
        return out;
    }
    let _ = writeln!(out, "  recovery:");
    let _ = writeln!(
        out,
        "    salvages {salvages}  salvaged words {}  lost mappings {}  auto-readmits {}  bans {}",
        a.counter("kernel.recovery.salvaged_words"),
        a.counter("kernel.recovery.lost_mappings"),
        a.counter("kernel.recovery.auto_readmits"),
        a.counter("kernel.recovery.bans"),
    );
    let _ = writeln!(
        out,
        "    fault injection: ios {}  injected {injected}  retries {}  torn writes {}  exhausted {}  crashes {}",
        a.counter("disk.faulty_ios"),
        a.counter("disk.retries"),
        a.counter("disk.torn_writes"),
        a.counter("disk.faults.exhausted"),
        a.counter("disk.faults.crashes"),
    );
    let _ = writeln!(
        out,
        "    logical disk: crashes {}  rebuilds {}  replayed mappings {}",
        a.counter("ld.crashes"),
        a.counter("ld.rebuilds"),
        a.counter("ld.rebuilt_mappings"),
    );
    out
}

/// The graft-server section: admission outcomes, tenant standing, and
/// service latency from the `server.*` namespace. Empty when the run
/// never served a wire request.
fn summarize_server(a: &RunArtifact) -> String {
    let mut out = String::new();
    let requests = a.counter("server.requests");
    if requests == 0 {
        return out;
    }
    let _ = writeln!(out, "  graft-server:");
    let _ = writeln!(
        out,
        "    requests {requests}  served {}  replies {}  conns {}  in-flight peak {}",
        a.counter("server.served"),
        a.counter("server.replies"),
        a.counter("server.conns"),
        a.counter("server.inflight.peak"),
    );
    let _ = writeln!(
        out,
        "    admission: rejected overloaded {}  quota {}  quarantined {}  malformed frames {}",
        a.counter("server.rejected.overloaded"),
        a.counter("server.rejected.quota"),
        a.counter("server.rejected.quarantined"),
        a.counter("server.malformed"),
    );
    let _ = writeln!(
        out,
        "    tenants: {}  quarantined {}",
        a.counter("server.tenants"),
        a.counter("server.tenants.quarantined"),
    );
    let service = a
        .metrics
        .get("histograms")
        .and_then(Json::as_arr)
        .and_then(|hs| {
            hs.iter()
                .find(|h| h.get("name").and_then(Json::as_str) == Some("server.service_ns"))
        });
    if let Some(h) = service {
        let p = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "    service latency: p50={} p99={} p999={} ({} samples)",
            fmt_ns(p("p50")),
            fmt_ns(p("p99")),
            fmt_ns(p("p999")),
            h.get("count").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    out
}

/// The sharded-kernel section: per-shard dispatch volume, epoch/mailbox
/// control-plane traffic, and shard balance from the `kernel.shard.*`
/// namespace. Empty when the run never used a [`ShardedHost`].
fn summarize_shards(a: &RunArtifact) -> String {
    let mut out = String::new();
    let dispatches = a.counter("kernel.shard.dispatches");
    if dispatches == 0 {
        return out;
    }
    let _ = writeln!(out, "  graft-host (sharded):");
    let _ = writeln!(
        out,
        "    shards {}  dispatches {dispatches}  invocations {}  traps {}  detaches {}",
        a.counter("kernel.shard.count"),
        a.counter("kernel.shard.invocations"),
        a.counter("kernel.shard.traps"),
        a.counter("kernel.shard.detaches"),
    );
    let _ = writeln!(
        out,
        "    control plane: installs {}  uninstalls {}  readmits {}  epoch {}  epoch syncs {}  mailbox ops {}  flushes {}",
        a.counter("kernel.shard.installs"),
        a.counter("kernel.shard.uninstalls"),
        a.counter("kernel.shard.readmits"),
        a.counter("kernel.shard.epoch"),
        a.counter("kernel.shard.epoch_syncs"),
        a.counter("kernel.shard.mailbox_ops"),
        a.counter("kernel.shard.flushes"),
    );
    let hist = |name: &str| {
        a.metrics
            .get("histograms")
            .and_then(Json::as_arr)
            .and_then(|hs| {
                hs.iter()
                    .find(|h| h.get("name").and_then(Json::as_str) == Some(name))
            })
    };
    if let Some(h) = hist("kernel.shard.load") {
        let mean = h.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
        let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "    shard load: {count} shard lifetimes, mean {mean:.0} dispatches each"
        );
    }
    let stealing = a.counter("kernel.shard.steal_mode") > 0;
    let enqueued = a.counter("kernel.shard.enqueued");
    if enqueued > 0 {
        let _ = writeln!(
            out,
            "    adaptive plane: enqueued {enqueued}  diverted {}  steals {}  steal fails {}  batches {}",
            a.counter("kernel.shard.diverted"),
            a.counter("kernel.shard.steals"),
            a.counter("kernel.shard.steal_fail"),
            a.counter("kernel.shard.batches"),
        );
        if let Some(h) = hist("kernel.shard.queue_depth") {
            let mean = h.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
            let p99 = h.get("p99").and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "    queue depth after drain: mean={mean:.1} p99={p99:.0}"
            );
        }
    }
    if let Some(h) = hist("kernel.shard.imbalance_pct") {
        let mean = h.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
        let p99 = h.get("p99").and_then(Json::as_f64).unwrap_or(0.0);
        // With hash placement only, ≥20% means the dispatch keys are
        // skewing the shards badly enough that the ladder's scaling
        // numbers stop being about the dispatch plane. When the run
        // used the work-stealing plane the bar tightens to the Table 13
        // gate: stealing is supposed to hold (max-min)/mean under 5%
        // even on a 99/1 key skew, so anything above that means the
        // plane is misbehaving, not the keys.
        let threshold = if stealing { 5.0 } else { 20.0 };
        let warn = match (stealing, mean >= threshold) {
            (_, false) => "",
            (true, true) => "  !! WARN: imbalance >= 5% with stealing on, plane is misbehaving",
            (false, true) => "  !! WARN: imbalance >= 20%, dispatch keys are skewed",
        };
        let _ = writeln!(
            out,
            "    imbalance (max-min)/mean: mean={mean:.1}% p99={p99:.0}%{warn}"
        );
    }
    out
}

/// The graft-host section of the summary: dispatch volume, the verdict
/// mix, supervisor activity, and the chain-depth histogram, all from
/// the `kernel.*` telemetry namespace. Empty when the run never touched
/// a host.
fn summarize_kernel(a: &RunArtifact) -> String {
    let mut out = String::new();
    let dispatches = a.counter("kernel.dispatches");
    if dispatches == 0 {
        return out;
    }
    let pct = |n: u64| n as f64 * 100.0 / dispatches as f64;
    let (over, cont, def) = (
        a.counter("kernel.verdict_override"),
        a.counter("kernel.verdict_continue"),
        a.counter("kernel.verdict_default"),
    );
    let _ = writeln!(out, "  graft-host:");
    let _ = writeln!(
        out,
        "    dispatches {dispatches}  invocations {}  traps {}",
        a.counter("kernel.invocations"),
        a.counter("kernel.traps"),
    );
    let _ = writeln!(
        out,
        "    verdict mix: override {over} ({:.1}%)  continue {cont} ({:.1}%)  default {def} ({:.1}%)",
        pct(over),
        pct(cont),
        pct(def),
    );
    let _ = writeln!(
        out,
        "    supervisor: quarantine trips {}  readmits {}  installs {}  uninstalls {}  marshal failures {}",
        a.counter("kernel.quarantine_trips"),
        a.counter("kernel.readmits"),
        a.counter("kernel.installs"),
        a.counter("kernel.uninstalls"),
        a.counter("kernel.marshal_failures"),
    );
    let depth = a
        .metrics
        .get("histograms")
        .and_then(Json::as_arr)
        .and_then(|hs| {
            hs.iter()
                .find(|h| h.get("name").and_then(Json::as_str) == Some("kernel.chain_depth"))
        });
    if let Some(h) = depth {
        let mean = h.get("mean").and_then(Json::as_f64).unwrap_or(0.0);
        let p99 = h.get("p99").and_then(Json::as_f64).unwrap_or(0.0);
        let buckets: Vec<String> = h
            .get("buckets")
            .and_then(Json::as_arr)
            .map(|bs| {
                bs.iter()
                    .filter_map(|b| {
                        let arr = b.as_arr()?;
                        let (lo, n) = (arr.first()?.as_u64()?, arr.get(1)?.as_u64()?);
                        (n > 0).then(|| format!("\u{2265}{lo}:{n}"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "    chain depth: mean={mean:.2} p99={p99:.0}  [{}]",
            buckets.join(" ")
        );
    }
    out
}

/// The causal sort key of one serialized trace event: `(ts_ns, trace
/// id, intra-trace seq)`, matching the kernel's merged-timeline order.
fn trace_key(e: &Json) -> (u64, u64, u64) {
    let n = |k: &str| e.get(k).and_then(Json::as_u64).unwrap_or(0);
    (n("ts_ns"), n("trace"), n("seq"))
}

/// One rendered timeline row; `t0` anchors timestamps to the first
/// event so the column stays readable.
fn trace_row(e: &Json, t0: u64) -> String {
    let (ts, trace, seq) = trace_key(e);
    let s = |k: &str| e.get(k).and_then(Json::as_str).unwrap_or("-");
    let n = |k: &str| e.get(k).and_then(Json::as_u64).unwrap_or(0);
    let shard = match e.get("shard") {
        Some(Json::Str(name)) => name.clone(),
        Some(j) => j
            .as_u64()
            .map(|v| format!("shard {v}"))
            .unwrap_or_else(|| "?".into()),
        None => "?".into(),
    };
    format!(
        "  +{:<11} {:>16x}/{:<3} g{:<3} {:<13} {:<10} {:<19} {:<12} {:>9} ns",
        ts.saturating_sub(t0),
        trace,
        seq,
        n("graft"),
        shard,
        s("point"),
        s("tech"),
        s("verdict"),
        n("duration_ns"),
    )
}

/// `timeline` mode: the artifact's flight-recorder events in causal
/// order. Empty unless the run was benched with `--trace`.
fn render_timeline(path: &str, a: &RunArtifact) -> String {
    let mut out = String::new();
    let mut events: Vec<&Json> = a
        .metrics
        .get("traces")
        .and_then(Json::as_arr)
        .map(|v| v.iter().collect())
        .unwrap_or_default();
    if events.is_empty() {
        let _ = writeln!(
            out,
            "{path}: no trace events (rerun the bench with --trace --json)"
        );
        return out;
    }
    events.sort_by_key(|e| trace_key(e));
    let t0 = trace_key(events[0]).0;
    let _ = writeln!(out, "timeline {path}: {} events", events.len());
    let _ = writeln!(
        out,
        "  {:<12} {:>16}/{:<3} {:<4} {:<13} {:<10} {:<19} {:<12} {:>12}",
        "t+ns", "trace", "seq", "gft", "shard", "point", "tech", "verdict", "duration"
    );
    for e in &events {
        out.push_str(&trace_row(e, t0));
        out.push('\n');
    }
    out
}

/// Renders one embedded postmortem report (the JSON shape that
/// `PostmortemReport::to_json` writes).
fn render_postmortem(label: &str, pm: &Json) -> String {
    let mut out = String::new();
    let s = |k: &str| pm.get(k).and_then(Json::as_str).unwrap_or("-");
    let n = |k: &str| pm.get(k).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(out, "postmortem {label}:");
    let _ = writeln!(
        out,
        "  graft \"{}\" (id {}) under {}  state {}  reason {}",
        s("graft"),
        n("graft_id"),
        s("tech"),
        s("state"),
        s("reason"),
    );
    let ledger = pm.get("ledger");
    let ln = |k: &str| {
        ledger
            .and_then(|l| l.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let _ = writeln!(
        out,
        "  ledger: invocations {}  traps {}  cum {}  fuel {}",
        ln("invocations"),
        ln("traps"),
        fmt_ns(ln("cum_ns") as f64),
        ln("fuel_used"),
    );
    if let Some(counts) = ledger
        .and_then(|l| l.get("trap_counts"))
        .and_then(Json::as_obj)
    {
        if !counts.is_empty() {
            let mix: Vec<String> = counts
                .iter()
                .map(|(k, v)| format!("{k}:{}", v.as_u64().unwrap_or(0)))
                .collect();
            let _ = writeln!(out, "  trap mix: {}", mix.join("  "));
        }
    }
    let salvage = match pm.get("salvaged_words").and_then(Json::as_u64) {
        Some(w) => format!("{w} words"),
        None => "none".into(),
    };
    let where_ = match pm.get("shard").and_then(Json::as_u64) {
        Some(shard) => format!("shard {shard}"),
        None => "scalar host".into(),
    };
    let _ = writeln!(
        out,
        "  strikes {}  quarantines {}  backoff remaining {}  salvaged {salvage}  detached on {where_}",
        n("strikes"),
        n("quarantines"),
        n("backoff_remaining"),
    );
    match pm.get("events").and_then(Json::as_arr) {
        Some(events) if !events.is_empty() => {
            let t0 = events.first().map(trace_key).map(|k| k.0).unwrap_or(0);
            let _ = writeln!(out, "  tail ({} events, oldest first):", events.len());
            for e in events {
                out.push_str("  ");
                out.push_str(&trace_row(e, t0));
                out.push('\n');
            }
        }
        _ => {
            let _ = writeln!(out, "  tail: empty (the flight recorder was not recording)");
        }
    }
    out
}

/// `postmortem` mode: every quarantine report embedded in the
/// artifact's tables (Table 12's drill carries a scalar/sharded pair).
fn render_postmortems(path: &str, a: &RunArtifact) -> String {
    let mut out = String::new();
    let mut found = 0;
    for (table, doc) in &a.tables {
        let Some(drill) = doc.get("drill") else { continue };
        for side in ["scalar_postmortem", "sharded_postmortem"] {
            let Some(pm) = drill.get(side) else { continue };
            if matches!(pm, Json::Null) {
                continue;
            }
            found += 1;
            out.push_str(&render_postmortem(&format!("{table}/{side}"), pm));
        }
    }
    if found == 0 {
        let _ = writeln!(
            out,
            "{path}: no postmortems (run the table12 bench with --json)"
        );
    }
    out
}

/// Two-artifact mode: the rendered diff plus the process exit code
/// (0 when within threshold, 1 when drift was detected).
fn render_diff(base_path: &str, cand_path: &str, report: &Report, threshold: f64) -> (String, i32) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# graftstat: {base_path} -> {cand_path} (threshold {threshold}%)"
    );
    for d in &report.samples {
        let _ = writeln!(
            out,
            "  {:<44} {:>12} -> {:>12}  {:>+8.2}%",
            d.key,
            fmt_ns(d.base_ns),
            fmt_ns(d.cand_ns),
            d.pct()
        );
    }
    for (key, in_base) in &report.missing {
        let side = if *in_base { "baseline" } else { "candidate" };
        let _ = writeln!(out, "  {key:<44} only in {side}");
    }
    for (name, b, c) in &report.counters {
        let _ = writeln!(out, "  counter {name:<36} {b:>12} -> {c:>12}");
    }
    if report.zero_drift() {
        let _ = writeln!(out, "zero drift: artifacts are metrically identical");
        return (out, 0);
    }
    let drifted = report.drifted(threshold);
    let code = if drifted.is_empty() && report.missing.is_empty() {
        let _ = writeln!(
            out,
            "no drift beyond {threshold}% across {} samples",
            report.samples.len()
        );
        0
    } else {
        let _ = writeln!(
            out,
            "drift: {} of {} samples moved more than {threshold}%, {} keys one-sided",
            drifted.len(),
            report.samples.len(),
            report.missing.len()
        );
        1
    };
    (out, code)
}

fn load(path: &str) -> RunArtifact {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    match RunArtifact::from_json_str(&text) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("error: {path}: {err}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 5.0_f64;
    let mut mode: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a number\n{USAGE}");
                    std::process::exit(2);
                }
            },
            sub @ ("timeline" | "postmortem") if mode.is_none() && paths.is_empty() => {
                mode = Some(sub.to_string());
            }
            other => paths.push(other.to_string()),
        }
    }
    if let Some(mode) = mode {
        let [one] = paths.as_slice() else {
            eprintln!("{USAGE}");
            std::process::exit(2);
        };
        let artifact = load(one);
        emit(&match mode.as_str() {
            "timeline" => render_timeline(one, &artifact),
            _ => render_postmortems(one, &artifact),
        });
        return;
    }
    match paths.as_slice() {
        [one] => emit(&summarize(one, &load(one))),
        [base, cand] => {
            let report = diff(&load(base), &load(cand));
            let (text, code) = render_diff(base, cand, &report, threshold);
            emit(&text);
            std::process::exit(code);
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_core::artifact::{sample_json, table3_json, RunArtifact};
    use graft_core::experiment::{table3, RunConfig};
    use kernsim::stats::Sample;
    use kernsim::DiskModel;
    use std::time::Duration;

    fn artifact() -> RunArtifact {
        let cfg = RunConfig::offline();
        let mut art = RunArtifact::begin(&cfg);
        let t3 = table3(&cfg, DiskModel::default());
        art.add_table("table3", table3_json(&t3));
        // Offline Table 3 carries no measured samples, so index a
        // synthetic one to exercise the sample-diff path.
        let runs = [Duration::from_micros(10), Duration::from_micros(12)];
        art.samples
            .insert("synthetic/sample".into(), sample_json(&Sample::from_runs(&runs)));
        art.finish(&graft_telemetry::snapshot());
        art
    }

    #[test]
    fn self_diff_is_zero_drift() {
        let art = artifact();
        let back = RunArtifact::from_json_str(&art.to_pretty_string()).unwrap();
        let report = diff(&back, &back);
        assert!(report.zero_drift(), "{report:?}");
        assert!(report.drifted(0.0).is_empty());
    }

    #[test]
    fn sample_movement_is_measured_in_percent() {
        let d = SampleDelta {
            key: "k".into(),
            base_ns: 100.0,
            cand_ns: 110.0,
        };
        assert!((d.pct() - 10.0).abs() < 1e-9);
        let zero = SampleDelta {
            key: "z".into(),
            base_ns: 0.0,
            cand_ns: 5.0,
        };
        assert_eq!(zero.pct(), 0.0);
    }

    #[test]
    fn kernel_section_summarizes_verdict_mix_and_chain_depth() {
        let mut art = artifact();
        // A run that never touched a host prints no graft-host section.
        assert!(!summarize("x.json", &art).contains("graft-host:"));

        let mut counters = Json::object();
        counters
            .set("kernel.dispatches", 100u64)
            .set("kernel.invocations", 120u64)
            .set("kernel.traps", 3u64)
            .set("kernel.verdict_override", 60u64)
            .set("kernel.verdict_continue", 30u64)
            .set("kernel.verdict_default", 10u64)
            .set("kernel.quarantine_trips", 1u64)
            .set("kernel.installs", 2u64);
        let mut depth = Json::object();
        depth
            .set("name", "kernel.chain_depth")
            .set("count", 100u64)
            .set("mean", 1.4)
            .set("p50", 1.0)
            .set("p99", 2.0)
            .set(
                "buckets",
                vec![
                    Json::Arr(vec![Json::from(1u64), Json::from(60u64)]),
                    Json::Arr(vec![Json::from(2u64), Json::from(40u64)]),
                ],
            );
        let mut metrics = Json::object();
        metrics
            .set("counters", counters)
            .set("histograms", vec![depth]);
        art.metrics = metrics;

        let text = summarize("x.json", &art);
        assert!(text.contains("graft-host:"), "{text}");
        assert!(
            text.contains("override 60 (60.0%)  continue 30 (30.0%)  default 10 (10.0%)"),
            "{text}"
        );
        assert!(text.contains("quarantine trips 1"), "{text}");
        assert!(text.contains("chain depth: mean=1.40 p99=2"), "{text}");
        assert!(text.contains("\u{2265}1:60 \u{2265}2:40"), "{text}");
    }

    #[test]
    fn shard_section_summarizes_load_and_imbalance() {
        let mut art = artifact();
        assert!(!summarize("x.json", &art).contains("graft-host (sharded):"));

        let mut counters = Json::object();
        counters
            .set("kernel.shard.count", 4u64)
            .set("kernel.shard.dispatches", 400u64)
            .set("kernel.shard.invocations", 380u64)
            .set("kernel.shard.traps", 3u64)
            .set("kernel.shard.detaches", 1u64)
            .set("kernel.shard.installs", 2u64)
            .set("kernel.shard.epoch", 3u64)
            .set("kernel.shard.epoch_syncs", 12u64)
            .set("kernel.shard.mailbox_ops", 8u64)
            .set("kernel.shard.flushes", 4u64)
            .set("kernel.shard.enqueued", 360u64)
            .set("kernel.shard.diverted", 14u64)
            .set("kernel.shard.steals", 96u64)
            .set("kernel.shard.steal_fail", 5u64)
            .set("kernel.shard.batches", 40u64);
        let mut load = Json::object();
        load.set("name", "kernel.shard.load")
            .set("count", 4u64)
            .set("mean", 100.0)
            .set("p50", 100.0)
            .set("p99", 101.0)
            .set("buckets", Vec::<Json>::new());
        let mut depth = Json::object();
        depth
            .set("name", "kernel.shard.queue_depth")
            .set("count", 40u64)
            .set("mean", 12.5)
            .set("p50", 12.0)
            .set("p99", 31.0)
            .set("buckets", Vec::<Json>::new());
        let mut imb = Json::object();
        imb.set("name", "kernel.shard.imbalance_pct")
            .set("count", 1u64)
            .set("mean", 2.0)
            .set("p50", 2.0)
            .set("p99", 2.0)
            .set("buckets", Vec::<Json>::new());
        let mut metrics = Json::object();
        metrics
            .set("counters", counters)
            .set("histograms", vec![load, depth, imb]);
        art.metrics = metrics;

        let text = summarize("x.json", &art);
        assert!(text.contains("graft-host (sharded):"), "{text}");
        assert!(
            text.contains("shards 4  dispatches 400  invocations 380  traps 3  detaches 1"),
            "{text}"
        );
        assert!(text.contains("epoch syncs 12"), "{text}");
        assert!(text.contains("4 shard lifetimes, mean 100 dispatches"), "{text}");
        assert!(
            text.contains(
                "adaptive plane: enqueued 360  diverted 14  steals 96  steal fails 5  batches 40"
            ),
            "{text}"
        );
        assert!(
            text.contains("queue depth after drain: mean=12.5 p99=31"),
            "{text}"
        );
        assert!(text.contains("imbalance (max-min)/mean: mean=2.0% p99=2%"), "{text}");
    }

    #[test]
    fn recovery_section_summarizes_salvage_and_fault_accounting() {
        let mut art = artifact();
        // A clean run prints no recovery section.
        assert!(!summarize("x.json", &art).contains("recovery:"));

        let mut counters = Json::object();
        counters
            .set("kernel.recovery.salvages", 6u64)
            .set("kernel.recovery.salvaged_words", 1536u64)
            .set("kernel.recovery.lost_mappings", 0u64)
            .set("kernel.recovery.auto_readmits", 1u64)
            .set("kernel.recovery.bans", 0u64)
            .set("disk.faulty_ios", 32u64)
            .set("disk.faults.injected", 3u64)
            .set("disk.retries", 3u64)
            .set("disk.torn_writes", 1u64)
            .set("disk.faults.exhausted", 0u64)
            .set("disk.faults.crashes", 1u64)
            .set("ld.crashes", 1u64)
            .set("ld.rebuilds", 3u64)
            .set("ld.rebuilt_mappings", 240u64);
        let mut metrics = Json::object();
        metrics
            .set("counters", counters)
            .set("histograms", Vec::<Json>::new());
        art.metrics = metrics;

        let text = summarize("x.json", &art);
        assert!(text.contains("recovery:"), "{text}");
        assert!(
            text.contains("salvages 6  salvaged words 1536  lost mappings 0"),
            "{text}"
        );
        assert!(
            text.contains("ios 32  injected 3  retries 3  torn writes 1  exhausted 0  crashes 1"),
            "{text}"
        );
        assert!(
            text.contains("logical disk: crashes 1  rebuilds 3  replayed mappings 240"),
            "{text}"
        );
    }

    #[test]
    fn durable_section_summarizes_scrub_restores_and_retention() {
        let art = artifact();
        // A run that never scrubbed, restored, or merged prints nothing.
        assert!(!summarize("x.json", &art).contains("durable logdisk:"));

        let build = |failures: u64, bitrot: u64| {
            let mut art = artifact();
            let mut counters = Json::object();
            counters
                .set("ld.scrub.passes", 5u64)
                .set("ld.scrub.segments", 2081u64)
                .set("ld.checksum_failures", failures)
                .set("ld.quarantined", failures)
                .set("ld.restores", 12u64)
                .set("ld.restored_mappings", 120_000u64)
                .set("ld.merge.passes", 3u64)
                .set("ld.merge.merged_segments", 900u64)
                .set("ld.merge.pruned_entries", 26_381u64)
                .set("ld.retained_entries", 41_699u64)
                .set("ld.retained_segments", 2081u64)
                .set("disk.faults.bitrot", bitrot);
            let mut metrics = Json::object();
            metrics
                .set("counters", counters)
                .set("histograms", Vec::<Json>::new());
            art.metrics = metrics;
            art
        };

        let text = summarize("x.json", &build(0, 0));
        assert!(text.contains("durable logdisk:"), "{text}");
        assert!(
            text.contains("scrub: passes 5  segments 2081  checksum failures 0  quarantined 0"),
            "{text}"
        );
        assert!(
            text.contains("restores: 12  mappings materialized 120000"),
            "{text}"
        );
        assert!(
            text.contains(
                "retention: merges 3  merged segments 900  pruned entries 26381  retained 41699 entries / 2081 segments"
            ),
            "{text}"
        );
        assert!(!text.contains("!! WARN"), "{text}");

        // Failures during a bit-rot drill are expected (injected)...
        let drilled = summarize("x.json", &build(7, 7));
        assert!(!drilled.contains("!! WARN"), "{drilled}");
        // ...but failures with no drill armed are real corruption.
        let rotted = summarize("x.json", &build(7, 0));
        assert!(
            rotted.contains("!! WARN: checksum failures with no bit-rot drill armed"),
            "{rotted}"
        );
    }

    #[test]
    fn server_section_summarizes_admission_and_service_latency() {
        let mut art = artifact();
        // A run that never served a wire request prints no section.
        assert!(!summarize("x.json", &art).contains("graft-server:"));

        let mut counters = Json::object();
        counters
            .set("server.requests", 4100u64)
            .set("server.served", 4000u64)
            .set("server.replies", 4100u64)
            .set("server.conns", 130u64)
            .set("server.inflight.peak", 48u64)
            .set("server.rejected.overloaded", 2u64)
            .set("server.rejected.quota", 1u64)
            .set("server.rejected.quarantined", 29u64)
            .set("server.malformed", 3u64)
            .set("server.tenants", 96u64)
            .set("server.tenants.quarantined", 1u64);
        let mut hist = Json::object();
        hist.set("name", "server.service_ns")
            .set("count", 4000u64)
            .set("sum", 8_000_000u64)
            .set("mean", 2000.0)
            .set("p50", 1500.0)
            .set("p99", 9000.0)
            .set("p999", 21000.0);
        let mut metrics = Json::object();
        metrics.set("counters", counters).set("histograms", vec![hist]);
        art.metrics = metrics;

        let text = summarize("x.json", &art);
        assert!(text.contains("graft-server:"), "{text}");
        assert!(
            text.contains("requests 4100  served 4000  replies 4100  conns 130  in-flight peak 48"),
            "{text}"
        );
        assert!(
            text.contains("rejected overloaded 2  quota 1  quarantined 29  malformed frames 3"),
            "{text}"
        );
        assert!(text.contains("tenants: 96  quarantined 1"), "{text}");
        assert!(
            text.contains("service latency: p50=1.500 µs p99=9.000 µs p999=21.000 µs (4000 samples)"),
            "{text}"
        );
    }

    fn trace_event(ts: u64, trace: u64, seq: u64, verdict: &str) -> Json {
        let mut e = Json::object();
        e.set("ts_ns", ts)
            .set("trace", trace)
            .set("seq", seq)
            .set("graft", 1u64)
            .set("shard", Json::Num(0.0))
            .set("point", "vm_evict")
            .set("tech", "C")
            .set("verdict", verdict)
            .set("value", 9u64)
            .set("duration_ns", 120u64)
            .set("fuel", 4u64);
        e
    }

    #[test]
    fn timeline_sorts_events_into_causal_order() {
        let mut art = artifact();
        let mut metrics = Json::object();
        metrics.set(
            "traces",
            vec![
                trace_event(300, 7, 1, "trap"),
                trace_event(100, 7, 0, "continue"),
                trace_event(200, 9, 0, "override"),
            ],
        );
        art.metrics = metrics;
        let text = render_timeline("x.json", &art);
        assert!(text.contains("3 events"), "{text}");
        let continue_at = text.find("continue").unwrap();
        let override_at = text.find("override").unwrap();
        let trap_at = text.find("trap").unwrap();
        assert!(continue_at < override_at && override_at < trap_at, "{text}");
        // Timestamps render relative to the first event.
        assert!(text.contains("+0"), "{text}");
    }

    #[test]
    fn timeline_without_traces_points_at_the_trace_flag() {
        let art = artifact();
        assert!(render_timeline("x.json", &art).contains("--trace"));
    }

    #[test]
    fn postmortem_mode_renders_the_drill_pair() {
        let mut art = artifact();
        let mut ledger = Json::object();
        ledger
            .set("invocations", 3u64)
            .set("traps", 3u64)
            .set("cum_ns", 900u64)
            .set("fuel_used", 33u64);
        let mut counts = Json::object();
        counts.set("div_by_zero", 3u64);
        ledger.set("trap_counts", counts);
        let mut pm = Json::object();
        pm.set("graft", "saboteur")
            .set("graft_id", 2u64)
            .set("tech", "Modula-3")
            .set("reason", "div_by_zero")
            .set("state", "quarantined")
            .set("ledger", ledger)
            .set("strikes", 3u64)
            .set("quarantines", 1u64)
            .set("backoff_remaining", 0u64)
            .set("salvaged_words", Json::Null)
            .set("events", vec![trace_event(50, 3, 0, "trap")])
            .set("detached_at_ns", 1000u64)
            .set("shard", Json::Null);
        let mut drill = Json::object();
        drill
            .set("scalar_postmortem", pm)
            .set("sharded_postmortem", Json::Null);
        let mut table = Json::object();
        table.set("drill", drill);
        art.tables.insert("table12".into(), table);

        let text = render_postmortems("x.json", &art);
        assert!(text.contains("postmortem table12/scalar_postmortem:"), "{text}");
        assert!(
            text.contains("graft \"saboteur\" (id 2) under Modula-3"),
            "{text}"
        );
        assert!(text.contains("reason div_by_zero"), "{text}");
        assert!(text.contains("trap mix: div_by_zero:3"), "{text}");
        assert!(text.contains("salvaged none"), "{text}");
        assert!(text.contains("detached on scalar host"), "{text}");
        assert!(text.contains("tail (1 events"), "{text}");

        // An artifact without any embedded reports says so.
        let empty = artifact();
        assert!(render_postmortems("x.json", &empty).contains("no postmortems"));
    }

    #[test]
    fn imbalance_warning_fires_at_twenty_percent() {
        let mut art = artifact();
        let mut counters = Json::object();
        counters.set("kernel.shard.dispatches", 10u64);
        let mut imb = Json::object();
        imb.set("name", "kernel.shard.imbalance_pct")
            .set("count", 1u64)
            .set("mean", 25.0)
            .set("p50", 25.0)
            .set("p99", 25.0)
            .set("buckets", Vec::<Json>::new());
        let mut metrics = Json::object();
        metrics
            .set("counters", counters)
            .set("histograms", vec![imb]);
        art.metrics = metrics;
        let text = summarize("x.json", &art);
        assert!(text.contains("!! WARN: imbalance >= 20%"), "{text}");
    }

    #[test]
    fn stealing_runs_tighten_the_imbalance_warning_to_five_percent() {
        // 8% imbalance: fine under hash placement, a plane failure when
        // the run had stealing on (`kernel.shard.steal_mode` > 0).
        let build = |stealing: bool| {
            let mut art = artifact();
            let mut counters = Json::object();
            counters.set("kernel.shard.dispatches", 10u64);
            if stealing {
                counters.set("kernel.shard.steal_mode", 1u64);
            }
            let mut imb = Json::object();
            imb.set("name", "kernel.shard.imbalance_pct")
                .set("count", 1u64)
                .set("mean", 8.0)
                .set("p50", 8.0)
                .set("p99", 8.0)
                .set("buckets", Vec::<Json>::new());
            let mut metrics = Json::object();
            metrics
                .set("counters", counters)
                .set("histograms", vec![imb]);
            art.metrics = metrics;
            art
        };
        let static_text = summarize("x.json", &build(false));
        assert!(!static_text.contains("!! WARN"), "{static_text}");
        let steal_text = summarize("x.json", &build(true));
        assert!(
            steal_text.contains("!! WARN: imbalance >= 5% with stealing on"),
            "{steal_text}"
        );
    }

    #[test]
    fn one_sided_keys_are_reported_missing() {
        let a = artifact();
        let mut b = artifact();
        b.samples.clear();
        let report = diff(&a, &b);
        assert!(!report.zero_drift());
        assert!(report.missing.iter().all(|(_, in_base)| *in_base));
        assert!(!report.missing.is_empty());
    }
}
