//! Regenerates Table 11: the graft server under multi-tenant service
//! load — p50/p99/p999 service latency and saturation throughput per
//! technology and arrival skew across the worker ladder (1/2/4/8
//! drain workers by default, or a single count via `--shards N`),
//! plus the noisy-neighbor quarantine drill. Throughput is priced
//! over the serve-phase critical path — max(serial pump+reap,
//! busiest worker) — so the ladder reports the scaling a machine
//! with enough idle cores would see. The service mix rides two
//! hazards along with the clean traffic: cold mid-rep connection
//! churn (reconnect + fresh Hello, no Bye) and slowloris invokes
//! dribbled a few bytes per wave. `--tenants`/`--conns` reshape the
//! simulated population (default 100k tenants); `--arrival`
//! restricts the run to one arrival skew (see `docs/server.md`).

use graft_core::artifact::{self, RunArtifact};
use graft_core::experiment::{ServiceLoad, Skew, ARRIVALS11, LADDER11};

fn main() {
    let cli = graft_bench::cli_from_args();
    let ladder: Vec<usize> = match cli.shards {
        Some(s) => vec![s],
        None => LADDER11.to_vec(),
    };
    let arrivals: Vec<Skew> = match cli.arrival {
        Some(a) => vec![a],
        None => ARRIVALS11.to_vec(),
    };
    let default_load = ServiceLoad::default();
    let load = ServiceLoad {
        tenants: cli.tenants.unwrap_or(default_load.tenants),
        conns: cli.conns.unwrap_or(default_load.conns),
    };
    let t = graft_core::experiment::table11_with(&cli.config, &ladder, &arrivals, &load)
        .expect("table 11 runs");
    print!("{}", graft_core::report::render_table11(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table11", artifact::table11_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
