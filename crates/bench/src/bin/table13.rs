//! Regenerates Table 13: adaptive sharded dispatch under skewed load —
//! static hash placement vs the work-stealing run-queue plane across
//! the shard ladder (1/2/4/8/16 by default, or a single count via
//! `--shards N`). `--skew` restricts the run to one key distribution;
//! `--steal` skips the static baseline and prices the adaptive plane
//! alone (see `docs/kernel.md`, "Adaptive dispatch").

use graft_core::artifact::{self, RunArtifact};
use graft_core::experiment::{Skew, LADDER13};

fn main() {
    let cli = graft_bench::cli_from_args();
    let ladder: Vec<usize> = match cli.shards {
        Some(s) => vec![s],
        None => LADDER13.to_vec(),
    };
    let skews: Vec<Skew> = match cli.skew {
        Some(s) => vec![s],
        None => Skew::ALL.to_vec(),
    };
    let t = graft_core::experiment::table13_with(&cli.config, &ladder, &skews, cli.steal)
        .expect("table 13 runs");
    print!("{}", graft_core::report::render_table13(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table13", artifact::table13_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
