//! Regenerates Table 7: multi-tenant churn under the graft-host kernel
//! (per-technology throughput around a mid-run quarantine, plus the
//! empty-chain / hosted-dispatch overhead against the bare fast path).

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t = graft_core::experiment::table7(&cli.config).expect("table 7 runs");
    print!("{}", graft_core::report::render_table7(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table7", artifact::table7_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
