//! Regenerates Figure 1: break-even vs upcall time (CSV on stdout).

fn main() {
    let cfg = graft_bench::config_from_args();
    let fault = graft_bench::fault_time(&cfg);
    let t2 = graft_core::experiment::table2(&cfg, fault).expect("table 2 runs");
    let t1 = graft_core::experiment::table1(&cfg).expect("table 1 runs");
    let measured =
        std::time::Duration::from_nanos(t1.upcall_roundtrip.mean_ns as u64);
    let fig = graft_core::experiment::figure1(&t2, Some(measured));
    print!("{}", graft_core::report::render_figure1(&fig));
}
