//! Regenerates Figure 1: break-even vs upcall time (CSV on stdout).

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let fault = graft_bench::fault_time(&cli.config);
    let t2 = graft_core::experiment::table2(&cli.config, fault).expect("table 2 runs");
    let t1 = graft_core::experiment::table1(&cli.config).expect("table 1 runs");
    let measured =
        std::time::Duration::from_nanos(t1.upcall_roundtrip.mean_ns as u64);
    let fig = graft_core::experiment::figure1(&t2, Some(measured));
    print!("{}", graft_core::report::render_figure1(&fig));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table2", artifact::table2_json(&t2));
    art.add_table("figure1", artifact::figure1_json(&fig));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
