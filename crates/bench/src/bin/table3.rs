//! Regenerates Table 3: page-fault time (measured soft, modeled hard).

fn main() {
    let cfg = graft_bench::config_from_args();
    let t = graft_core::experiment::table3(&cfg, kernsim::DiskModel::default());
    print!("{}", graft_core::report::render_table3(&t));
}
