//! Regenerates Table 3: page-fault time (measured soft, modeled hard).

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let t = graft_core::experiment::table3(&cli.config, kernsim::DiskModel::default());
    print!("{}", graft_core::report::render_table3(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table3", artifact::table3_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
