//! Regenerates every table and figure in paper order.

use graft_core::{experiment, report};

fn main() {
    let cfg = graft_bench::config_from_args();
    eprintln!("# running with {cfg:?}");

    let t1 = experiment::table1(&cfg).expect("table 1");
    print!("{}\n", report::render_table1(&t1));

    let t3 = experiment::table3(&cfg, kernsim::DiskModel::default());
    print!("{}\n", report::render_table3(&t3));

    let fault = t3.hard_single_page();
    let t2 = experiment::table2(&cfg, fault).expect("table 2");
    print!("{}\n", report::render_table2(&t2));

    let t4 = experiment::table4(&cfg, false);
    print!("{}\n", report::render_table4(&t4));

    let t5 = experiment::table5(&cfg, t4.megabyte_access()).expect("table 5");
    print!("{}\n", report::render_table5(&t5));

    let t6 = experiment::table6(&cfg, &t4.model).expect("table 6");
    print!("{}\n", report::render_table6(&t6));

    let measured = std::time::Duration::from_nanos(t1.upcall_roundtrip.mean_ns as u64);
    let fig = experiment::figure1(&t2, Some(measured));
    print!("{}", report::render_figure1(&fig));
}
