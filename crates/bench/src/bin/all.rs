//! Regenerates every table and figure in paper order.

use graft_core::artifact::{self, RunArtifact};
use graft_core::{experiment, report};

fn main() {
    let cli = graft_bench::cli_from_args();
    let cfg = cli.config;
    eprintln!("# running with {cfg:?}");
    let mut art = RunArtifact::begin(&cfg);

    let t1 = experiment::table1(&cfg).expect("table 1");
    println!("{}", report::render_table1(&t1));
    art.add_table("table1", artifact::table1_json(&t1));

    let t3 = experiment::table3(&cfg, kernsim::DiskModel::default());
    println!("{}", report::render_table3(&t3));
    art.add_table("table3", artifact::table3_json(&t3));

    let fault = t3.hard_single_page();
    let t2 = experiment::table2(&cfg, fault).expect("table 2");
    println!("{}", report::render_table2(&t2));
    art.add_table("table2", artifact::table2_json(&t2));

    let t4 = experiment::table4(&cfg, false);
    println!("{}", report::render_table4(&t4));
    art.add_table("table4", artifact::table4_json(&t4));

    let t5 = experiment::table5(&cfg, t4.megabyte_access()).expect("table 5");
    println!("{}", report::render_table5(&t5));
    art.add_table("table5", artifact::table5_json(&t5));

    let t6 = experiment::table6(&cfg, &t4.model).expect("table 6");
    println!("{}", report::render_table6(&t6));
    art.add_table("table6", artifact::table6_json(&t6));

    let t7 = experiment::table7(&cfg).expect("table 7");
    println!("{}", report::render_table7(&t7));
    art.add_table("table7", artifact::table7_json(&t7));

    let ladder: Vec<usize> = match cli.shards {
        Some(s) => vec![s],
        None => experiment::LADDER.to_vec(),
    };
    let t8 = experiment::table8(&cfg, &ladder).expect("table 8");
    println!("{}", report::render_table8(&t8));
    art.add_table("table8", artifact::table8_json(&t8));

    let t9 = experiment::table9(&cfg).expect("table 9");
    println!("{}", report::render_table9(&t9));
    art.add_table("table9", artifact::table9_json(&t9));

    let ladder11: Vec<usize> = match cli.shards {
        Some(s) => vec![s],
        None => experiment::LADDER11.to_vec(),
    };
    let arrivals: Vec<experiment::Skew> = match cli.arrival {
        Some(a) => vec![a],
        None => experiment::ARRIVALS11.to_vec(),
    };
    let default_load = experiment::ServiceLoad::default();
    let load = experiment::ServiceLoad {
        tenants: cli.tenants.unwrap_or(default_load.tenants),
        conns: cli.conns.unwrap_or(default_load.conns),
    };
    let t11 = experiment::table11_with(&cfg, &ladder11, &arrivals, &load).expect("table 11");
    println!("{}", report::render_table11(&t11));
    art.add_table("table11", artifact::table11_json(&t11));

    let t12 = experiment::table12(&cfg).expect("table 12");
    println!("{}", report::render_table12(&t12));
    art.add_table("table12", artifact::table12_json(&t12));

    let ladder13: Vec<usize> = match cli.shards {
        Some(s) => vec![s],
        None => experiment::LADDER13.to_vec(),
    };
    let skews: Vec<experiment::Skew> = match cli.skew {
        Some(s) => vec![s],
        None => experiment::Skew::ALL.to_vec(),
    };
    let t13 = experiment::table13_with(&cfg, &ladder13, &skews, cli.steal).expect("table 13");
    println!("{}", report::render_table13(&t13));
    art.add_table("table13", artifact::table13_json(&t13));

    let t14 = experiment::table14(&cfg).expect("table 14");
    println!("{}", report::render_table14(&t14));
    art.add_table("table14", artifact::table14_json(&t14));

    let measured = std::time::Duration::from_nanos(t1.upcall_roundtrip.mean_ns as u64);
    let fig = experiment::figure1(&t2, Some(measured));
    print!("{}", report::render_figure1(&fig));
    art.add_table("figure1", artifact::figure1_json(&fig));

    graft_bench::maybe_write_artifact(&cli, &mut art);
}
