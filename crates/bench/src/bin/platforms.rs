//! Per-platform break-even reconstruction: the paper's Table 2 varies
//! across its four machines mainly through the *fault time* (4.7 ms on
//! Linux to 25.1 ms on Alpha with 16-page read-ahead). This binary
//! measures each technology's graft cost once on this host and then
//! reprints the break-even column under each paper platform's fault
//! time, reproducing the per-platform structure of Table 2.

use std::time::Duration;

use graft_api::Technology;
use graft_core::breakeven::break_even;
use graft_core::GraftManager;
use grafts::eviction;
use kernsim::stats::measure_per_iter;

const PLATFORMS: [(&str, f64); 4] = [
    ("Linux", 4.7),
    ("Solaris", 6.9),
    ("HP-UX", 17.9),
    ("Alpha", 25.1),
];

fn main() {
    let cfg = graft_bench::config_from_args();
    let spec = eviction::spec();
    let scenario = eviction::Scenario::paper_default(42);
    let manager = GraftManager::new();

    println!("Break-even by paper platform (fault times from Table 3);");
    println!("graft costs measured on this host. Paper's model app saves 1 in 782.\n");
    print!("{:<22}{:>12}", "technology", "cost");
    for (name, _) in PLATFORMS {
        print!("{name:>10}");
    }
    println!();

    for tech in [
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
        Technology::RustNative,
    ] {
        let mut engine = manager.load(&spec, tech).expect("load");
        let (lru, hot) = scenario.marshal(engine.as_mut()).expect("marshal");
        let iters = if tech == Technology::Script {
            cfg.script_evict_iters
        } else {
            cfg.evict_iters
        };
        let cost = measure_per_iter(cfg.runs, iters, || {
            let _ = engine.invoke("select_victim", &[lru, hot]);
        })
        .best();
        print!("{:<22}{:>12}", tech.paper_name(), format!("{cost:.1?}"));
        for (_, fault_ms) in PLATFORMS {
            let be = break_even(Duration::from_secs_f64(fault_ms / 1e3), cost);
            print!("{be:>10.0}");
        }
        println!();
    }
    println!("\npaper Table 2 break-even rows for comparison:");
    println!("  C         1270 (Linux)  1533 (Solaris)  2983 (HP-UX)  8655 (Alpha)");
    println!("  Modula-3   516          1095            2632          7843");
    println!("  Java        20            49             113           n/a");
}
