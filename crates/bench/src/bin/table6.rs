//! Regenerates Table 6: Logical Disk bookkeeping across technologies.

fn main() {
    let cfg = graft_bench::config_from_args();
    let model = kernsim::DiskModel::default();
    let t = graft_core::experiment::table6(&cfg, &model).expect("table 6 runs");
    print!("{}", graft_core::report::render_table6(&t));
}
