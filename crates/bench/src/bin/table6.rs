//! Regenerates Table 6: Logical Disk bookkeeping across technologies.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let model = kernsim::DiskModel::default();
    let t = graft_core::experiment::table6(&cli.config, &model).expect("table 6 runs");
    print!("{}", graft_core::report::render_table6(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table6", artifact::table6_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
