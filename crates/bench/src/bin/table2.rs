//! Regenerates Table 2: the VM page-eviction graft across technologies.

use graft_core::artifact::{self, RunArtifact};

fn main() {
    let cli = graft_bench::cli_from_args();
    let fault = graft_bench::fault_time(&cli.config);
    let t = graft_core::experiment::table2(&cli.config, fault).expect("table 2 runs");
    print!("{}", graft_core::report::render_table2(&t));
    let mut art = RunArtifact::begin(&cli.config);
    art.add_table("table2", artifact::table2_json(&t));
    graft_bench::maybe_write_artifact(&cli, &mut art);
}
