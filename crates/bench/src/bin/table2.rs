//! Regenerates Table 2: the VM page-eviction graft across technologies.

fn main() {
    let cfg = graft_bench::config_from_args();
    let fault = graft_bench::fault_time(&cfg);
    let t = graft_core::experiment::table2(&cfg, fault).expect("table 2 runs");
    print!("{}", graft_core::report::render_table2(&t));
}
