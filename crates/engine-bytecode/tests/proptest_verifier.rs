//! Property tests for the bytecode verifier, driven by a seeded RNG (no
//! network deps): arbitrary bytes never panic it, and verified modules
//! never hit interpreter integrity errors.

use std::collections::HashMap;

use engine_bytecode::{compile::BcFunc, verify, BcModule, BytecodeEngine};
use graft_api::{ExtensionEngine, RegionSpec};
use graft_rng::{Rng, SmallRng};

fn module_of(code: Vec<u8>, locals: usize) -> BcModule {
    let mut func_index = HashMap::new();
    func_index.insert("f".to_string(), 0);
    BcModule {
        funcs: vec![BcFunc {
            name: "f".into(),
            arity: 0,
            locals,
            code,
        }],
        pool: vec![1, 2, 3],
        tables: vec![vec![9, 8, 7]],
        globals: vec![0, 0],
        regions: vec![RegionSpec::data("r", 8)],
        func_index,
    }
}

fn random_code(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(1usize..max_len);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Fuzzing the verifier with random byte strings: it must reject or
/// accept, never panic.
#[test]
fn verifier_never_panics_on_garbage() {
    let mut rng = SmallRng::seed_from_u64(0xF422);
    for _case in 0..512 {
        let _ = verify::verify(&module_of(random_code(&mut rng, 80), 4));
    }
}

/// Whatever the verifier accepts, the interpreter runs without
/// integrity violations: with a fuel bound, the only outcomes are a
/// value or a well-formed trap.
#[test]
fn accepted_modules_execute_cleanly() {
    let mut rng = SmallRng::seed_from_u64(0xACCE);
    for _case in 0..512 {
        let module = module_of(random_code(&mut rng, 60), 4);
        if verify::verify(&module).is_ok() {
            let mut engine = BytecodeEngine::load(module).unwrap();
            engine.set_fuel(Some(10_000));
            match engine.invoke("f", &[]) {
                Ok(_) => {}
                Err(e) => {
                    // Any trap is fine; a Verify error here would mean
                    // the verifier let something unsound through.
                    assert!(
                        e.as_trap().is_some(),
                        "non-trap failure after verification: {e}"
                    );
                }
            }
        }
    }
}

/// Compiler output always verifies and computes sane results for a
/// family of generated programs.
#[test]
fn generated_loops_verify_and_run() {
    let mut rng = SmallRng::seed_from_u64(0x100B);
    for _case in 0..40 {
        let n = rng.gen_range(0i64..50);
        let step = rng.gen_range(1i64..5);
        let src = format!(
            "fn f(x: int) -> int {{ let s = 0; let i = 0; while i < {n} {{ s = s + x; i = i + {step}; }} return s; }}"
        );
        let mut engine = BytecodeEngine::load_grail(&src, &[]).unwrap();
        let want = (0..)
            .step_by(step as usize)
            .take_while(|&i| i < n)
            .count() as i64
            * 3;
        assert_eq!(engine.invoke("f", &[3]).unwrap(), want);
    }
}
