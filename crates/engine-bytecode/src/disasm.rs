//! Bytecode disassembly — `javap` for the graft class format.

use std::fmt::Write as _;

use crate::compile::{BcFunc, BcModule};
use crate::opcode::{self as op, fetch, operand_len};

/// Renders one instruction at `pc`; returns the text and the next pc.
pub fn inst_at(module: &BcModule, code: &[u8], pc: usize) -> (String, usize) {
    let opc = code[pc];
    let next = pc + 1 + operand_len(opc).unwrap_or(0);
    let u16_at = |off: usize| fetch::u16(code, pc + off);
    let text = match opc {
        op::NOP => "nop".to_string(),
        op::SIPUSH => format!("sipush {}", fetch::i16(code, pc + 1)),
        op::LDC => {
            let idx = u16_at(1) as usize;
            let value = module
                .pool
                .get(idx)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".into());
            format!("ldc #{idx} ({value})")
        }
        op::LOAD => format!("load {}", u16_at(1)),
        op::STORE => format!("store {}", u16_at(1)),
        op::POP => "pop".to_string(),
        op::DUP => "dup".to_string(),
        op::ADD => "add".to_string(),
        op::SUB => "sub".to_string(),
        op::MUL => "mul".to_string(),
        op::DIV => "div".to_string(),
        op::REM => "rem".to_string(),
        op::AND => "and".to_string(),
        op::OR => "or".to_string(),
        op::XOR => "xor".to_string(),
        op::SHL => "shl".to_string(),
        op::SHR => "shr".to_string(),
        op::NEG => "neg".to_string(),
        op::BNOT => "bnot".to_string(),
        op::NOT => "not".to_string(),
        op::EQ => "eq".to_string(),
        op::NE => "ne".to_string(),
        op::LT => "lt".to_string(),
        op::LE => "le".to_string(),
        op::GT => "gt".to_string(),
        op::GE => "ge".to_string(),
        op::GOTO => format!("goto @{}", fetch::u32(code, pc + 1)),
        op::JZ => format!("jz @{}", fetch::u32(code, pc + 1)),
        op::JNZ => format!("jnz @{}", fetch::u32(code, pc + 1)),
        op::CALL => {
            let f = u16_at(1) as usize;
            let name = module
                .funcs
                .get(f)
                .map(|f| f.name.as_str())
                .unwrap_or("?");
            format!("call {name} ({} args)", code[pc + 3])
        }
        op::RET => "ret".to_string(),
        op::RETV => "retv".to_string(),
        op::RLOAD => {
            let r = u16_at(1) as usize;
            let name = module.regions.get(r).map(|r| r.name.as_str()).unwrap_or("?");
            format!("rload {name}")
        }
        op::RSTORE => {
            let r = u16_at(1) as usize;
            let name = module.regions.get(r).map(|r| r.name.as_str()).unwrap_or("?");
            format!("rstore {name}")
        }
        op::PLOAD => format!("pload table#{}", u16_at(1)),
        op::GGET => format!("gget {}", u16_at(1)),
        op::GSET => format!("gset {}", u16_at(1)),
        op::ABORT => "abort".to_string(),
        other => format!(".byte {other}"),
    };
    (text, next)
}

/// Renders one function.
pub fn func(module: &BcModule, f: &BcFunc) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {} (arity {}, locals {}, {} bytes):",
        f.name,
        f.arity,
        f.locals,
        f.code.len()
    );
    let mut pc = 0usize;
    while pc < f.code.len() {
        let (text, next) = inst_at(module, &f.code, pc);
        let _ = writeln!(out, "  @{pc:<5} {text}");
        if next <= pc {
            break;
        }
        pc = next;
    }
    out
}

/// Renders the whole module.
pub fn module(m: &BcModule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} functions, {} pool constants, {} tables, {} bytes",
        m.funcs.len(),
        m.pool.len(),
        m.tables.len(),
        m.code_size()
    );
    for f in &m.funcs {
        out.push_str(&func(m, f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::RegionSpec;

    #[test]
    fn disassembly_names_regions_and_callees() {
        let src = r#"
            fn helper(x: int) -> int { return x + 1000000; }
            fn main(i: int) -> int { buf[i] = helper(i); return buf[i]; }
        "#;
        let hir = graft_lang::compile(src, &[RegionSpec::data("buf", 8)]).unwrap();
        let m = crate::compile(&hir);
        let text = module(&m);
        assert!(text.contains("call helper (1 args)"), "{text}");
        assert!(text.contains("rstore buf"));
        assert!(text.contains("rload buf"));
        assert!(text.contains("ldc #0 (1000000)"));
        assert!(text.contains("retv"));
    }

    #[test]
    fn every_compiled_opcode_renders() {
        let src = r#"
            const T[2] = { 5, 6 };
            var g = 0;
            fn f(a: int, b: bool) -> int {
                let x = -a;
                if b && x > 0 { g = x % 3; }
                while x != 0 { x = x - 1; }
                return (T[0] << 1) | (~a & g) ^ (a / 2);
            }
        "#;
        let hir = graft_lang::compile(src, &[]).unwrap();
        let m = crate::compile(&hir);
        let text = module(&m);
        for needle in ["gget", "gset", "pload", "jz", "goto", "shl", "bnot", "div", "rem"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // One line per decoded instruction plus headers.
        assert!(text.lines().count() > 20);
    }
}
