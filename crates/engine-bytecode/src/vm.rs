//! The bytecode interpreter: fetch, decode, execute.
//!
//! Intentionally the naive loop of a mid-90s language runtime: a byte is
//! fetched and matched per opcode, operands are assembled from unaligned
//! little-endian bytes, the operand stack is a growable vector with
//! checked pops, locals live in a per-call allocation, and a preemption
//! (fuel) check runs on every instruction. Do not "optimize" this engine:
//! its cost *is* the measurement (the Java column of Tables 2, 5, 6).

use graft_api::{GraftError, RegionId, RegionStore, Trap};
use graft_lang::hir::BinOp;

use crate::compile::BcModule;
use crate::opcode::{self as op, fetch};

/// Maximum call depth before [`Trap::StackOverflow`].
pub const MAX_DEPTH: usize = 192;

/// Mutable interpreter state shared across the call tree.
pub struct VmState<'a> {
    /// Kernel-shared regions.
    pub regions: &'a mut RegionStore,
    /// Module globals.
    pub globals: &'a mut Vec<i64>,
    /// Remaining execution budget.
    pub fuel: u64,
}

fn underflow() -> GraftError {
    Trap::TypeError("operand stack underflow".into()).into()
}

/// Executes function `func` of `module`.
pub fn call(
    st: &mut VmState<'_>,
    module: &BcModule,
    func: usize,
    args: &[i64],
    depth: usize,
) -> Result<i64, GraftError> {
    if depth >= MAX_DEPTH {
        return Err(Trap::StackOverflow.into());
    }
    let f = &module.funcs[func];
    let mut locals = vec![0i64; f.locals];
    locals[..args.len()].copy_from_slice(args);
    let mut stack: Vec<i64> = Vec::new();
    let code = &f.code[..];
    let mut pc = 0usize;

    macro_rules! pop {
        () => {
            match stack.pop() {
                Some(v) => v,
                None => return Err(underflow()),
            }
        };
    }

    loop {
        st.fuel = st.fuel.wrapping_sub(1);
        if st.fuel == 0 {
            return Err(Trap::FuelExhausted.into());
        }
        let opc = code[pc];
        match opc {
            op::NOP => pc += 1,
            op::SIPUSH => {
                stack.push(fetch::i16(code, pc + 1) as i64);
                pc += 3;
            }
            op::LDC => {
                stack.push(module.pool[fetch::u16(code, pc + 1) as usize]);
                pc += 3;
            }
            op::LOAD => {
                stack.push(locals[fetch::u16(code, pc + 1) as usize]);
                pc += 3;
            }
            op::STORE => {
                let v = pop!();
                locals[fetch::u16(code, pc + 1) as usize] = v;
                pc += 3;
            }
            op::POP => {
                let _ = pop!();
                pc += 1;
            }
            op::DUP => {
                let v = *stack.last().ok_or_else(underflow)?;
                stack.push(v);
                pc += 1;
            }
            op::ADD..=op::SHR => {
                let b = pop!();
                let a = pop!();
                let bop = match opc {
                    op::ADD => BinOp::Add,
                    op::SUB => BinOp::Sub,
                    op::MUL => BinOp::Mul,
                    op::DIV => BinOp::Div,
                    op::REM => BinOp::Rem,
                    op::AND => BinOp::And,
                    op::OR => BinOp::Or,
                    op::XOR => BinOp::Xor,
                    op::SHL => BinOp::Shl,
                    _ => BinOp::Shr,
                };
                match graft_lang::hir::ops::binary(bop, a, b) {
                    Some(v) => stack.push(v),
                    None => return Err(Trap::DivByZero.into()),
                }
                pc += 1;
            }
            op::NEG => {
                let v = pop!();
                stack.push(v.wrapping_neg());
                pc += 1;
            }
            op::BNOT => {
                let v = pop!();
                stack.push(!v);
                pc += 1;
            }
            op::NOT => {
                let v = pop!();
                stack.push((v == 0) as i64);
                pc += 1;
            }
            op::EQ..=op::GE => {
                let b = pop!();
                let a = pop!();
                let r = match opc {
                    op::EQ => a == b,
                    op::NE => a != b,
                    op::LT => a < b,
                    op::LE => a <= b,
                    op::GT => a > b,
                    _ => a >= b,
                };
                stack.push(r as i64);
                pc += 1;
            }
            op::GOTO => pc = fetch::u32(code, pc + 1) as usize,
            op::JZ => {
                let v = pop!();
                pc = if v == 0 {
                    fetch::u32(code, pc + 1) as usize
                } else {
                    pc + 5
                };
            }
            op::JNZ => {
                let v = pop!();
                pc = if v != 0 {
                    fetch::u32(code, pc + 1) as usize
                } else {
                    pc + 5
                };
            }
            op::CALL => {
                let callee = fetch::u16(code, pc + 1) as usize;
                let nargs = code[pc + 3] as usize;
                if stack.len() < nargs {
                    return Err(underflow());
                }
                let at = stack.len() - nargs;
                // The argument slice is copied into the callee's locals.
                let result = {
                    let argv: Vec<i64> = stack[at..].to_vec();
                    stack.truncate(at);
                    call(st, module, callee, &argv, depth + 1)?
                };
                stack.push(result);
                pc += 4;
            }
            op::RET => return Ok(0),
            op::RETV => return Ok(pop!()),
            op::RLOAD => {
                let idx = pop!();
                let r = fetch::u16(code, pc + 1);
                let region = st.regions.region(RegionId(r));
                let spec = region.spec();
                if spec.linked && idx == 0 {
                    return Err(Trap::NilDeref {
                        region: spec.name.clone(),
                    }
                    .into());
                }
                let words = region.words();
                if (idx as u64) >= words.len() as u64 {
                    return Err(Trap::OutOfBounds {
                        region: spec.name.clone(),
                        index: idx,
                        len: words.len(),
                    }
                    .into());
                }
                stack.push(words[idx as usize]);
                pc += 3;
            }
            op::RSTORE => {
                let value = pop!();
                let idx = pop!();
                let r = fetch::u16(code, pc + 1);
                let region = st.regions.region_mut(RegionId(r));
                let (linked, name, len) = {
                    let spec = region.spec();
                    (spec.linked, spec.name.clone(), region.len())
                };
                if linked && idx == 0 {
                    return Err(Trap::NilDeref { region: name }.into());
                }
                if (idx as u64) >= len as u64 {
                    return Err(Trap::OutOfBounds {
                        region: name,
                        index: idx,
                        len,
                    }
                    .into());
                }
                region.words_mut()[idx as usize] = value;
                pc += 3;
            }
            op::PLOAD => {
                let idx = pop!();
                let t = fetch::u16(code, pc + 1) as usize;
                let table = &module.tables[t];
                if (idx as u64) >= table.len() as u64 {
                    return Err(Trap::OutOfBounds {
                        region: format!("table#{t}"),
                        index: idx,
                        len: table.len(),
                    }
                    .into());
                }
                stack.push(table[idx as usize]);
                pc += 3;
            }
            op::GGET => {
                stack.push(st.globals[fetch::u16(code, pc + 1) as usize]);
                pc += 3;
            }
            op::GSET => {
                let v = pop!();
                st.globals[fetch::u16(code, pc + 1) as usize] = v;
                pc += 3;
            }
            op::ABORT => {
                let code_v = pop!();
                return Err(Trap::Abort(code_v).into());
            }
            other => {
                return Err(GraftError::Verify(format!(
                    "unverified opcode {other} reached the interpreter"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BytecodeEngine;
    use graft_api::ExtensionEngine;

    #[test]
    fn fuel_counts_instructions_executed() {
        let src = "fn f() -> int { return 1 + 2; }";
        let mut e = BytecodeEngine::load_grail(src, &[]).unwrap();
        e.set_fuel(Some(1_000));
        e.invoke("f", &[]).unwrap();
        // SIPUSH, SIPUSH, ADD, RETV = 4 instructions.
        assert_eq!(e.fuel_used(), Some(4));
    }

    #[test]
    fn nested_calls_share_the_fuel_budget() {
        let src = r#"
            fn leaf() -> int { return 1; }
            fn mid() -> int { return leaf() + leaf(); }
            fn top() -> int { return mid() + mid(); }
        "#;
        let mut e = BytecodeEngine::load_grail(src, &[]).unwrap();
        e.set_fuel(Some(10_000));
        e.invoke("top", &[]).unwrap();
        let all = e.fuel_used().unwrap();
        e.set_fuel(Some(10_000));
        e.invoke("mid", &[]).unwrap();
        let half = e.fuel_used().unwrap();
        assert!(all > half, "outer call must burn more fuel");
    }
}
