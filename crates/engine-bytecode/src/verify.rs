//! The bytecode verifier.
//!
//! Like the JVM's class-file verifier: before a module may run, a
//! data-flow walk proves that every reachable instruction is a known
//! opcode with in-range operands, that every jump lands on an
//! instruction boundary, and that the operand stack never underflows and
//! has a consistent depth at every merge point. The interpreter can then
//! be simple without being exploitable.

use std::collections::HashMap;

use graft_api::GraftError;

use crate::compile::{BcFunc, BcModule};
use crate::opcode::{self as op, fetch, operand_len, stack_effect};

/// Verifies every function in a module.
pub fn verify(module: &BcModule) -> Result<(), GraftError> {
    // Span-timed: verification is the load-time cost the bytecode
    // technology pays for its runtime simplicity, and the artifact
    // reports it next to the runtime numbers.
    let _span = graft_telemetry::span!("bc_verify");
    for func in &module.funcs {
        verify_func(module, func)
            .map_err(|msg| GraftError::Verify(format!("{}: {msg}", func.name)))?;
        graft_telemetry::counter!("verify.funcs").incr();
        graft_telemetry::counter!("verify.code_bytes").add(func.code.len() as u64);
    }
    graft_telemetry::counter!("verify.modules").incr();
    Ok(())
}

fn verify_func(module: &BcModule, func: &BcFunc) -> Result<(), String> {
    if func.arity > func.locals {
        return Err(format!(
            "arity {} exceeds locals {}",
            func.arity, func.locals
        ));
    }
    // Pass 1: decode walk to find instruction boundaries.
    let code = &func.code;
    if code.is_empty() {
        return Err("empty code".into());
    }
    let mut starts = vec![false; code.len()];
    let mut pc = 0usize;
    while pc < code.len() {
        starts[pc] = true;
        let opc = code[pc];
        let len = operand_len(opc).ok_or_else(|| format!("unknown opcode {opc} at {pc}"))?;
        if pc + 1 + len > code.len() {
            return Err(format!("truncated operands at {pc}"));
        }
        pc += 1 + len;
    }

    // Pass 2: depth-checked reachability walk.
    let mut depth_at: HashMap<usize, usize> = HashMap::new();
    let mut work = vec![(0usize, 0usize)];
    while let Some((pc, depth)) = work.pop() {
        if pc >= code.len() || !starts[pc] {
            return Err(format!("jump into the middle of an instruction at {pc}"));
        }
        match depth_at.get(&pc) {
            Some(&d) if d == depth => continue,
            Some(&d) => {
                return Err(format!(
                    "inconsistent stack depth at {pc}: {d} vs {depth}"
                ))
            }
            None => {
                depth_at.insert(pc, depth);
            }
        }
        let opc = code[pc];
        let next = pc + 1 + operand_len(opc).expect("validated in pass 1");
        let (pops, pushes) = match opc {
            op::CALL => {
                let callee = fetch::u16(code, pc + 1) as usize;
                let nargs = code[pc + 3] as usize;
                let target = module
                    .funcs
                    .get(callee)
                    .ok_or_else(|| format!("call to unknown function {callee} at {pc}"))?;
                if target.arity != nargs {
                    return Err(format!(
                        "call to `{}` with {nargs} args (arity {}) at {pc}",
                        target.name, target.arity
                    ));
                }
                (nargs, 1)
            }
            _ => stack_effect(opc).expect("validated in pass 1"),
        };
        if depth < pops {
            return Err(format!("stack underflow at {pc} (opcode {opc})"));
        }
        let depth = depth - pops + pushes;

        // Operand range checks.
        match opc {
            op::LDC => {
                let idx = fetch::u16(code, pc + 1) as usize;
                if idx >= module.pool.len() {
                    return Err(format!("constant pool index {idx} out of range at {pc}"));
                }
            }
            op::LOAD | op::STORE => {
                let slot = fetch::u16(code, pc + 1) as usize;
                if slot >= func.locals {
                    return Err(format!("local slot {slot} out of range at {pc}"));
                }
            }
            op::RLOAD | op::RSTORE => {
                let r = fetch::u16(code, pc + 1) as usize;
                if r >= module.regions.len() {
                    return Err(format!("region {r} out of range at {pc}"));
                }
                if opc == op::RSTORE && !module.regions[r].writable {
                    return Err(format!("store into read-only region at {pc}"));
                }
            }
            op::PLOAD => {
                let t = fetch::u16(code, pc + 1) as usize;
                if t >= module.tables.len() {
                    return Err(format!("const table {t} out of range at {pc}"));
                }
            }
            op::GGET | op::GSET => {
                let g = fetch::u16(code, pc + 1) as usize;
                if g >= module.globals.len() {
                    return Err(format!("global {g} out of range at {pc}"));
                }
            }
            _ => {}
        }

        // Successors.
        match opc {
            op::RET | op::RETV => {}
            op::GOTO => work.push((fetch::u32(code, pc + 1) as usize, depth)),
            op::JZ | op::JNZ => {
                work.push((fetch::u32(code, pc + 1) as usize, depth));
                work.push((next, depth));
            }
            _ => {
                if next >= code.len() {
                    return Err(format!("control falls off the end after {pc}"));
                }
                work.push((next, depth));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::opcode::emit;
    use graft_api::RegionSpec;

    fn compiled(src: &str) -> BcModule {
        let hir = graft_lang::compile(src, &[RegionSpec::data("buf", 8)]).unwrap();
        compile(&hir)
    }

    fn handwritten(code: Vec<u8>, locals: usize) -> BcModule {
        let mut func_index = HashMap::new();
        func_index.insert("f".to_string(), 0);
        BcModule {
            funcs: vec![BcFunc {
                name: "f".into(),
                arity: 0,
                locals,
                code,
            }],
            pool: vec![42],
            tables: vec![vec![1, 2]],
            globals: vec![0],
            regions: vec![RegionSpec::data("buf", 8)],
            func_index,
        }
    }

    #[test]
    fn compiler_output_always_verifies() {
        let sources = [
            "fn f() -> int { return 1; }",
            "fn f(n: int) -> int { let s = 0; let i = 0; while i < n { s = s + buf[i]; i = i + 1; } return s; }",
            "fn g(x: int) -> bool { return x > 0 && buf[x] != 0; } fn f(x: int) -> int { if g(x) { return 1; } return 0; }",
            "fn f(x: int) -> int { while true { if x > 9 { break; } x = x + 1; } return x; }",
        ];
        for src in sources {
            verify(&compiled(src)).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        let m = handwritten(vec![200, op::RET], 0);
        assert!(verify(&m).unwrap_err().to_string().contains("unknown opcode"));
    }

    #[test]
    fn rejects_truncated_operands() {
        let m = handwritten(vec![op::SIPUSH, 1], 0);
        assert!(verify(&m).unwrap_err().to_string().contains("truncated"));
    }

    #[test]
    fn rejects_stack_underflow() {
        let m = handwritten(vec![op::ADD, op::RET], 0);
        assert!(verify(&m).unwrap_err().to_string().contains("underflow"));
    }

    #[test]
    fn rejects_jump_into_operand_bytes() {
        let mut code = vec![op::SIPUSH, 0, 0];
        code.push(op::GOTO);
        emit::u32(&mut code, 1); // lands inside SIPUSH's operand
        code.push(op::RET);
        let m = handwritten(code, 0);
        assert!(verify(&m)
            .unwrap_err()
            .to_string()
            .contains("middle of an instruction"));
    }

    #[test]
    fn rejects_inconsistent_merge_depth() {
        // Two paths reach RET with different stack depths.
        let mut code = vec![op::SIPUSH, 1, 0]; // depth 1
        code.push(op::JZ);
        let jz_at = code.len();
        emit::u32(&mut code, u32::MAX);
        code.extend_from_slice(&[op::SIPUSH, 7, 0]); // depth 1 on fallthrough
        let merge = code.len();
        code.push(op::RET);
        let bytes = (merge as u32).to_le_bytes();
        code[jz_at..jz_at + 4].copy_from_slice(&bytes); // depth 0 on jump
        let m = handwritten(code, 0);
        assert!(verify(&m)
            .unwrap_err()
            .to_string()
            .contains("inconsistent stack depth"));
    }

    #[test]
    fn rejects_out_of_range_local() {
        let mut code = vec![op::LOAD];
        emit::u16(&mut code, 9);
        code.push(op::RETV);
        let m = handwritten(code, 1);
        assert!(verify(&m).unwrap_err().to_string().contains("local slot"));
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut code = vec![op::SIPUSH, 0, 0, op::CALL];
        emit::u16(&mut code, 0);
        code.push(3); // function 0 has arity 0
        code.push(op::RETV);
        let m = handwritten(code, 0);
        assert!(verify(&m).unwrap_err().to_string().contains("arity"));
    }

    #[test]
    fn rejects_fall_off_the_end() {
        let m = handwritten(vec![op::SIPUSH, 0, 0], 0);
        assert!(verify(&m)
            .unwrap_err()
            .to_string()
            .contains("falls off the end"));
    }

    #[test]
    fn rejects_store_to_read_only_region() {
        let mut code = vec![op::SIPUSH, 0, 0, op::SIPUSH, 1, 0, op::RSTORE];
        emit::u16(&mut code, 0);
        code.push(op::RET);
        let mut m = handwritten(code, 0);
        m.regions = vec![RegionSpec::read_only("input", 8)];
        assert!(verify(&m).unwrap_err().to_string().contains("read-only"));
    }

    #[test]
    fn unreachable_garbage_after_return_is_tolerated() {
        // The decode walk still validates instruction framing, but
        // unreachable yet well-formed code is fine (javac emits it too).
        let m = handwritten(vec![op::RET, op::POP], 0);
        verify(&m).unwrap();
    }
}
