//! The stack-bytecode extension engine — the paper's Java analogue.
//!
//! Grail is compiled to a compact, JVM-like stack bytecode
//! ([`compile`]), verified by a stack-depth/branch-target verifier
//! ([`verify`]) the way the JVM verifies class files, and then executed
//! by a deliberately *naive* fetch-decode-execute interpreter ([`vm`]):
//! one byte fetched and matched per opcode, operands decoded
//! byte-by-byte, an operand stack with checked pushes and pops, frames
//! allocated per call, and a preemption check per instruction. That is
//! the interpretation technology of 1995 Java (Alpha 3) — the paper's
//! Section 4.3 — and its cost relative to the threaded-code engine is
//! the quantity Tables 2, 5, and 6 report in the "Java" column.
//!
//! Unlike the compiled engines there is no unchecked mode: like Java,
//! every array (region) access is bounds-checked and every NIL chase
//! trapped, and there is no way to switch that off.

pub mod compile;
pub mod disasm;
pub mod opcode;
pub mod verify;
pub mod vm;

use graft_api::{
    EntryId, ExtensionEngine, GraftError, RegionId, RegionSpec, RegionStore, Technology,
};

pub use compile::{compile, BcFunc, BcModule};

/// A graft loaded under the bytecode (Java-analogue) technology.
pub struct BytecodeEngine {
    module: std::sync::Arc<BcModule>,
    regions: RegionStore,
    globals: Vec<i64>,
    fuel_limit: Option<u64>,
    last_fuel_used: u64,
}

impl BytecodeEngine {
    /// Compiles, verifies, and loads Grail source as bytecode.
    pub fn load_grail(source: &str, regions: &[RegionSpec]) -> Result<Self, GraftError> {
        let hir = graft_lang::compile(source, regions)?;
        let module = compile(&hir);
        Self::load(module)
    }

    /// Verifies and loads an already-compiled bytecode module.
    pub fn load(module: BcModule) -> Result<Self, GraftError> {
        verify::verify(&module)?;
        let regions = RegionStore::new(&module.regions)?;
        let globals = module.globals.clone();
        Ok(BytecodeEngine {
            module: std::sync::Arc::new(module),
            regions,
            globals,
            fuel_limit: None,
            last_fuel_used: 0,
        })
    }

    /// The loaded module, for inspection (code size reports, tests).
    pub fn module(&self) -> &BcModule {
        &self.module
    }
}

impl ExtensionEngine for BytecodeEngine {
    fn technology(&self) -> Technology {
        Technology::Bytecode
    }

    fn bind_entry(&mut self, entry: &str) -> Result<EntryId, GraftError> {
        match self.module.func_index.get(entry) {
            Some(&func) => Ok(EntryId(func as u32)),
            None => Err(graft_api::engine::no_such_entry(entry)),
        }
    }

    fn bind_region(&self, name: &str) -> Result<RegionId, GraftError> {
        self.regions.id(name)
    }

    fn invoke_id(&mut self, entry: EntryId, args: &[i64]) -> Result<i64, GraftError> {
        let module = std::sync::Arc::clone(&self.module);
        let func = entry.index();
        let Some(decl) = module.funcs.get(func) else {
            return Err(GraftError::bad_handle("entry", entry.0));
        };
        if decl.arity != args.len() {
            return Err(GraftError::BadArity {
                entry: decl.name.clone(),
                expected: decl.arity,
                got: args.len(),
            });
        }
        let fuel = self.fuel_limit.unwrap_or(u64::MAX);
        let mut st = vm::VmState {
            regions: &mut self.regions,
            globals: &mut self.globals,
            fuel,
        };
        let result = vm::call(&mut st, &module, func, args, 0);
        self.last_fuel_used = fuel - st.fuel;
        // Telemetry flush point: the interpreter burns one fuel unit per
        // dispatched instruction, so the per-invoke dispatch count falls
        // out of the fuel ledger for free — no per-instruction atomics
        // in the dispatch loop.
        graft_telemetry::counter!("vm.invocations").incr();
        graft_telemetry::counter!("vm.dispatch").add(self.last_fuel_used);
        result
    }

    fn invoke_id_traced(
        &mut self,
        entry: EntryId,
        args: &[i64],
        trace: graft_telemetry::TraceId,
    ) -> Result<i64, GraftError> {
        // Hosts route through this seam only in recording mode, so the
        // extra clock read never taxes the untraced fast path.
        let _ = trace;
        let started = std::time::Instant::now();
        let out = self.invoke_id(entry, args);
        graft_telemetry::histogram!("vm.invoke_ns").record_duration(started.elapsed());
        out
    }

    fn load_region_id(
        &mut self,
        id: RegionId,
        offset: usize,
        data: &[i64],
    ) -> Result<(), GraftError> {
        self.regions.load_id(id, offset, data)
    }

    fn read_region_id(&self, id: RegionId, index: usize) -> Result<i64, GraftError> {
        self.regions.read_id(id, index)
    }

    fn write_region_id(
        &mut self,
        id: RegionId,
        index: usize,
        value: i64,
    ) -> Result<(), GraftError> {
        self.regions.write_id(id, index, value)
    }

    fn read_region_slice_id(
        &self,
        id: RegionId,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        self.regions.read_slice_id(id, offset, out)
    }

    fn region_len(&self, id: RegionId) -> Result<usize, GraftError> {
        self.regions.len_id(id)
    }

    fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel_limit = fuel;
    }

    fn fuel_used(&self) -> Option<u64> {
        self.fuel_limit.map(|_| self.last_fuel_used)
    }

    fn fork_for_shard(&self, _shard: usize) -> Result<Box<dyn ExtensionEngine>, GraftError> {
        // The verified module is shared by `Arc`; regions and globals
        // are snapshotted; fuel accounting starts fresh.
        Ok(Box::new(BytecodeEngine {
            module: std::sync::Arc::clone(&self.module),
            regions: self.regions.clone(),
            globals: self.globals.clone(),
            fuel_limit: None,
            last_fuel_used: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::Trap;

    fn engine(src: &str, regions: &[RegionSpec]) -> BytecodeEngine {
        BytecodeEngine::load_grail(src, regions).unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            fn collatz_steps(n: int) -> int {
                let steps = 0;
                while n != 1 {
                    if n % 2 == 0 { n = n / 2; } else { n = 3 * n + 1; }
                    steps = steps + 1;
                }
                return steps;
            }
        "#;
        let mut e = engine(src, &[]);
        assert_eq!(e.invoke("collatz_steps", &[27]).unwrap(), 111);
    }

    #[test]
    fn regions_and_const_tables() {
        let src = r#"
            const W[4] = { 1, 10, 100, 1000 };
            fn weigh(n: int) -> int {
                let s = 0;
                let i = 0;
                while i < n {
                    s = s + buf[i] * W[i & 3];
                    i = i + 1;
                }
                return s;
            }
        "#;
        let mut e = engine(src, &[RegionSpec::data("buf", 8)]);
        e.load_region("buf", 0, &[5, 4, 3, 2, 1]).unwrap();
        assert_eq!(e.invoke("weigh", &[5]).unwrap(), 5 + 40 + 300 + 2000 + 1);
    }

    #[test]
    fn bounds_are_always_checked() {
        let src = "fn get(i: int) -> int { return buf[i]; }";
        let mut e = engine(src, &[RegionSpec::data("buf", 4)]);
        let err = e.invoke("get", &[9]).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::OutOfBounds { .. })));
        let err = e.invoke("get", &[-1]).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::OutOfBounds { .. })));
    }

    #[test]
    fn nil_chase_traps_like_null_pointer_exception() {
        let src = "fn chase() -> int { return queue[0]; }";
        let mut e = engine(src, &[RegionSpec::linked("queue", 4)]);
        let err = e.invoke("chase", &[]).unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::NilDeref { .. })));
    }

    #[test]
    fn recursion_and_stack_overflow() {
        let src = r#"
            fn fib(n: int) -> int { if n < 2 { return n; } return fib(n-1) + fib(n-2); }
            fn forever() -> int { return forever(); }
        "#;
        let mut e = engine(src, &[]);
        assert_eq!(e.invoke("fib", &[12]).unwrap(), 144);
        let err = e.invoke("forever", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::StackOverflow));
    }

    #[test]
    fn fuel_preempts_per_instruction() {
        let src = "fn spin() -> int { while true { } return 0; }";
        let mut e = engine(src, &[]);
        e.set_fuel(Some(1_000));
        let err = e.invoke("spin", &[]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::FuelExhausted));
        assert_eq!(e.fuel_used(), Some(1_000));
    }

    #[test]
    fn agrees_with_native_engine_on_shared_program() {
        let src = r#"
            var seed = 1;
            fn lcg() -> int {
                seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
                return seed;
            }
            fn churn(n: int) -> int {
                let acc = 0;
                let i = 0;
                while i < n {
                    acc = (acc ^ lcg()) & 0xFFFFFFFF;
                    i = i + 1;
                }
                return acc;
            }
        "#;
        let mut bc = engine(src, &[]);
        let mut native =
            engine_native::load_grail(src, &[], engine_native::SafetyMode::Unchecked).unwrap();
        let a = bc.invoke("churn", &[50]).unwrap();
        let b = native.invoke("churn", &[50]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn globals_persist_and_reset_with_reload() {
        let src = "var n = 0; fn bump() -> int { n = n + 1; return n; }";
        let mut e = engine(src, &[]);
        assert_eq!(e.invoke("bump", &[]).unwrap(), 1);
        assert_eq!(e.invoke("bump", &[]).unwrap(), 2);
        let mut fresh = engine(src, &[]);
        assert_eq!(fresh.invoke("bump", &[]).unwrap(), 1);
    }

    #[test]
    fn division_by_zero_traps() {
        let src = "fn f(b: int) -> int { return 10 / b; }";
        let mut e = engine(src, &[]);
        let err = e.invoke("f", &[0]).unwrap_err();
        assert_eq!(err.as_trap(), Some(&Trap::DivByZero));
        assert_eq!(e.invoke("f", &[5]).unwrap(), 2);
    }

    #[test]
    fn abort_surfaces_code() {
        let src = "fn f() -> int { abort(7); }";
        let mut e = engine(src, &[]);
        assert_eq!(
            e.invoke("f", &[]).unwrap_err().as_trap(),
            Some(&Trap::Abort(7))
        );
    }

    #[test]
    fn bind_then_invoke_matches_string_invoke() {
        let src = "fn add(a: int, b: int) -> int { return a + b; }";
        let mut e = engine(src, &[RegionSpec::data("buf", 4)]);
        let id = e.bind_entry("add").unwrap();
        assert_eq!(e.bind_entry("add").unwrap(), id);
        assert_eq!(e.invoke_id(id, &[40, 2]).unwrap(), 42);
        assert_eq!(e.invoke("add", &[40, 2]).unwrap(), 42);
        assert!(e.bind_entry("missing").is_err());

        let buf = e.bind_region("buf").unwrap();
        e.load_region_id(buf, 0, &[1, 2]).unwrap();
        assert_eq!(e.read_region_id(buf, 1).unwrap(), 2);
        assert!(e.bind_region("nope").is_err());
    }

    #[test]
    fn stale_handles_trap_deterministically() {
        let src = "fn f() -> int { return 1; }";
        let mut e = engine(src, &[RegionSpec::data("buf", 4)]);
        let err = e.invoke_id(graft_api::EntryId(9), &[]).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "entry", id: 9 })
        ));
        let err = e.read_region_id(graft_api::RegionId(9), 0).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "region", id: 9 })
        ));
    }

    #[test]
    fn invoke_batch_loops_the_vm() {
        let src = "var acc = 0; fn bump(d: int) -> int { acc = acc + d; return acc; }";
        let mut e = engine(src, &[]);
        let id = e.bind_entry("bump").unwrap();
        let mut out = Vec::new();
        e.invoke_batch(id, 3, &[5, 6, 7], &mut out).unwrap();
        assert_eq!(out, [5, 11, 18]);
    }

    #[test]
    fn large_constants_round_trip_through_the_pool() {
        let src = "fn big() -> int { return 0x123456789ABCDEF; }";
        let mut e = engine(src, &[]);
        assert_eq!(e.invoke("big", &[]).unwrap(), 0x0123_4567_89AB_CDEF);
    }
}
