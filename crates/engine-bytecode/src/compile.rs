//! Grail HIR → stack bytecode compiler (the `javac` of this workspace).

use std::collections::HashMap;

use graft_api::RegionSpec;
use graft_lang::hir::{BinOp, Expr, Program, RegionRef, Stmt, UnOp};

use crate::opcode::{self as op, emit};

/// One compiled bytecode function.
#[derive(Debug, Clone, PartialEq)]
pub struct BcFunc {
    /// Function name.
    pub name: String,
    /// Parameter count (locals `0..arity` on entry).
    pub arity: usize,
    /// Total local slots.
    pub locals: usize,
    /// Encoded instruction stream.
    pub code: Vec<u8>,
}

/// A compiled bytecode module (the "class file").
#[derive(Debug, Clone, PartialEq)]
pub struct BcModule {
    /// Functions in declaration order.
    pub funcs: Vec<BcFunc>,
    /// Scalar constant pool (LDC operands index here).
    pub pool: Vec<i64>,
    /// Constant tables (PLOAD).
    pub tables: Vec<Vec<i64>>,
    /// Global initial values.
    pub globals: Vec<i64>,
    /// Region ABI.
    pub regions: Vec<RegionSpec>,
    /// Function name → index.
    pub func_index: HashMap<String, usize>,
}

impl BcModule {
    /// Total bytecode size in bytes (compactness metric).
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

/// Compiles a checked program to bytecode.
pub fn compile(program: &Program) -> BcModule {
    let mut pool = Vec::new();
    let mut pool_map: HashMap<i64, u16> = HashMap::new();
    let funcs = program
        .funcs
        .iter()
        .map(|f| {
            let mut c = FnCompiler {
                code: Vec::new(),
                pool: &mut pool,
                pool_map: &mut pool_map,
            };
            for stmt in &f.body {
                c.stmt(stmt);
            }
            // Implicit void return (unreachable when all paths return).
            c.code.push(op::RET);
            BcFunc {
                name: f.name.clone(),
                arity: f.params.len(),
                locals: f.frame_size,
                code: c.code,
            }
        })
        .collect();
    BcModule {
        funcs,
        pool,
        tables: program.const_pools.iter().map(|p| p.values.clone()).collect(),
        globals: program.globals.iter().map(|g| g.init).collect(),
        regions: program.regions.clone(),
        func_index: program.func_index.clone(),
    }
}

struct FnCompiler<'a> {
    code: Vec<u8>,
    pool: &'a mut Vec<i64>,
    pool_map: &'a mut HashMap<i64, u16>,
}

impl FnCompiler<'_> {
    fn const_ref(&mut self, v: i64) -> u16 {
        if let Some(&idx) = self.pool_map.get(&v) {
            return idx;
        }
        let idx = u16::try_from(self.pool.len()).expect("constant pool overflow");
        self.pool.push(v);
        self.pool_map.insert(v, idx);
        idx
    }

    fn push_const(&mut self, v: i64) {
        if let Ok(small) = i16::try_from(v) {
            self.code.push(op::SIPUSH);
            emit::i16(&mut self.code, small);
        } else {
            let idx = self.const_ref(v);
            self.code.push(op::LDC);
            emit::u16(&mut self.code, idx);
        }
    }

    /// Emits a jump with a placeholder target; returns the operand
    /// offset to patch.
    fn jump(&mut self, opcode: u8) -> usize {
        self.code.push(opcode);
        let at = self.code.len();
        emit::u32(&mut self.code, u32::MAX);
        at
    }

    fn patch(&mut self, operand_at: usize, target: usize) {
        let bytes = (target as u32).to_le_bytes();
        self.code[operand_at..operand_at + 4].copy_from_slice(&bytes);
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn region_access(&mut self, region: RegionRef, store: bool) {
        match region {
            RegionRef::Shared(r) => {
                self.code.push(if store { op::RSTORE } else { op::RLOAD });
                emit::u16(&mut self.code, r);
            }
            RegionRef::Pool(p) => {
                debug_assert!(!store, "checker rejects pool stores");
                self.code.push(op::PLOAD);
                emit::u16(&mut self.code, p);
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { slot, init } | Stmt::AssignLocal { slot, value: init } => {
                self.expr(init);
                self.code.push(op::STORE);
                emit::u16(&mut self.code, *slot as u16);
            }
            Stmt::AssignGlobal { index, value } => {
                self.expr(value);
                self.code.push(op::GSET);
                emit::u16(&mut self.code, *index as u16);
            }
            Stmt::Store {
                region,
                index,
                value,
            } => {
                self.expr(index);
                self.expr(value);
                self.region_access(*region, true);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                let to_else = self.jump(op::JZ);
                for s in then_branch {
                    self.stmt(s);
                }
                if else_branch.is_empty() {
                    let end = self.here();
                    self.patch(to_else, end);
                } else {
                    let to_end = self.jump(op::GOTO);
                    let else_start = self.here();
                    self.patch(to_else, else_start);
                    for s in else_branch {
                        self.stmt(s);
                    }
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            Stmt::While { cond, body } => {
                let loop_start = self.here();
                self.expr(cond);
                let to_end = self.jump(op::JZ);
                let mut breaks = vec![to_end];
                let mut continues = Vec::new();
                self.loop_body(body, &mut breaks, &mut continues);
                for at in continues {
                    self.patch(at, loop_start);
                }
                self.code.push(op::GOTO);
                emit::u32(&mut self.code, loop_start as u32);
                let end = self.here();
                for at in breaks {
                    self.patch(at, end);
                }
            }
            Stmt::Break | Stmt::Continue => {
                unreachable!("loop_body rewrites break/continue")
            }
            Stmt::Return(Some(v)) => {
                self.expr(v);
                self.code.push(op::RETV);
            }
            Stmt::Return(None) => self.code.push(op::RET),
            Stmt::Expr(e) => {
                self.expr(e);
                self.code.push(op::POP);
            }
        }
    }

    /// Compiles loop body statements, collecting break/continue patch
    /// sites (handles arbitrary nesting by recursing through non-loop
    /// control structures).
    fn loop_body(
        &mut self,
        stmts: &[Stmt],
        breaks: &mut Vec<usize>,
        continues: &mut Vec<usize>,
    ) {
        for s in stmts {
            match s {
                Stmt::Break => breaks.push(self.jump(op::GOTO)),
                Stmt::Continue => continues.push(self.jump(op::GOTO)),
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.expr(cond);
                    let to_else = self.jump(op::JZ);
                    self.loop_body(then_branch, breaks, continues);
                    if else_branch.is_empty() {
                        let end = self.here();
                        self.patch(to_else, end);
                    } else {
                        let to_end = self.jump(op::GOTO);
                        let else_start = self.here();
                        self.patch(to_else, else_start);
                        self.loop_body(else_branch, breaks, continues);
                        let end = self.here();
                        self.patch(to_end, end);
                    }
                }
                // An inner `while` gets fresh break/continue scopes.
                other => self.stmt(other),
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(v) => self.push_const(*v),
            Expr::Local(slot) => {
                self.code.push(op::LOAD);
                emit::u16(&mut self.code, *slot as u16);
            }
            Expr::Global(index) => {
                self.code.push(op::GGET);
                emit::u16(&mut self.code, *index as u16);
            }
            Expr::Load { region, index } => {
                self.expr(index);
                self.region_access(*region, false);
            }
            Expr::Unary { op: uop, expr } => {
                self.expr(expr);
                self.code.push(match uop {
                    UnOp::Neg => op::NEG,
                    UnOp::BitNot => op::BNOT,
                    UnOp::Not => op::NOT,
                });
            }
            Expr::Binary { op: bop, lhs, rhs } => match bop {
                BinOp::LogicalAnd => {
                    // a ? b : 0, stack-style.
                    self.expr(lhs);
                    let to_false = self.jump(op::JZ);
                    self.expr(rhs);
                    let to_end = self.jump(op::GOTO);
                    let false_at = self.here();
                    self.patch(to_false, false_at);
                    self.push_const(0);
                    let end = self.here();
                    self.patch(to_end, end);
                }
                BinOp::LogicalOr => {
                    self.expr(lhs);
                    let to_rhs = self.jump(op::JZ);
                    self.push_const(1);
                    let to_end = self.jump(op::GOTO);
                    let rhs_at = self.here();
                    self.patch(to_rhs, rhs_at);
                    self.expr(rhs);
                    let end = self.here();
                    self.patch(to_end, end);
                }
                _ => {
                    self.expr(lhs);
                    self.expr(rhs);
                    self.code.push(match bop {
                        BinOp::Add => op::ADD,
                        BinOp::Sub => op::SUB,
                        BinOp::Mul => op::MUL,
                        BinOp::Div => op::DIV,
                        BinOp::Rem => op::REM,
                        BinOp::And => op::AND,
                        BinOp::Or => op::OR,
                        BinOp::Xor => op::XOR,
                        BinOp::Shl => op::SHL,
                        BinOp::Shr => op::SHR,
                        BinOp::Eq => op::EQ,
                        BinOp::Ne => op::NE,
                        BinOp::Lt => op::LT,
                        BinOp::Le => op::LE,
                        BinOp::Gt => op::GT,
                        BinOp::Ge => op::GE,
                        BinOp::LogicalAnd | BinOp::LogicalOr => unreachable!(),
                    });
                }
            },
            Expr::Call { func, args } => {
                for a in args {
                    self.expr(a);
                }
                self.code.push(op::CALL);
                emit::u16(&mut self.code, *func as u16);
                self.code
                    .push(u8::try_from(args.len()).expect("more than 255 args"));
            }
            Expr::Abort { code } => {
                self.expr(code);
                self.code.push(op::ABORT);
                // ABORT never returns; push a dummy so the stack model
                // stays balanced for the verifier.
                self.push_const(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> BcModule {
        let hir = graft_lang::compile(src, &[RegionSpec::data("buf", 8)]).unwrap();
        compile(&hir)
    }

    #[test]
    fn small_constants_use_sipush_large_use_pool() {
        let m = module("fn f() -> int { return 5 + 1000000; }");
        let code = &m.funcs[0].code;
        assert_eq!(code[0], op::SIPUSH);
        assert!(code.contains(&op::LDC));
        assert_eq!(m.pool, vec![1_000_000]);
    }

    #[test]
    fn constant_pool_deduplicates() {
        let m = module("fn f() -> int { return 1000000 + 1000000; }");
        assert_eq!(m.pool.len(), 1);
    }

    #[test]
    fn call_encodes_function_and_arity() {
        let m = module("fn g(a: int, b: int) -> int { return a; } fn f() -> int { return g(1, 2); }");
        let code = &m.funcs[1].code;
        let call_at = code.iter().position(|&b| b == op::CALL).unwrap();
        assert_eq!(crate::opcode::fetch::u16(code, call_at + 1), 0);
        assert_eq!(code[call_at + 3], 2);
    }

    #[test]
    fn statement_calls_pop_their_result() {
        let m = module("fn g() {} fn f() { g(); }");
        let code = &m.funcs[1].code;
        let call_at = code.iter().position(|&b| b == op::CALL).unwrap();
        assert_eq!(code[call_at + 4], op::POP);
    }

    #[test]
    fn while_compiles_to_backward_goto() {
        let m = module("fn f() { let i = 0; while i < 3 { i = i + 1; } }");
        let code = &m.funcs[0].code;
        let mut found_backward = false;
        let mut pc = 0;
        while pc < code.len() {
            let opc = code[pc];
            let len = crate::opcode::operand_len(opc).unwrap();
            if opc == op::GOTO {
                let target = crate::opcode::fetch::u32(code, pc + 1) as usize;
                if target < pc {
                    found_backward = true;
                }
            }
            pc += 1 + len;
        }
        assert!(found_backward);
    }

    #[test]
    fn bytecode_is_compact() {
        // The paper notes Java compiles to a *compact* byte code; our
        // encoding should be a small multiple of source tokens.
        let m = module("fn f(a: int) -> int { return a * a + buf[a]; }");
        assert!(m.code_size() < 64, "got {}", m.code_size());
    }
}
