//! Bytecode opcodes and operand encoding.
//!
//! Operands are little-endian and unaligned, fetched byte-by-byte by the
//! interpreter — the classic class-file layout that makes bytecode
//! compact to ship and slow to run.

/// No operation.
pub const NOP: u8 = 0;
/// Push a sign-extended 16-bit immediate. Operand: `i16`.
pub const SIPUSH: u8 = 1;
/// Push a constant-pool entry. Operand: `u16` pool index.
pub const LDC: u8 = 2;
/// Push local slot. Operand: `u16`.
pub const LOAD: u8 = 3;
/// Pop into local slot. Operand: `u16`.
pub const STORE: u8 = 4;
/// Discard the top of stack.
pub const POP: u8 = 5;
/// Duplicate the top of stack.
pub const DUP: u8 = 6;
/// Pop b, pop a, push `a + b` (wrapping); likewise for the rest.
pub const ADD: u8 = 7;
/// `a - b`
pub const SUB: u8 = 8;
/// `a * b`
pub const MUL: u8 = 9;
/// `a / b`, traps on zero.
pub const DIV: u8 = 10;
/// `a % b`, traps on zero.
pub const REM: u8 = 11;
/// `a & b`
pub const AND: u8 = 12;
/// `a | b`
pub const OR: u8 = 13;
/// `a ^ b`
pub const XOR: u8 = 14;
/// `a << (b & 63)`
pub const SHL: u8 = 15;
/// Logical `a >> (b & 63)`
pub const SHR: u8 = 16;
/// Arithmetic negate.
pub const NEG: u8 = 17;
/// Bitwise complement.
pub const BNOT: u8 = 18;
/// Boolean not (0 → 1, nonzero → 0).
pub const NOT: u8 = 19;
/// Comparisons push 0/1.
pub const EQ: u8 = 20;
/// `a != b`
pub const NE: u8 = 21;
/// `a < b`
pub const LT: u8 = 22;
/// `a <= b`
pub const LE: u8 = 23;
/// `a > b`
pub const GT: u8 = 24;
/// `a >= b`
pub const GE: u8 = 25;
/// Unconditional jump. Operand: `u32` absolute target.
pub const GOTO: u8 = 26;
/// Pop; jump if zero. Operand: `u32`.
pub const JZ: u8 = 27;
/// Pop; jump if nonzero. Operand: `u32`.
pub const JNZ: u8 = 28;
/// Call. Operands: `u16` function index, `u8` argument count. Pops the
/// arguments (last on top), pushes the result.
pub const CALL: u8 = 29;
/// Return 0.
pub const RET: u8 = 30;
/// Pop; return it.
pub const RETV: u8 = 31;
/// Pop index; push `region[index]`. Operand: `u16` region.
pub const RLOAD: u8 = 32;
/// Pop value, pop index; `region[index] = value`. Operand: `u16`.
pub const RSTORE: u8 = 33;
/// Pop index; push `pool[index]`. Operand: `u16` const-table.
pub const PLOAD: u8 = 34;
/// Push global. Operand: `u16`.
pub const GGET: u8 = 35;
/// Pop into global. Operand: `u16`.
pub const GSET: u8 = 36;
/// Pop code; trap with `Trap::Abort(code)`.
pub const ABORT: u8 = 37;

/// One past the largest valid opcode.
pub const OP_LIMIT: u8 = 38;

/// Byte length of each instruction's operands, indexed by opcode.
pub fn operand_len(op: u8) -> Option<usize> {
    Some(match op {
        NOP | POP | DUP | ADD | SUB | MUL | DIV | REM | AND | OR | XOR | SHL | SHR | NEG
        | BNOT | NOT | EQ | NE | LT | LE | GT | GE | RET | RETV | ABORT => 0,
        SIPUSH | LDC | LOAD | STORE | RLOAD | RSTORE | PLOAD | GGET | GSET => 2,
        CALL => 3,
        GOTO | JZ | JNZ => 4,
        _ => return None,
    })
}

/// Stack effect `(pops, pushes)` of an opcode; `CALL` is special-cased by
/// the verifier.
pub fn stack_effect(op: u8) -> Option<(usize, usize)> {
    Some(match op {
        NOP | GOTO | RET => (0, 0),
        SIPUSH | LDC | LOAD | GGET => (0, 1),
        STORE | POP | JZ | JNZ | GSET | ABORT | RETV => (1, 0),
        DUP => (1, 2),
        NEG | BNOT | NOT | RLOAD | PLOAD => (1, 1),
        ADD | SUB | MUL | DIV | REM | AND | OR | XOR | SHL | SHR | EQ | NE | LT | LE | GT
        | GE => (2, 1),
        RSTORE => (2, 0),
        CALL => return None,
        _ => return None,
    })
}

/// Little-endian operand writers used by the compiler.
pub mod emit {
    /// Appends a `u16`.
    pub fn u16(code: &mut Vec<u8>, v: u16) {
        code.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i16`.
    pub fn i16(code: &mut Vec<u8>, v: i16) {
        code.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(code: &mut Vec<u8>, v: u32) {
        code.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian operand readers used by the interpreter and verifier.
pub mod fetch {
    /// Reads a `u16` at `at`.
    #[inline]
    pub fn u16(code: &[u8], at: usize) -> u16 {
        u16::from_le_bytes([code[at], code[at + 1]])
    }

    /// Reads an `i16` at `at`.
    #[inline]
    pub fn i16(code: &[u8], at: usize) -> i16 {
        i16::from_le_bytes([code[at], code[at + 1]])
    }

    /// Reads a `u32` at `at`.
    #[inline]
    pub fn u32(code: &[u8], at: usize) -> u32 {
        u32::from_le_bytes([code[at], code[at + 1], code[at + 2], code[at + 3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_has_operand_len_and_effect() {
        for op in 0..OP_LIMIT {
            assert!(operand_len(op).is_some(), "opcode {op} missing length");
            if op != CALL {
                assert!(stack_effect(op).is_some(), "opcode {op} missing effect");
            }
        }
        assert!(operand_len(OP_LIMIT).is_none());
    }

    #[test]
    fn emit_fetch_round_trip() {
        let mut code = Vec::new();
        emit::u16(&mut code, 0xBEEF);
        emit::i16(&mut code, -2);
        emit::u32(&mut code, 0xDEAD_BEEF);
        assert_eq!(fetch::u16(&code, 0), 0xBEEF);
        assert_eq!(fetch::i16(&code, 2), -2);
        assert_eq!(fetch::u32(&code, 4), 0xDEAD_BEEF);
    }
}
