//! Slowloris and connection-churn stress: a tenant that dribbles bytes
//! or vanishes mid-stream must cost every other tenant nothing.
//!
//! Four shapes, two deterministic and two live:
//!
//! * **framer slowloris** (deterministic): a victim connection feeds an
//!   invoke frame one byte at a time; between every byte a bystander
//!   completes a full round-trip. The incremental framer holds the
//!   partial frame without ever blocking the pump or answering early.
//! * **churn orphans** (deterministic): a connection is torn down from
//!   the transport side with requests still in flight; their
//!   accounting runs exactly once, their replies are counted orphaned,
//!   and nothing leaks into other tenants.
//! * **pipe slowloris + churn** (live, gated on
//!   `kernsim::netpipe::AVAILABLE`): a byte-at-a-time dribbler holds
//!   its last byte until two fast clients have *finished entire
//!   sessions* — deterministic proof the threaded pump served others
//!   while the frame was incomplete — plus a client that drops its
//!   pipe mid-stream without `Bye`.
//! * **slow reader** (live, gated): a client writes thousands of
//!   requests while refusing to read replies until the end. Reply
//!   bytes exceed the pipe capacity, so the loop's non-blocking writes
//!   park them in the per-connection pending buffer; a concurrent fast
//!   client completes its session regardless, and every reply is
//!   eventually delivered. (The old blocking write loop deadlocks
//!   here.)

use graft_api::{
    EntryPoint, ExtensionEngine, NativeEngine, RegionSpec, RegionStore, Technology, Trap,
};
use graft_kernel::StealPolicy;
use graft_server::{
    serve_pipes_threaded, GraftClient, GraftServer, Reply, ServerConfig, TenantQuotas,
};
use kernsim::netpipe::PipeEnd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const POINT: u8 = 0;
const TECH: u8 = 0;

fn tagging() -> Box<dyn ExtensionEngine> {
    let specs = [RegionSpec::data("scratch", 8)];
    let entries = [EntryPoint {
        name: "select_victim".into(),
        arity: 2,
    }];
    let factory: graft_api::spec::SharedNativeFactory = Arc::new(|| {
        Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
            if args[1] == 0 {
                return Err(Trap::DivByZero.into());
            }
            Ok(args[0] * 31 + args[1])
        }) as Box<dyn graft_api::NativeGraft>
    });
    Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap())
}

fn build_server(config: ServerConfig) -> GraftServer {
    let mut s = GraftServer::new(config);
    s.register_spec("tag", Box::new(|_tech: Technology| Ok(tagging())));
    s
}

/// Hello + install on a fresh connection of a raw server.
fn session(server: &mut GraftServer, tenant: u64) -> (GraftClient, u64) {
    let conn = server.connect();
    let mut client = GraftClient::new(conn);
    for bytes in [client.hello(tenant), client.install(POINT, TECH, "tag")] {
        server.ingest(conn, &bytes);
    }
    server.pump_conn(conn);
    let out = server.take_outbound(conn);
    let graft = client
        .on_bytes(&out)
        .expect("setup replies decode")
        .into_iter()
        .find_map(|r| match r {
            Reply::Installed { graft, .. } => Some(graft),
            _ => None,
        })
        .expect("install succeeded");
    (client, graft)
}

#[test]
fn a_byte_at_a_time_frame_never_stalls_other_tenants() {
    let mut server = build_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let (mut slow, slow_graft) = session(&mut server, 1);
    let (mut fast, fast_graft) = session(&mut server, 2);

    let (slow_seq, slow_frame) = slow.invoke(slow_graft, 0, &[1, 9]);
    let mut fast_served = 0u64;
    for (i, byte) in slow_frame.iter().enumerate() {
        server.ingest(slow.conn, std::slice::from_ref(byte));
        // A full bystander round-trip between every dribbled byte.
        let k = 1 + i as i64;
        let (seq, bytes) = fast.invoke(fast_graft, 0, &[2, k]);
        server.ingest(fast.conn, &bytes);
        server.pump();
        server.drain_all();
        let replies = fast
            .on_bytes(&server.take_outbound(fast.conn))
            .expect("decode");
        assert_eq!(
            replies,
            vec![Reply::Value {
                seq,
                value: 2 * 31 + k
            }],
            "byte {i}: bystander stalled behind a partial frame"
        );
        fast_served += 1;
        if i + 1 < slow_frame.len() {
            // The partial frame must never have been answered.
            assert!(
                server.take_outbound(slow.conn).is_empty(),
                "byte {i}: replied to an incomplete frame"
            );
        }
    }

    // The last byte completed the frame: exactly one reply, correct.
    let replies = slow
        .on_bytes(&server.take_outbound(slow.conn))
        .expect("decode");
    assert_eq!(
        replies,
        vec![Reply::Value {
            seq: slow_seq,
            value: 31 + 9
        }]
    );
    assert_eq!(fast_served, slow_frame.len() as u64);
    assert_eq!(server.stats().served, fast_served + 1);
}

#[test]
fn transport_churn_orphans_replies_but_accounts_exactly_once() {
    let mut server = build_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let (mut churner, churn_graft) = session(&mut server, 1);
    let (mut fast, fast_graft) = session(&mut server, 2);

    // Admit a burst, then the peer vanishes before anything completes.
    const K: u64 = 12;
    for k in 1..=K as i64 {
        let (_, bytes) = churner.invoke(churn_graft, 0, &[1, k]);
        server.ingest(churner.conn, &bytes);
    }
    server.pump();
    assert_eq!(server.in_flight(), K);
    server.disconnect(churner.conn);
    assert!(!server.is_open(churner.conn));

    server.drain_all();

    // Every reply was dropped as an orphan; the accounting still ran
    // exactly once per request.
    assert_eq!(server.stats().orphaned, K);
    assert_eq!(server.in_flight(), 0);
    assert_eq!(server.backlog(), 0);
    assert_eq!(
        server.tenant_ledger(1).map(|(a, r, _)| (a, r)),
        Some((K, 0))
    );
    assert!(server.take_outbound(churner.conn).is_empty());

    // Rapid reconnect: the same tenant on a fresh connection is served
    // immediately — churn is not quarantine.
    let conn = server.connect();
    let mut back = GraftClient::new(conn);
    let hello = back.hello(1);
    server.ingest(conn, &hello);
    let (seq, bytes) = back.invoke(churn_graft, 0, &[1, 5]);
    server.ingest(conn, &bytes);
    server.pump();
    server.drain_all();
    let replies = back.on_bytes(&server.take_outbound(conn)).expect("decode");
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert_eq!(replies[1], Reply::Value { seq, value: 31 + 5 });

    // The bystander never noticed any of it.
    let (seq, bytes) = fast.invoke(fast_graft, 0, &[2, 3]);
    server.ingest(fast.conn, &bytes);
    server.pump();
    server.drain_all();
    let replies = fast
        .on_bytes(&server.take_outbound(fast.conn))
        .expect("decode");
    assert_eq!(
        replies,
        vec![Reply::Value {
            seq,
            value: 2 * 31 + 3
        }]
    );
}

/// A full fast-client session over a pipe end: hello, install,
/// `invokes` invokes, bye. Panics on any non-Value invoke reply.
fn fast_session(end: PipeEnd, tenant: u64, invokes: i64) -> u64 {
    let mut c = GraftClient::new(0);
    assert!(end.write_all(&c.hello(tenant)));
    assert!(end.write_all(&c.install(POINT, TECH, "tag")));

    let mut replies = Vec::new();
    let mut buf = [0u8; 4096];
    let mut read_some = |c: &mut GraftClient, replies: &mut Vec<Reply>| loop {
        match end.read(&mut buf) {
            Some(0) => panic!("server closed early"),
            Some(n) => {
                replies.extend(c.on_bytes(&buf[..n]).unwrap());
                return;
            }
            None => std::thread::yield_now(),
        }
    };
    while replies.len() < 2 {
        read_some(&mut c, &mut replies);
    }
    let graft = match &replies[1] {
        Reply::Installed { graft, .. } => *graft,
        other => panic!("{other:?}"),
    };
    for k in 1..=invokes {
        let (_, bytes) = c.invoke(graft, 0, &[tenant as i64, k]);
        assert!(end.write_all(&bytes));
    }
    while replies.len() < 2 + invokes as usize {
        read_some(&mut c, &mut replies);
    }
    let mut served = 0;
    for r in &replies[2..] {
        match r {
            Reply::Value { .. } => served += 1,
            other => panic!("tenant {tenant}: {other:?}"),
        }
    }
    assert!(end.write_all(&c.bye()));
    while replies.len() < 3 + invokes as usize {
        read_some(&mut c, &mut replies);
    }
    assert!(matches!(replies.pop(), Some(Reply::Gone { .. })));
    served
}

#[test]
fn threaded_pipes_survive_a_dribbler_and_a_mid_stream_drop() {
    if !kernsim::netpipe::AVAILABLE {
        return;
    }
    const FAST: u64 = 2;
    const INVOKES: i64 = 40;
    const CHURN_K: i64 = 16;

    let mut server = build_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut server_ends = Vec::new();
    let mut fast_threads = Vec::new();
    let finished = Arc::new(AtomicUsize::new(0));

    // Fast clients: full sessions that must complete while the
    // dribbler's frame is still open.
    for tenant in 10..10 + FAST {
        let (server_end, client_end) = PipeEnd::pair().expect("pipes available");
        server_ends.push(server_end);
        let finished = Arc::clone(&finished);
        fast_threads.push(std::thread::spawn(move || {
            let served = fast_session(client_end, tenant, INVOKES);
            finished.fetch_add(1, Ordering::Release);
            served
        }));
    }

    // The dribbler: hello + install normally, then an invoke frame one
    // byte at a time — and the *last byte is withheld* until every fast
    // client has finished its whole session. When the reply then
    // arrives, the pump provably never waited on the partial frame.
    let (server_end, dribble_end) = PipeEnd::pair().expect("pipes available");
    server_ends.push(server_end);
    let dribble_finished = Arc::clone(&finished);
    let dribbler = std::thread::spawn(move || {
        let mut c = GraftClient::new(0);
        assert!(dribble_end.write_all(&c.hello(1)));
        assert!(dribble_end.write_all(&c.install(POINT, TECH, "tag")));
        let mut replies = Vec::new();
        let mut buf = [0u8; 4096];
        while replies.len() < 2 {
            match dribble_end.read(&mut buf) {
                Some(0) => panic!("server closed early"),
                Some(n) => replies.extend(c.on_bytes(&buf[..n]).unwrap()),
                None => std::thread::yield_now(),
            }
        }
        let graft = match &replies[1] {
            Reply::Installed { graft, .. } => *graft,
            other => panic!("{other:?}"),
        };
        let (seq, frame) = c.invoke(graft, 0, &[1, 7]);
        for byte in &frame[..frame.len() - 1] {
            assert!(dribble_end.write_all(std::slice::from_ref(byte)));
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        // Hold the frame open until the fast sessions are *done*.
        while dribble_finished.load(Ordering::Acquire) < FAST as usize {
            std::thread::yield_now();
        }
        assert!(dribble_end.write_all(std::slice::from_ref(frame.last().unwrap())));
        loop {
            match dribble_end.read(&mut buf) {
                Some(0) => panic!("server closed early"),
                Some(n) => {
                    replies.extend(c.on_bytes(&buf[..n]).unwrap());
                    if replies.len() >= 3 {
                        break;
                    }
                }
                None => std::thread::yield_now(),
            }
        }
        assert_eq!(replies[2], Reply::Value { seq, value: 31 + 7 });
        assert!(dribble_end.write_all(&c.bye()));
        loop {
            match dribble_end.read(&mut buf) {
                Some(0) => return, // server closed after Gone: fine
                Some(n) => {
                    replies.extend(c.on_bytes(&buf[..n]).unwrap());
                    if matches!(replies.last(), Some(Reply::Gone { .. })) {
                        return;
                    }
                }
                None => std::thread::yield_now(),
            }
        }
    });

    // The churner: requests in flight, then the whole end drops — no
    // Bye, reader and writer both gone.
    let (server_end, churn_end) = PipeEnd::pair().expect("pipes available");
    server_ends.push(server_end);
    let churner = std::thread::spawn(move || {
        let mut c = GraftClient::new(0);
        assert!(churn_end.write_all(&c.hello(99)));
        assert!(churn_end.write_all(&c.install(POINT, TECH, "tag")));
        let mut replies = Vec::new();
        let mut buf = [0u8; 4096];
        while replies.len() < 2 {
            match churn_end.read(&mut buf) {
                Some(0) => panic!("server closed early"),
                Some(n) => replies.extend(c.on_bytes(&buf[..n]).unwrap()),
                None => std::thread::yield_now(),
            }
        }
        let graft = match &replies[1] {
            Reply::Installed { graft, .. } => *graft,
            other => panic!("{other:?}"),
        };
        for k in 1..=CHURN_K {
            let (_, bytes) = c.invoke(graft, 0, &[99, k]);
            assert!(churn_end.write_all(&bytes));
        }
        // Wait for at least one reply so the burst was demonstrably
        // admitted, then vanish.
        while replies.len() < 3 {
            match churn_end.read(&mut buf) {
                Some(0) => panic!("server closed early"),
                Some(n) => replies.extend(c.on_bytes(&buf[..n]).unwrap()),
                None => std::thread::yield_now(),
            }
        }
        drop(churn_end);
    });

    let stats = serve_pipes_threaded(&mut server, server_ends);
    assert_eq!(stats.closed, FAST as usize + 2);

    for t in fast_threads {
        assert_eq!(t.join().expect("fast client"), INVOKES as u64);
    }
    dribbler.join().expect("dribbler");
    churner.join().expect("churner");

    // The churned tenant's burst was accounted exactly once; the
    // server fully quiesced with nothing leaked or stuck.
    assert_eq!(
        server.tenant_ledger(99).map(|(a, r, _)| (a, r)),
        Some((CHURN_K as u64, 0))
    );
    assert_eq!(server.in_flight(), 0);
    assert_eq!(server.backlog(), 0);
    assert_eq!(
        server.stats().served,
        FAST * INVOKES as u64 + 1 + CHURN_K as u64
    );
}

#[test]
fn a_slow_reader_parks_replies_without_blocking_the_pump() {
    if !kernsim::netpipe::AVAILABLE {
        return;
    }
    // Enough replies to overflow a pipe buffer several times: the
    // loop's non-blocking writes must park the excess and move on.
    const SLOW_INVOKES: i64 = 6000;
    const FAST_INVOKES: i64 = 50;

    let mut server = build_server(ServerConfig {
        shards: 2,
        steal: StealPolicy {
            queue_cap: 4096,
            ..StealPolicy::default()
        },
        quotas: TenantQuotas {
            max_in_flight: 8192,
            ..TenantQuotas::default()
        },
        ..ServerConfig::default()
    });

    let (server_end, slow_end) = PipeEnd::pair().expect("pipes available");
    let (server_end2, fast_end) = PipeEnd::pair().expect("pipes available");

    let slow = std::thread::spawn(move || {
        let mut c = GraftClient::new(0);
        assert!(slow_end.write_all(&c.hello(1)));
        assert!(slow_end.write_all(&c.install(POINT, TECH, "tag")));
        let mut replies = Vec::new();
        let mut buf = [0u8; 4096];
        while replies.len() < 2 {
            match slow_end.read(&mut buf) {
                Some(0) => panic!("server closed early"),
                Some(n) => replies.extend(c.on_bytes(&buf[..n]).unwrap()),
                None => std::thread::yield_now(),
            }
        }
        let graft = match &replies[1] {
            Reply::Installed { graft, .. } => *graft,
            other => panic!("{other:?}"),
        };
        // Write everything, read nothing: the reply pipe fills and
        // stays full until this loop ends.
        for k in 1..=SLOW_INVOKES {
            let (_, bytes) = c.invoke(graft, 0, &[1, 1 + (k % 100)]);
            assert!(slow_end.write_all(&bytes));
        }
        // Now drain: every single reply must eventually arrive.
        while replies.len() < 2 + SLOW_INVOKES as usize {
            match slow_end.read(&mut buf) {
                Some(0) => panic!("server closed early"),
                Some(n) => replies.extend(c.on_bytes(&buf[..n]).unwrap()),
                None => std::thread::yield_now(),
            }
        }
        let mut served = 0u64;
        for r in &replies[2..] {
            match r {
                Reply::Value { .. } => served += 1,
                other => panic!("slow reader: {other:?}"),
            }
        }
        assert!(slow_end.write_all(&c.bye()));
        while replies.len() < 3 + SLOW_INVOKES as usize {
            match slow_end.read(&mut buf) {
                Some(0) => break,
                Some(n) => replies.extend(c.on_bytes(&buf[..n]).unwrap()),
                None => std::thread::yield_now(),
            }
        }
        served
    });
    let fast = std::thread::spawn(move || fast_session(fast_end, 2, FAST_INVOKES));

    let stats = serve_pipes_threaded(&mut server, vec![server_end, server_end2]);
    assert_eq!(stats.closed, 2);

    // The fast client finished its entire session despite ~100KB of
    // parked replies on the slow connection; the slow reader got every
    // one of its replies once it started reading.
    assert_eq!(fast.join().expect("fast client"), FAST_INVOKES as u64);
    assert_eq!(slow.join().expect("slow reader"), SLOW_INVOKES as u64);
    assert_eq!(
        server.stats().served,
        (SLOW_INVOKES + FAST_INVOKES) as u64
    );
    assert_eq!(server.stats().orphaned, 0);
    assert_eq!(server.in_flight(), 0);
}
