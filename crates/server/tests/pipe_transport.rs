//! The live pipe front-end: the same protocol core as the virtual
//! transport, fed through real non-blocking pipes and a `poll(2)`
//! readiness loop, with clients on their own threads.
//!
//! Gated on `kernsim::netpipe::AVAILABLE`: on targets without the FFI
//! shims the test is a no-op (the documented fallback is the virtual
//! transport, covered in `server_e2e.rs`).

use graft_api::{
    EntryPoint, ExtensionEngine, NativeEngine, RegionSpec, RegionStore, Technology, Trap,
};
use graft_server::{serve_pipes, GraftClient, GraftServer, Reply, ServerConfig, TenantQuotas};
use kernsim::netpipe::PipeEnd;
use std::sync::Arc;

fn tagging() -> Box<dyn ExtensionEngine> {
    let specs = [RegionSpec::data("scratch", 8)];
    let entries = [EntryPoint {
        name: "select_victim".into(),
        arity: 2,
    }];
    let factory: graft_api::spec::SharedNativeFactory = Arc::new(|| {
        Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
            if args[1] == 0 {
                return Err(Trap::DivByZero.into());
            }
            Ok(args[0] * 31 + args[1])
        }) as Box<dyn graft_api::NativeGraft>
    });
    Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap())
}

/// One client session over a pipe end: hello, install, a burst of
/// invokes, bye. Reads replies with a blocking-ish poll-free loop
/// (the read side of the *client* end is non-blocking too).
fn client_session(end: PipeEnd, tenant: u64, invokes: i64) -> Vec<(u32, i64)> {
    let mut c = GraftClient::new(0); // conn id unused on the client side
    assert!(end.write_all(&c.hello(tenant)));
    assert!(end.write_all(&c.install(0, 0, "tag")));

    let mut replies = Vec::new();
    let mut buf = [0u8; 4096];
    let mut read_some = |c: &mut GraftClient, replies: &mut Vec<Reply>| loop {
        match end.read(&mut buf) {
            Some(0) => panic!("server closed early"),
            Some(n) => {
                replies.extend(c.on_bytes(&buf[..n]).unwrap());
                return;
            }
            None => std::thread::yield_now(),
        }
    };

    // Wait for Welcome + Installed.
    while replies.len() < 2 {
        read_some(&mut c, &mut replies);
    }
    let graft = match &replies[1] {
        Reply::Installed { graft, .. } => *graft,
        other => panic!("{other:?}"),
    };

    let mut sent = Vec::new();
    for k in 1..=invokes {
        let (seq, bytes) = c.invoke(graft, 0, &[tenant as i64, k]);
        sent.push(seq);
        assert!(end.write_all(&bytes));
    }
    while replies.len() < 2 + sent.len() {
        read_some(&mut c, &mut replies);
    }
    // Orderly close: send Bye and wait for its Gone ack so the server
    // never writes into a torn-down pipe.
    assert!(end.write_all(&c.bye()));
    while replies.len() < 3 + sent.len() {
        read_some(&mut c, &mut replies);
    }
    assert!(matches!(replies.pop(), Some(Reply::Gone { .. })));

    replies[2..]
        .iter()
        .map(|r| match r {
            Reply::Value { seq, value } => (*seq, *value),
            other => panic!("{other:?}"),
        })
        .collect()
}

#[test]
fn pipe_readiness_loop_serves_concurrent_clients() {
    if !kernsim::netpipe::AVAILABLE {
        return;
    }
    let mut server = GraftServer::new(ServerConfig {
        shards: 2,
        quotas: TenantQuotas {
            max_in_flight: 256,
            ..TenantQuotas::default()
        },
        ..ServerConfig::default()
    });
    server.register_spec("tag", Box::new(|_t: Technology| Ok(tagging())));

    const CLIENTS: u64 = 3;
    const INVOKES: i64 = 40;
    let mut server_ends = Vec::new();
    let mut threads = Vec::new();
    for tenant in 0..CLIENTS {
        let (server_end, client_end) = PipeEnd::pair().expect("pipes available");
        server_ends.push(server_end);
        threads.push(std::thread::spawn(move || {
            client_session(client_end, tenant, INVOKES)
        }));
    }

    let stats = serve_pipes(&mut server, server_ends);
    assert_eq!(stats.closed, CLIENTS as usize);
    assert!(stats.chunks > 0);

    for (tenant, t) in threads.into_iter().enumerate() {
        let values = t.join().expect("client thread");
        assert_eq!(values.len(), INVOKES as usize);
        // Replies re-associate by seq and never leak another tenant's
        // verdict across the wire.
        for (seq, value) in values {
            let k = (seq - 2) as i64; // seq 1 = hello, 2 = install
            assert_eq!(value, tenant as i64 * 31 + k);
        }
    }
    assert_eq!(server.stats().served, CLIENTS * INVOKES as u64);
    assert_eq!(server.stats().tenants, CLIENTS);
}
