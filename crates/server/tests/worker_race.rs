//! Exactly-once strike accounting when a trap races the tenant's own
//! queued work on another worker.
//!
//! The hazard: a tenant's trap on worker A detaches the graft
//! (kernel-side CAS) while worker B is concurrently serving the same
//! tenant's next queued request. If strike accounting keyed off "the
//! reply was an error" the tenant would be struck once per straggler;
//! the fix under test is structural — completions are reaped serially
//! on the pump thread and only a `Serving -> quarantined-graft`
//! transition strikes, so one trap episode is one strike no matter how
//! many in-flight requests it strands.
//!
//! Two shapes:
//!
//! * a **deterministic interleave** built with the invoke/reap split:
//!   the trap batch is invoked on its home shard, the tenant's
//!   remaining requests are invoked on the divert shard *before any
//!   completion is processed*, then one reap settles the lot;
//! * a **live race**: a worker plane under a banning saboteur plus six
//!   clean victim tenants, iterated to shake interleavings on real
//!   threads.

use graft_api::{
    EntryPoint, ExtensionEngine, NativeEngine, RegionSpec, RegionStore, Technology, Trap,
};
use graft_kernel::{HostConfig, StealPolicy};
use graft_server::{GraftClient, GraftServer, Reply, ServerConfig, Standing, WireError};
use std::collections::BTreeMap;

const POINT: u8 = 0;
const TECH: u8 = 0;

fn tagging() -> Box<dyn ExtensionEngine> {
    let specs = [RegionSpec::data("scratch", 8)];
    let entries = [EntryPoint {
        name: "select_victim".into(),
        arity: 2,
    }];
    let factory: graft_api::spec::SharedNativeFactory = std::sync::Arc::new(|| {
        Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
            if args[1] == 0 {
                return Err(Trap::DivByZero.into());
            }
            Ok(args[0] * 31 + args[1])
        })
    });
    Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap())
}

fn build_server(config: ServerConfig) -> GraftServer {
    let mut s = GraftServer::new(config);
    s.register_spec("tag", Box::new(|_tech: Technology| Ok(tagging())));
    s
}

/// Hello + install on a fresh connection; returns the client and the
/// graft handle.
fn session(server: &mut GraftServer, tenant: u64) -> (GraftClient, u64) {
    let conn = server.connect();
    let mut client = GraftClient::new(conn);
    for bytes in [client.hello(tenant), client.install(POINT, TECH, "tag")] {
        server.ingest(conn, &bytes);
    }
    server.pump_conn(conn);
    let out = server.take_outbound(conn);
    let graft = client
        .on_bytes(&out)
        .expect("setup replies decode")
        .into_iter()
        .find_map(|r| match r {
            Reply::Installed { graft, .. } => Some(graft),
            _ => None,
        })
        .expect("install succeeded");
    (client, graft)
}

fn drain_replies(server: &mut GraftServer, client: &mut GraftClient) -> Vec<Reply> {
    let out = server.take_outbound(client.conn);
    client.on_bytes(&out).expect("server frames decode")
}

/// The deterministic interleave: worker A's trap detaches the graft
/// while the tenant's next requests already sit invoked-or-queued on
/// worker B's shard. One strike, one quarantine, zero served values.
#[test]
fn a_trap_on_one_shard_strikes_once_while_another_shard_serves_the_queue() {
    let config = ServerConfig {
        shards: 2,
        // First trap detaches: the whole tail of the episode strands,
        // whichever shard it was invoked on.
        host: HostConfig {
            trap_threshold: 1,
            ..HostConfig::default()
        },
        // A 3-deep home queue so the tenant's tail diverts to the
        // other shard — the two-worker split without any racing.
        steal: StealPolicy {
            queue_cap: 3,
            ..StealPolicy::default()
        },
        ..ServerConfig::default()
    };
    let mut server = build_server(config);
    let (mut client, graft) = session(&mut server, 1);
    let home = server.home_shard(1);
    let other = 1 - home;

    // Three traps then three cleans, all admitted before anything is
    // invoked: traps fill the home queue, cleans divert.
    let mut seqs = Vec::new();
    for k in [0i64, 0, 0, 5, 6, 7] {
        let (seq, bytes) = client.invoke(graft, 0, &[1, k]);
        seqs.push(seq);
        server.ingest(client.conn, &bytes);
    }
    server.pump();
    assert_eq!(server.shard_depth(home), 3, "traps fill the home queue");
    assert_eq!(server.shard_depth(other), 3, "cleans divert");
    assert_eq!(server.queue_stats().diverted, 3);

    // Worker A drains its trap queue dry: the first trap detaches the
    // graft, everything after strands. Batches are adaptive and the
    // balance-steal may pull some of B's cleans over mid-drain —
    // either way the traps go first and A invokes at least them.
    let mut on_a = 0;
    while server.shard_depth(home) > 0 {
        on_a += server.drain_invoke(home);
    }
    assert!(on_a >= 3, "worker A invoked at least its own queue: {on_a}");
    // Worker B: whatever of the tenant's tail was not stolen, invoked
    // before any completion has been processed — the race window,
    // frozen.
    let mut on_b = 0;
    while server.shard_depth(other) > 0 {
        on_b += server.drain_invoke(other);
    }
    assert_eq!(on_a + on_b, 6);
    // Nothing has been accounted yet; now settle in one pass.
    assert_eq!(server.in_flight(), 6);
    assert_eq!(server.reap(), 6);

    let mut replies = BTreeMap::new();
    for r in drain_replies(&mut server, &mut client) {
        assert!(replies.insert(r.seq(), r).is_none(), "seq answered twice");
    }
    assert_eq!(replies.len(), 6, "every stranded request was answered");
    let traps = replies
        .values()
        .filter(|r| matches!(r, Reply::Error { error: WireError::Trap { .. }, .. }))
        .count();
    let stranded = replies
        .values()
        .filter(|r| matches!(r, Reply::Error { error: WireError::Unavailable(_), .. }))
        .count();
    let served = replies
        .values()
        .filter(|r| matches!(r, Reply::Value { .. }))
        .count();
    assert_eq!(
        (traps, stranded, served),
        (1, 5, 0),
        "one trap reply, five stranded, nothing served: {replies:?}"
    );

    // Exactly one strike for the whole episode.
    assert_eq!(server.tenant_trips(1), Some(1));
    assert_eq!(server.stats().tenants_quarantined, 1);
    assert!(matches!(
        server.tenant_standing(1),
        Some(Standing::Parked { .. })
    ));
}

/// The live race: a banning saboteur (backoff base 0: first strike is
/// terminal) floods traps into a running worker plane while six victim
/// tenants are served concurrently. However the threads interleave —
/// concurrent trap invokes, steals, stragglers — the saboteur is
/// struck exactly once and every victim request is served.
#[test]
fn a_banning_saboteur_on_live_workers_strikes_once_and_victims_never_notice() {
    const ITERS: u64 = 30;
    const VICTIMS: u64 = 6;
    const CALLS: i64 = 8;
    for iter in 0..ITERS {
        let config = ServerConfig {
            shards: 4,
            backoff_base: 0, // first quarantine is a permanent ban
            ..ServerConfig::default()
        };
        let mut server = build_server(config);
        let (mut sab, sab_graft) = session(&mut server, 999);
        let mut victims: Vec<(GraftClient, u64)> = (1..=VICTIMS)
            .map(|t| session(&mut server, t))
            .collect();

        let plane = server.spawn_workers();

        // Interleave the saboteur's traps with victim traffic so the
        // admissions land shuffled across the plane.
        let mut expected: Vec<BTreeMap<u32, i64>> = vec![BTreeMap::new(); VICTIMS as usize];
        for call in 0..CALLS {
            let (_, bytes) = sab.invoke(sab_graft, 0, &[9, 0]);
            server.ingest(sab.conn, &bytes);
            for (v, (client, graft)) in victims.iter_mut().enumerate() {
                let k = 1 + (iter as i64 * CALLS + call) % 100;
                let (seq, bytes) = client.invoke(*graft, 0, &[v as i64, k]);
                expected[v].insert(seq, v as i64 * 31 + k);
                server.ingest(client.conn, &bytes);
            }
            server.pump();
        }

        while server.in_flight() > 0 {
            if server.reap() == 0 {
                std::thread::yield_now();
            }
        }
        plane.join(&mut server);

        // Exactly-once strike, terminal ban, zero served traps.
        assert_eq!(server.tenant_trips(999), Some(1), "iter {iter}");
        assert_eq!(
            server.tenant_standing(999),
            Some(Standing::Banned),
            "iter {iter}"
        );
        for r in drain_replies(&mut server, &mut sab) {
            assert!(
                matches!(r, Reply::Error { .. }),
                "iter {iter}: saboteur got served: {r:?}"
            );
        }

        // Every victim request came back with its value — the episode
        // leaked nothing into their service.
        for (v, (client, _)) in victims.iter_mut().enumerate() {
            let mut got = BTreeMap::new();
            for r in drain_replies(&mut server, client) {
                match r {
                    Reply::Value { seq, value } => {
                        got.insert(seq, value);
                    }
                    other => panic!("iter {iter} victim {v}: {other:?}"),
                }
            }
            assert_eq!(got, expected[v], "iter {iter} victim {v}");
            let id = 1 + v as u64;
            assert_eq!(server.tenant_trips(id), Some(0), "iter {iter} victim {v}");
            assert_eq!(
                server.tenant_standing(id),
                Some(Standing::Serving),
                "iter {iter} victim {v}"
            );
        }
        assert_eq!(server.backlog(), 0);
    }
}
