//! End-to-end conformance for the graft-server protocol core.
//!
//! Everything here crosses the wire as *bytes* through the
//! `VirtualTransport`, so the framing, error, and reordering paths are
//! the ones a live pipe exercises. The suite pins the ISSUE contracts:
//! malformed frames answered without tearing the connection, stale
//! `EntryId`s trapping deterministically, batched wire invokes
//! matching the in-process `invoke_batch` verdict-for-verdict, typed
//! quota refusals, and backoff re-admission timelines matching the
//! PR 5 scalar ladder.

use graft_api::{
    EntryPoint, ExtensionEngine, GraftError, NativeEngine, RegionSpec, RegionStore, Technology,
    Trap,
};
use graft_kernel::{AttachPoint, GraftHost, GraftState, HostConfig, StealPolicy};
use graft_server::{
    GraftServer, Reply, ServerConfig, Standing, TenantQuotas, VirtualTransport, WireError,
};
use std::sync::Arc;

/// Wire code for `AttachPoint::VmEvict` (`select_victim/2`).
const POINT: u8 = 0;
/// Wire code for `Technology::RustNative`.
const TECH: u8 = 0;

/// A forkable native engine exporting `select_victim/2`.
fn victim_engine<F>(make: F) -> Box<dyn ExtensionEngine>
where
    F: Fn() -> Box<dyn graft_api::NativeGraft> + Send + Sync + 'static,
{
    let specs = [RegionSpec::data("scratch", 8)];
    let entries = [EntryPoint {
        name: "select_victim".into(),
        arity: 2,
    }];
    let factory: graft_api::spec::SharedNativeFactory = Arc::new(make);
    Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap())
}

/// `select_victim(a, b) = a*31 + b`, trapping DivByZero when `b == 0`.
fn tagging() -> Box<dyn ExtensionEngine> {
    victim_engine(|| {
        Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
            if args[1] == 0 {
                return Err(Trap::DivByZero.into());
            }
            Ok(args[0] * 31 + args[1])
        })
    })
}

fn server(config: ServerConfig) -> GraftServer {
    let mut s = GraftServer::new(config);
    s.register_spec(
        "tag",
        Box::new(|_tech: Technology| Ok(tagging())),
    );
    s
}

/// hello → install → bind → invoke round trip, all through bytes.
#[test]
fn hello_install_invoke_round_trip() {
    let mut vt = VirtualTransport::new(server(ServerConfig::default()));
    let mut c = vt.connect();

    let hello = c.hello(7);
    assert_eq!(vt.rpc(&mut c, &hello), Reply::Welcome { seq: 1, tenant: 7 });

    let install = c.install(POINT, TECH, "tag");
    let graft = match vt.rpc(&mut c, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };

    let bind = c.bind(graft, "select_victim");
    assert!(matches!(vt.rpc(&mut c, &bind), Reply::Bound { entry: 0, .. }));

    let (seq, invoke) = c.invoke(graft, 0, &[10, 3]);
    assert_eq!(
        vt.rpc(&mut c, &invoke),
        Reply::Value {
            seq,
            value: 10 * 31 + 3
        }
    );
}

/// A malformed frame gets a typed error and the connection keeps
/// serving; an oversized length prefix is the one fatal shape.
#[test]
fn malformed_frame_does_not_tear_the_connection() {
    let mut vt = VirtualTransport::new(server(ServerConfig::default()));
    let mut c = vt.connect();
    let hello = c.hello(1);
    vt.rpc(&mut c, &hello);
    let install = c.install(POINT, TECH, "tag");
    let graft = match vt.rpc(&mut c, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };

    // A well-framed body with an unknown opcode.
    let mut bogus = Vec::new();
    let body = [0x6fu8, 9, 0, 0, 0, 0xde, 0xad];
    bogus.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bogus.extend_from_slice(&body);
    match vt.rpc(&mut c, &bogus) {
        Reply::Error {
            seq: 9,
            error: WireError::Malformed(_),
        } => {}
        other => panic!("{other:?}"),
    }

    // The connection survived: the next real request still serves.
    let (seq, invoke) = c.invoke(graft, 0, &[2, 1]);
    assert_eq!(vt.rpc(&mut c, &invoke), Reply::Value { seq, value: 63 });
    assert_eq!(vt.server.stats().malformed, 1);

    // An untrusted length prefix, by contrast, closes the connection.
    let mut fatal = Vec::new();
    fatal.extend_from_slice(&(graft_server::MAX_FRAME as u32 + 1).to_le_bytes());
    let replies = vt.exchange(&mut c, &fatal);
    assert!(
        matches!(
            replies.as_slice(),
            [Reply::Error {
                error: WireError::Malformed(_),
                ..
            }]
        ),
        "{replies:?}"
    );
    assert!(!vt.server.is_open(c.conn));
}

/// A stale `EntryId` over the wire traps deterministically — same
/// answer every time, never a panic, never an enqueue.
#[test]
fn stale_entry_id_traps_deterministically() {
    let mut vt = VirtualTransport::new(server(ServerConfig::default()));
    let mut c = vt.connect();
    let hello = c.hello(1);
    vt.rpc(&mut c, &hello);
    let install = c.install(POINT, TECH, "tag");
    let graft = match vt.rpc(&mut c, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };

    for _ in 0..3 {
        let (seq, invoke) = c.invoke(graft, 99, &[1, 1]);
        assert_eq!(
            vt.rpc(&mut c, &invoke),
            Reply::Error {
                seq,
                error: WireError::StaleHandle { kind: 0, id: 99 }
            }
        );
    }
    // Stale-handle refusals never reached the data plane.
    assert_eq!(vt.server.stats().served, 0);

    // And a handle from another tenant's namespace is invisible, not
    // stale: cross-tenant probing learns nothing but NoSuchGraft.
    let mut c2 = vt.connect();
    let hello = c2.hello(2);
    vt.rpc(&mut c2, &hello);
    let (seq, invoke) = c2.invoke(graft, 0, &[1, 1]);
    assert_eq!(
        vt.rpc(&mut c2, &invoke),
        Reply::Error {
            seq,
            error: WireError::NoSuchGraft(graft)
        }
    );
}

/// Batched wire invoke ≡ in-process `invoke_batch`, verdict for
/// verdict, including the prefix-on-trap cut.
#[test]
fn wire_batch_matches_in_process_invoke_batch() {
    // In-process reference: same engine, same calls.
    let mut reference = tagging();
    let entry = reference.bind_entry("select_victim").unwrap();
    let args: Vec<i64> = vec![1, 5, 2, 7, 3, 0, 4, 9]; // call 3 traps (b == 0)
    let mut expect_values = Vec::new();
    let expect_err = reference
        .invoke_batch(entry, 4, &args, &mut expect_values)
        .unwrap_err();
    assert_eq!(expect_values, vec![31 + 5, 2 * 31 + 7]);

    let mut vt = VirtualTransport::new(server(ServerConfig::default()));
    let mut c = vt.connect();
    let hello = c.hello(1);
    vt.rpc(&mut c, &hello);
    let install = c.install(POINT, TECH, "tag");
    let graft = match vt.rpc(&mut c, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };

    let (seq, batch) = c.invoke_batch(graft, 0, 2, &args);
    match vt.rpc(&mut c, &batch) {
        Reply::Batch {
            seq: got_seq,
            values,
            error: Some(WireError::Trap { kind, .. }),
        } => {
            assert_eq!(got_seq, seq);
            assert_eq!(values, expect_values);
            assert_eq!(
                kind,
                expect_err.as_trap().unwrap().kind() as u8,
                "wire trap kind must match the in-process trap"
            );
        }
        other => panic!("{other:?}"),
    }

    // A clean batch matches too.
    let clean: Vec<i64> = vec![1, 1, 2, 2, 3, 3];
    let mut expect_values = Vec::new();
    reference
        .invoke_batch(entry, 3, &clean, &mut expect_values)
        .unwrap();
    let (_, batch) = c.invoke_batch(graft, 0, 2, &clean);
    match vt.rpc(&mut c, &batch) {
        Reply::Batch {
            values,
            error: None,
            ..
        } => assert_eq!(values, expect_values),
        other => panic!("{other:?}"),
    }
}

/// Quota exhaustion is typed — `QuotaExceeded` for the namespace,
/// `Overloaded` for the in-flight cap — and never a silent drop.
#[test]
fn quota_exhaustion_is_typed_never_silent() {
    let config = ServerConfig {
        quotas: TenantQuotas {
            max_grafts: 1,
            max_in_flight: 2,
            fuel_budget: None,
        },
        ..ServerConfig::default()
    };
    let mut vt = VirtualTransport::new(server(config));
    let mut c = vt.connect();
    let hello = c.hello(1);
    vt.rpc(&mut c, &hello);
    let install = c.install(POINT, TECH, "tag");
    let graft = match vt.rpc(&mut c, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };

    // Second install: namespace quota, typed.
    let install = c.install(POINT, TECH, "tag");
    match vt.rpc(&mut c, &install) {
        Reply::Error {
            error: WireError::QuotaExceeded { resource, limit },
            ..
        } => {
            assert_eq!(resource, "grafts");
            assert_eq!(limit, 1);
        }
        other => panic!("{other:?}"),
    }

    // Submit 3 invokes in one flush without serving: the third must be
    // refused Overloaded (cap 2), and *every* request gets a reply.
    let mut bytes = Vec::new();
    let mut seqs = Vec::new();
    for _ in 0..3 {
        let (seq, invoke) = c.invoke(graft, 0, &[1, 1]);
        seqs.push(seq);
        bytes.extend_from_slice(&invoke);
    }
    let replies = vt.exchange(&mut c, &bytes);
    assert_eq!(replies.len(), 3, "no silent drops: {replies:?}");
    let overloaded: Vec<_> = replies
        .iter()
        .filter(|r| {
            matches!(
                r,
                Reply::Error {
                    error: WireError::Overloaded { in_flight: 2, cap: 2 },
                    ..
                }
            )
        })
        .collect();
    assert_eq!(overloaded.len(), 1, "{replies:?}");
    assert_eq!(overloaded[0].seq(), seqs[2]);
    assert_eq!(vt.server.stats().rejected_overloaded, 1);
}

/// The cumulative fuel budget refuses with `QuotaExceeded("fuel")`
/// once the ledgers say the tenant has burned its allowance.
#[test]
fn fuel_budget_exhaustion_is_typed() {
    let config = ServerConfig {
        quotas: TenantQuotas {
            fuel_budget: Some(1), // any metered burn exhausts it
            ..TenantQuotas::default()
        },
        fuel_refresh: 1, // re-price from the ledgers every completion
        ..ServerConfig::default()
    };
    let mut vt = VirtualTransport::new(GraftServer::new(config));
    // A Grail-compiled engine meters fuel (native does not).
    vt.server.register_spec(
        "grail-tag",
        Box::new(|_tech: Technology| {
            let engine = engine_bytecode::BytecodeEngine::load_grail(
                "fn select_victim(a: int, b: int) -> int { return a * 31 + b; }",
                &[],
            )?;
            Ok(Box::new(engine) as Box<dyn ExtensionEngine>)
        }),
    );
    let mut c = vt.connect();
    let hello = c.hello(1);
    vt.rpc(&mut c, &hello);
    let install = c.install(POINT, TECH, "grail-tag");
    let graft = match vt.rpc(&mut c, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };

    // First invoke serves (budget not yet known to be burned)…
    let (_, invoke) = c.invoke(graft, 0, &[1, 1]);
    assert!(matches!(vt.rpc(&mut c, &invoke), Reply::Value { .. }));
    // …after which the refreshed ledger shows the burn and the tenant
    // is over budget: typed refusal at admission.
    let (_, invoke) = c.invoke(graft, 0, &[1, 1]);
    match vt.rpc(&mut c, &invoke) {
        Reply::Error {
            error: WireError::QuotaExceeded { resource, limit: 1 },
            ..
        } => assert_eq!(resource, "fuel"),
        other => panic!("{other:?}"),
    }
    assert_eq!(vt.server.stats().rejected_quota, 1);
}

/// The noisy-neighbor contract: a trapping saboteur is quarantined
/// (typed `Quarantined` refusals), victims keep serving throughout,
/// and the backoff ladder re-admits after its window — with timelines
/// matching the PR 5 scalar ladder (`base << (trip-1)`).
#[test]
fn saboteur_quarantine_isolates_and_ladder_matches_scalar_host() {
    let base = 4u64;
    let config = ServerConfig {
        backoff_base: base,
        ban_ceiling: 3,
        ..ServerConfig::default()
    };
    let mut vt = VirtualTransport::new(server(config));
    let mut victim = vt.connect();
    let mut sab = vt.connect();
    let hello = victim.hello(1);
    vt.rpc(&mut victim, &hello);
    let hello = sab.hello(2);
    vt.rpc(&mut sab, &hello);

    let install = victim.install(POINT, TECH, "tag");
    let vg = match vt.rpc(&mut victim, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };
    let install = sab.install(POINT, TECH, "tag");
    let sg = match vt.rpc(&mut sab, &install) {
        Reply::Installed { graft, .. } => graft,
        other => panic!("{other:?}"),
    };

    // Three traps (b == 0) trip the supervisor.
    for _ in 0..3 {
        let (_, invoke) = sab.invoke(sg, 0, &[1, 0]);
        match vt.rpc(&mut sab, &invoke) {
            Reply::Error {
                error: WireError::Trap { .. } | WireError::Unavailable(_),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(vt.server.tenant_standing(2), Some(Standing::Parked {
        graft: graft_kernel::GraftId(sg),
        remaining: base, // trip 1: window = base << 0
    }));

    // Parked tenant is refused with the typed wire error…
    let (_, invoke) = sab.invoke(sg, 0, &[1, 1]);
    match vt.rpc(&mut sab, &invoke) {
        Reply::Error {
            error: WireError::Quarantined { backoff_remaining },
            ..
        } => assert_eq!(backoff_remaining, base),
        other => panic!("{other:?}"),
    }

    // …while the victim keeps serving; its clean dispatches tick the
    // ladder, and after exactly `base` the saboteur is re-admitted.
    for i in 0..base {
        let (seq, invoke) = victim.invoke(vg, 0, &[7, 1]);
        assert_eq!(
            vt.rpc(&mut victim, &invoke),
            Reply::Value {
                seq,
                value: 7 * 31 + 1
            },
            "victim dispatch {i} must serve during the quarantine"
        );
    }
    assert_eq!(vt.server.tenant_standing(2), Some(Standing::Serving));
    // The graft is back (on probation) and serves again.
    let (seq, invoke) = sab.invoke(sg, 0, &[2, 1]);
    assert_eq!(vt.rpc(&mut sab, &invoke), Reply::Value { seq, value: 63 });

    // Scalar-ladder parity: the same trip count on a scalar GraftHost
    // with the same config produces the same window. Trip 2 = base*2.
    for _ in 0..1 {
        let (_, invoke) = sab.invoke(sg, 0, &[1, 0]);
        vt.rpc(&mut sab, &invoke); // probation: one trap re-quarantines
    }
    match vt.server.tenant_standing(2) {
        Some(Standing::Parked { remaining, .. }) => assert_eq!(remaining, base * 2),
        other => panic!("{other:?}"),
    }

    let scalar_windows = scalar_ladder_windows(base, 3);
    assert_eq!(
        scalar_windows,
        vec![base, base * 2],
        "scalar host schedule: windows then ban at ceiling"
    );

    // Trip 3 hits the ceiling on both: permanent ban.
    for _ in 0..base * 2 {
        let (_, invoke) = victim.invoke(vg, 0, &[7, 1]);
        vt.rpc(&mut victim, &invoke);
    }
    assert_eq!(vt.server.tenant_standing(2), Some(Standing::Serving));
    let (_, invoke) = sab.invoke(sg, 0, &[1, 0]);
    vt.rpc(&mut sab, &invoke);
    assert_eq!(vt.server.tenant_standing(2), Some(Standing::Banned));
    let (_, invoke) = sab.invoke(sg, 0, &[1, 1]);
    match vt.rpc(&mut sab, &invoke) {
        Reply::Error {
            error: WireError::Quarantined {
                backoff_remaining: 0,
            },
            ..
        } => {}
        other => panic!("{other:?}"),
    }
}

/// Runs a trapping graft through the PR 5 *scalar* ladder and records
/// each re-admission window (dispatches served without the graft),
/// stopping at the ban. The server's per-tenant ladder must produce
/// the same schedule.
fn scalar_ladder_windows(base: u64, ceiling: u32) -> Vec<u64> {
    let config = HostConfig {
        backoff_base: base,
        ban_ceiling: ceiling,
        trap_threshold: 1, // first trap quarantines: trips align 1:1
        ..HostConfig::default()
    };
    let mut host = GraftHost::with_config(config);
    let id = host
        .install(
            AttachPoint::VmEvict,
            "trappy",
            victim_engine(|| {
                Box::new(|_: &str, _: &[i64], _: &mut RegionStore| {
                    Err::<i64, GraftError>(Trap::DivByZero.into())
                })
            }),
        )
        .unwrap();
    let mut windows = Vec::new();
    loop {
        // Trap once to (re-)quarantine.
        host.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        match host.state(id) {
            Some(GraftState::Banned) => return windows,
            Some(GraftState::Quarantined { .. }) => {}
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Count built-in dispatches until the ladder re-admits.
        let mut served = 0u64;
        while matches!(host.state(id), Some(GraftState::Quarantined { .. })) {
            host.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
            served += 1;
            assert!(served < 1_000_000, "ladder never re-admitted");
        }
        windows.push(served);
    }
}

/// The stealing plane really serves the data plane: requests keyed by
/// tenant spread over shards, complete out of order, and every reply's
/// echoed seq re-associates it.
#[test]
fn sharded_plane_serves_and_seq_reassociates() {
    let config = ServerConfig {
        shards: 4,
        steal: StealPolicy::default(),
        quotas: TenantQuotas {
            max_in_flight: 1024,
            ..TenantQuotas::default()
        },
        ..ServerConfig::default()
    };
    let mut vt = VirtualTransport::new(server(config));
    let mut clients = Vec::new();
    for tenant in 0..16u64 {
        let mut c = vt.connect();
        let hello = c.hello(tenant);
        vt.rpc(&mut c, &hello);
        let install = c.install(POINT, TECH, "tag");
        let graft = match vt.rpc(&mut c, &install) {
            Reply::Installed { graft, .. } => graft,
            other => panic!("{other:?}"),
        };
        clients.push((c, graft));
    }

    // Every tenant submits a burst; serve everything, then match
    // replies by seq and check the tenant-tagged values never leak
    // across namespaces.
    let mut expected = Vec::new(); // (tenant index, seq, value)
    for (i, (c, graft)) in clients.iter_mut().enumerate() {
        let mut bytes = Vec::new();
        for k in 1..=8i64 {
            let (seq, invoke) = c.invoke(*graft, 0, &[i as i64, k]);
            expected.push((i, seq, i as i64 * 31 + k));
            bytes.extend_from_slice(&invoke);
        }
        vt.server.ingest(c.conn, &bytes);
    }
    vt.server.pump();
    vt.server.drain_all();

    for (i, (c, _)) in clients.iter_mut().enumerate() {
        let out = vt.server.take_outbound(c.conn);
        let replies = c.on_bytes(&out).unwrap();
        assert_eq!(replies.len(), 8);
        for reply in replies {
            match reply {
                Reply::Value { seq, value } => {
                    let (_, _, want) = expected
                        .iter()
                        .find(|(t, s, _)| *t == i && *s == seq)
                        .expect("reply seq matches a request");
                    assert_eq!(value, *want, "tenant {i} saw a foreign verdict");
                }
                other => panic!("{other:?}"),
            }
        }
    }
    assert_eq!(vt.server.stats().served, 16 * 8);
}
