//! Seeded mutation fuzzing over the wire framing and request decoder.
//!
//! Each seed mutates valid frames — truncation with a consistent
//! length prefix, length corruption (short, long, oversized, and the
//! exact `MAX_FRAME` boundary), opcode type confusion, byte flips,
//! splices — and feeds them to a live server on a *victim* tenant's
//! connection while a *bystander* tenant keeps making real requests.
//! The invariants, per the ISSUE:
//!
//! * the server never panics;
//! * every mutated frame is answered with a typed error (or happens to
//!   decode and is served), or the connection closes — and a close is
//!   only legal when the length prefix was corrupted: an oversized
//!   prefix is the documented fatal tear-down, and an *undersized*
//!   prefix desynchronizes the framer so later bytes may be misread as
//!   a fatal prefix. Opcode confusion, byte flips, truncation, and
//!   splices never close;
//! * no tenant state leaks: the bystander's ledger, standing, trip
//!   count, and service are exactly its own traffic no matter what the
//!   barrage did to the victim — even when a flipped arg byte traps
//!   the victim's graft and quarantines it.

use graft_api::{
    EntryPoint, ExtensionEngine, NativeEngine, RegionSpec, RegionStore, Technology, Trap,
};
use graft_rng::SmallRng;
use graft_server::{
    GraftClient, GraftServer, Reply, Request, ServerConfig, Standing, VirtualTransport, MAX_FRAME,
};

const POINT: u8 = 0;
const TECH: u8 = 0;

fn tagging() -> Box<dyn ExtensionEngine> {
    let specs = [RegionSpec::data("scratch", 8)];
    let entries = [EntryPoint {
        name: "select_victim".into(),
        arity: 2,
    }];
    let factory: graft_api::spec::SharedNativeFactory = std::sync::Arc::new(|| {
        Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
            if args[1] == 0 {
                return Err(Trap::DivByZero.into());
            }
            // Wrapping: flipped arg bytes feed this arbitrary i64s.
            Ok(args[0].wrapping_mul(31).wrapping_add(args[1]))
        })
    });
    Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap())
}

fn build_server() -> GraftServer {
    let mut s = GraftServer::new(ServerConfig::default());
    s.register_spec("tag", Box::new(|_tech: Technology| Ok(tagging())));
    s
}

fn seeds() -> u64 {
    std::env::var("GRAFT_FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// A pool of well-formed frames to mutate from.
fn corpus(client: &mut GraftClient, graft: u64) -> Vec<Vec<u8>> {
    vec![
        client.invoke(graft, 0, &[3, 4]).1,
        client.invoke_batch(graft, 0, 2, &[1, 2, 3, 4]).1,
        client.bind(graft, "select_victim"),
        client.install(POINT, TECH, "tag"),
        client.uninstall(graft ^ 0xdead), // NoSuchGraft, but well-formed
        client.hello(9999),               // duplicate hello: Protocol error
    ]
}

/// What a mutation is allowed to do to the connection it rides on.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Blast {
    /// Body damage only: must be answered typed, never closes.
    Benign,
    /// Length prefix above `MAX_FRAME`: the one immediate fatal close.
    Oversize,
    /// Length prefix below the real body length: the framer reads the
    /// frame's tail as the next prefix — from here on the connection
    /// may survive on garbage frames or hit a phantom fatal prefix.
    Desync,
}

/// Applies one seeded mutation.
fn mutate(rng: &mut SmallRng, base: &[u8]) -> (Vec<u8>, Blast) {
    let mut frame = base.to_vec();
    match rng.bounded_u64(6) {
        0 => {
            // Truncate the body but keep the length prefix consistent:
            // a short, self-consistent frame that must decode Malformed
            // (the decoder also rejects *trailing* bytes, so no prefix
            // of a real request is itself a valid request).
            let body_len = frame.len() - 4;
            let keep = rng.bounded_u64(body_len as u64) as usize;
            frame.truncate(4 + keep);
            frame[..4].copy_from_slice(&(keep as u32).to_le_bytes());
            (frame, Blast::Benign)
        }
        1 => {
            // Corrupt the length downward: the tail bleeds into the
            // next frame's prefix.
            let body_len = (frame.len() - 4) as u32;
            let lie = rng.bounded_u64(body_len.max(1) as u64) as u32;
            frame[..4].copy_from_slice(&lie.to_le_bytes());
            (frame, Blast::Desync)
        }
        2 => {
            // Oversized length prefix: the one fatal shape.
            let lie = MAX_FRAME as u32 + 1 + rng.bounded_u64(1 << 20) as u32;
            frame[..4].copy_from_slice(&lie.to_le_bytes());
            (frame, Blast::Oversize)
        }
        3 => {
            // Type confusion: swap the opcode for a random byte.
            frame[4] = rng.bounded_u64(256) as u8;
            (frame, Blast::Benign)
        }
        4 => {
            // Flip one bit somewhere in the body.
            let i = 4 + rng.bounded_u64((frame.len() - 4) as u64) as usize;
            frame[i] ^= 1 << rng.bounded_u64(8);
            (frame, Blast::Benign)
        }
        _ => {
            // Splice garbage onto the body, fixing the prefix.
            let extra = 1 + rng.bounded_u64(16) as usize;
            for _ in 0..extra {
                frame.push(rng.bounded_u64(256) as u8);
            }
            let body_len = (frame.len() - 4) as u32;
            frame[..4].copy_from_slice(&body_len.to_le_bytes());
            (frame, Blast::Benign)
        }
    }
}

#[test]
fn mutated_frames_answer_typed_or_close_without_leaking_tenant_state() {
    for seed in 0..seeds() {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let mut vt = VirtualTransport::new(build_server());

        // The bystander whose state must never move.
        let mut bystander = vt.connect();
        let hello = bystander.hello(2);
        vt.rpc(&mut bystander, &hello);
        let install = bystander.install(POINT, TECH, "tag");
        let by_graft = match vt.rpc(&mut bystander, &install) {
            Reply::Installed { graft, .. } => graft,
            other => panic!("{other:?}"),
        };

        // The victim connection the mutants ride on (re-opened whenever
        // a length-corrupt frame kills it).
        let mut victim = vt.connect();
        let hello = victim.hello(1);
        vt.rpc(&mut victim, &hello);
        let install = victim.install(POINT, TECH, "tag");
        let graft = match vt.rpc(&mut victim, &install) {
            Reply::Installed { graft, .. } => graft,
            other => panic!("{other:?}"),
        };

        let frames = corpus(&mut victim, graft);
        // Sticky once a Desync mutant lands; cleared by reconnecting.
        let mut desynced = false;
        let mut clean_oversize = 0u64;
        for step in 0..48 {
            let base = &frames[rng.bounded_u64(frames.len() as u64) as usize];
            let (mutant, blast) = mutate(&mut rng, base);

            let was_desynced = desynced;
            if blast == Blast::Desync {
                // The lie takes effect inside this very exchange: the
                // frame's own tail is re-framed immediately and may
                // already read as a phantom fatal prefix.
                desynced = true;
            }
            let replies = vt.exchange(&mut victim, &mutant);
            let open = vt.server.is_open(victim.conn);
            if !was_desynced {
                match blast {
                    Blast::Oversize => {
                        clean_oversize += 1;
                        assert!(!open, "seed {seed} step {step}: oversized prefix left conn open");
                        assert_eq!(replies.len(), 1, "seed {seed} step {step}: {replies:?}");
                        assert!(
                            matches!(replies[0], Reply::Error { seq: 0, .. }),
                            "seed {seed} step {step}: {replies:?}"
                        );
                    }
                    Blast::Benign => {
                        assert!(
                            open,
                            "seed {seed} step {step}: benign mutant closed the conn"
                        );
                    }
                    Blast::Desync => {
                        // Survival is framer's choice; the server's
                        // health is asserted via the bystander below.
                    }
                }
            }
            if !open {
                victim = vt.connect();
                let hello = victim.hello(1);
                vt.rpc(&mut victim, &hello);
                desynced = false;
            }

            // The bystander is untouched and still served.
            let (seq, invoke) = bystander.invoke(by_graft, 0, &[5, 6]);
            assert_eq!(
                vt.rpc(&mut bystander, &invoke),
                Reply::Value {
                    seq,
                    value: 5 * 31 + 6
                },
                "seed {seed} step {step}"
            );
        }

        // A fresh tenant on a fresh connection is served normally — the
        // server never wedges, whatever happened to the victim (whose
        // own graft may by now be trapped out and quarantined).
        let mut fresh = vt.connect();
        let hello = fresh.hello(3);
        vt.rpc(&mut fresh, &hello);
        let install = fresh.install(POINT, TECH, "tag");
        let fresh_graft = match vt.rpc(&mut fresh, &install) {
            Reply::Installed { graft, .. } => graft,
            other => panic!("{other:?}"),
        };
        let (seq, invoke) = fresh.invoke(fresh_graft, 0, &[7, 8]);
        assert_eq!(
            vt.rpc(&mut fresh, &invoke),
            Reply::Value {
                seq,
                value: 7 * 31 + 8
            }
        );

        // Every clean oversized prefix tore down exactly once; desync
        // phantoms may add more, never fewer.
        assert!(
            vt.server.stats().fatal_frames >= clean_oversize,
            "seed {seed}: fatal ledger lost closes"
        );
        // The bystander's world: standing intact, ledger exactly its
        // own 48 invokes, zero rejections, zero quarantine trips.
        assert_eq!(vt.server.tenant_standing(2), Some(Standing::Serving));
        assert_eq!(
            vt.server.tenant_ledger(2).map(|(a, r, _)| (a, r)),
            Some((48, 0)),
            "seed {seed}: bystander ledger moved"
        );
        assert_eq!(vt.server.tenant_trips(2), Some(0));
    }
}

/// Pure decoder fuzz: random bodies never panic, and every `Ok` is a
/// request whose re-encode decodes back to itself (the decoder accepts
/// nothing it cannot round-trip).
#[test]
fn random_bodies_never_panic_the_decoder() {
    for seed in 0..seeds() {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0DD5_EED5);
        for _ in 0..256 {
            let len = rng.bounded_u64(64) as usize;
            let body: Vec<u8> = (0..len).map(|_| rng.bounded_u64(256) as u8).collect();
            if let Ok(req) = Request::decode(&body) {
                let encoded = req.encode();
                let round = Request::decode(&encoded[4..]).expect("re-encode decodes");
                assert_eq!(req, round);
            }
        }
    }
}

/// The exact `MAX_FRAME` boundary: a declared length of `MAX_FRAME`
/// is legal framing (the body may still be malformed); `MAX_FRAME + 1`
/// is the fatal close.
#[test]
fn max_frame_boundary_is_exact() {
    let mut vt = VirtualTransport::new(build_server());
    let mut c = vt.connect();
    let hello = c.hello(1);
    vt.rpc(&mut c, &hello);

    let mut frame = (MAX_FRAME as u32).to_le_bytes().to_vec();
    frame.extend(std::iter::repeat_n(0x6fu8, MAX_FRAME));
    let replies = vt.exchange(&mut c, &frame);
    assert_eq!(replies.len(), 1);
    assert!(
        matches!(
            &replies[0],
            Reply::Error {
                error: graft_server::WireError::Malformed(_),
                ..
            }
        ),
        "{replies:?}"
    );
    assert!(vt.server.is_open(c.conn), "boundary frame must not close");

    let frame = (MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
    let replies = vt.exchange(&mut c, &frame);
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], Reply::Error { seq: 0, .. }));
    assert!(!vt.server.is_open(c.conn), "oversized prefix must close");
    assert_eq!(vt.server.stats().fatal_frames, 1);
}
