//! Concurrency conformance: the threaded server must be
//! indistinguishable from the deterministic single-threaded replay.
//!
//! Each seed generates a multi-round scenario — a tenant population
//! with one graft each, a designated saboteur, rounds of clean
//! invokes/batches/malformed frames/foreign-handle probes alternating
//! with trap-only rounds — and plays the *identical frame bytes*
//! through two servers with identical configs:
//!
//! * the **reference**: `pump` + `drain_all` on one thread (the
//!   `VirtualTransport` discipline, byte-faithful and deterministic);
//! * the **subject**: a live [`WorkerPlane`] of one drain thread per
//!   shard, with the test thread acting as the pump (`pump` + `reap`).
//!
//! After every round both servers are quiesced and compared on reply
//! sets (order-insensitive via the seq echo — stealing is off, but
//! threads still reorder completion), per-tenant ledgers, ladder
//! standing (including `Parked { remaining }` — quarantine *timing*),
//! quarantine trip counts, and the whole stats block. Scenarios where
//! `backoff_base == 0` exercise the mid-drain ban: the saboteur's
//! first trap bans it while its remaining queued requests are still in
//! the plane, and those must come back `Unavailable` in both worlds.
//!
//! Rounds keep trap traffic saboteur-only while the saboteur is
//! strikeable. That is a scenario-generation constraint, not a relaxed
//! assertion: interleaving clean completions with the parking trap
//! would make `remaining` depend on completion order, which is exactly
//! the freedom threading legitimately has (the seq echo exists because
//! of it) — everything the protocol *does* promise is compared
//! exactly.
//!
//! Seed count: `GRAFT_CONFORMANCE_SEEDS` (default 48 for tier-1;
//! verify.sh's `--threads` pass runs 200+).

use graft_api::{
    EntryPoint, ExtensionEngine, NativeEngine, RegionSpec, RegionStore, Technology, Trap,
};
use graft_rng::SmallRng;
use graft_kernel::StealPolicy;
use graft_server::{FrameBuf, GraftClient, GraftServer, Reply, ServerConfig, Standing};
use std::collections::BTreeMap;

/// Wire code for `AttachPoint::VmEvict` / `Technology::RustNative`.
const POINT: u8 = 0;
const TECH: u8 = 0;

fn tagging() -> Box<dyn ExtensionEngine> {
    let specs = [RegionSpec::data("scratch", 8)];
    let entries = [EntryPoint {
        name: "select_victim".into(),
        arity: 2,
    }];
    let factory: graft_api::spec::SharedNativeFactory = std::sync::Arc::new(|| {
        Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
            if args[1] == 0 {
                return Err(Trap::DivByZero.into());
            }
            Ok(args[0] * 31 + args[1])
        })
    });
    Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap())
}

fn build_server(config: ServerConfig) -> GraftServer {
    let mut s = GraftServer::new(config);
    s.register_spec("tag", Box::new(|_tech: Technology| Ok(tagging())));
    s
}

fn seeds() -> u64 {
    std::env::var("GRAFT_CONFORMANCE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// Replies a connection has produced, keyed by the echoed seq.
fn decode_replies(bytes: &[u8], into: &mut BTreeMap<u32, Reply>) {
    let mut buf = FrameBuf::new();
    buf.extend(bytes);
    while let Some(body) = buf.next_frame().expect("server frames are well-formed") {
        let reply = Reply::decode(&body).expect("server bodies decode");
        let seq = reply.seq();
        assert!(
            into.insert(seq, reply).is_none(),
            "seq {seq} answered twice"
        );
    }
}

struct Scenario {
    shards: usize,
    tenants: usize,
    rounds: usize,
    backoff_base: u64,
}

impl Scenario {
    fn from_seed(seed: u64) -> Self {
        Scenario {
            shards: 1 + (seed % 4) as usize,
            tenants: 3 + (seed % 6) as usize,
            rounds: 4 + (seed % 3) as usize,
            // Every third seed runs the mid-drain *ban* flavor: the
            // first trap is a permanent ban while the rest of the
            // saboteur's queue is still mid-drain.
            backoff_base: if seed.is_multiple_of(3) { 0 } else { 4 },
        }
    }

    fn config(&self) -> ServerConfig {
        ServerConfig {
            shards: self.shards,
            // Stealing off: per-tenant home-shard FIFO makes the
            // reference replay fully deterministic. (Threads may still
            // interleave *across* shards — that is the point.)
            steal: StealPolicy::static_plane(),
            backoff_base: self.backoff_base,
            ban_ceiling: 3,
            ..ServerConfig::default()
        }
    }
}

/// One frame of scripted traffic: which tenant's connection it goes
/// out on, and the bytes (identical for both servers).
struct Step {
    tenant: usize,
    bytes: Vec<u8>,
}

fn run_scenario(seed: u64) {
    let sc = Scenario::from_seed(seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let saboteur = (rng.bounded_u64(sc.tenants as u64)) as usize;

    let mut reference = build_server(sc.config());
    let mut subject = build_server(sc.config());

    // One connection + one scripted client per tenant; the client only
    // *encodes* — the same bytes feed both servers.
    let conns_r: Vec<usize> = (0..sc.tenants).map(|_| reference.connect()).collect();
    let conns_s: Vec<usize> = (0..sc.tenants).map(|_| subject.connect()).collect();
    assert_eq!(conns_r, conns_s);
    let mut clients: Vec<GraftClient> = conns_r.iter().map(|&c| GraftClient::new(c)).collect();

    // Session setup: hello + install, control-plane, compared inline.
    let mut grafts = Vec::new();
    for (i, client) in clients.iter_mut().enumerate() {
        let tenant_id = 1000 + i as u64;
        for bytes in [client.hello(tenant_id), client.install(POINT, TECH, "tag")] {
            reference.ingest(conns_r[i], &bytes);
            subject.ingest(conns_s[i], &bytes);
        }
        reference.pump_conn(conns_r[i]);
        subject.pump_conn(conns_s[i]);
        let out_r = reference.take_outbound(conns_r[i]);
        let out_s = subject.take_outbound(conns_s[i]);
        assert_eq!(out_r, out_s, "seed {seed}: setup bytes diverge");
        let mut replies = BTreeMap::new();
        decode_replies(&out_r, &mut replies);
        let graft = replies
            .values()
            .find_map(|r| match r {
                Reply::Installed { graft, .. } => Some(*graft),
                _ => None,
            })
            .expect("install succeeded");
        grafts.push(graft);
    }

    let plane = subject.spawn_workers();
    assert_eq!(plane.workers(), sc.shards);

    for round in 0..sc.rounds {
        let trap_round = round % 2 == 1;
        let mut steps: Vec<Step> = Vec::new();
        if trap_round {
            // Trap-only round: enough traps to strike, plus queued
            // stragglers that must resolve `Unavailable` (or be
            // refused at admission once parked/banned) identically.
            let n = 4 + rng.bounded_u64(4);
            for _ in 0..n {
                let (_, bytes) = clients[saboteur].invoke(grafts[saboteur], 0, &[7, 0]);
                steps.push(Step {
                    tenant: saboteur,
                    bytes,
                });
            }
        } else {
            for t in 0..sc.tenants {
                let n = rng.bounded_u64(7);
                for _ in 0..n {
                    let roll = rng.bounded_u64(100);
                    let bytes = if roll < 70 {
                        let k = 1 + rng.bounded_u64(1000) as i64;
                        clients[t].invoke(grafts[t], 0, &[t as i64, k]).1
                    } else if roll < 85 {
                        let calls = 1 + rng.bounded_u64(3);
                        let mut args = Vec::new();
                        for _ in 0..calls {
                            args.push(t as i64);
                            args.push(1 + rng.bounded_u64(50) as i64);
                        }
                        clients[t].invoke_batch(grafts[t], 0, 2, &args).1
                    } else if roll < 93 {
                        // Foreign handle: another tenant's graft is
                        // NoSuchGraft — the isolation boundary.
                        let other = grafts[(t + 1) % sc.tenants];
                        clients[t].invoke(other, 0, &[1, 1]).1
                    } else {
                        // Unknown opcode, well-framed: Malformed reply,
                        // connection survives.
                        let body = [0x6fu8, clients[t].seq().to_le_bytes()[0], 0, 0, 0];
                        let mut f = (body.len() as u32).to_le_bytes().to_vec();
                        f.extend_from_slice(&body);
                        f
                    };
                    steps.push(Step { tenant: t, bytes });
                }
            }
        }

        // Identical submission into both servers. Neither processes a
        // completion until every admission verdict for the round is
        // in, so admission state evolves identically even though the
        // subject's workers are already invoking.
        for step in &steps {
            reference.ingest(conns_r[step.tenant], &step.bytes);
            subject.ingest(conns_s[step.tenant], &step.bytes);
        }
        reference.pump();
        subject.pump();

        // Quiesce both worlds.
        reference.drain_all();
        while subject.in_flight() > 0 {
            if subject.reap() == 0 {
                std::thread::yield_now();
            }
        }

        // Compare everything the protocol promises.
        for t in 0..sc.tenants {
            let mut replies_r = BTreeMap::new();
            let mut replies_s = BTreeMap::new();
            decode_replies(&reference.take_outbound(conns_r[t]), &mut replies_r);
            decode_replies(&subject.take_outbound(conns_s[t]), &mut replies_s);
            assert_eq!(
                replies_r, replies_s,
                "seed {seed} round {round} tenant {t}: reply sets diverge"
            );
            let id = 1000 + t as u64;
            assert_eq!(
                reference.tenant_ledger(id),
                subject.tenant_ledger(id),
                "seed {seed} round {round} tenant {t}: ledgers diverge"
            );
            assert_eq!(
                reference.tenant_standing(id),
                subject.tenant_standing(id),
                "seed {seed} round {round} tenant {t}: standing diverges"
            );
            assert_eq!(
                reference.tenant_trips(id),
                subject.tenant_trips(id),
                "seed {seed} round {round} tenant {t}: strike counts diverge"
            );
        }
        assert_eq!(
            reference.stats(),
            subject.stats(),
            "seed {seed} round {round}: stats diverge"
        );
    }

    // The saboteur struck exactly once per quarantine episode, never
    // once per trap reply: with base 0 one episode is terminal.
    let sab_id = 1000 + saboteur as u64;
    let trips = subject.tenant_trips(sab_id).unwrap();
    assert!(trips >= 1, "seed {seed}: saboteur never struck");
    if sc.backoff_base == 0 {
        assert_eq!(trips, 1, "seed {seed}: banned saboteur struck again");
        assert_eq!(subject.tenant_standing(sab_id), Some(Standing::Banned));
    }

    plane.join(&mut subject);
    assert_eq!(subject.in_flight(), 0);
    assert_eq!(subject.backlog(), 0);
}

#[test]
fn threaded_server_matches_deterministic_replay() {
    let n = seeds();
    for seed in 0..n {
        run_scenario(seed);
    }
}
