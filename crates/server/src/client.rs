//! The graft client: frame building, reply re-association, and the
//! in-process [`VirtualTransport`].
//!
//! [`GraftClient`] is the protocol-side half of a connection: it
//! allocates sequence numbers, encodes request frames, and reassembles
//! reply frames from whatever byte chunks the transport hands back.
//! It never blocks and holds no I/O — the same client drives the
//! in-process [`VirtualTransport`] and the pipe front-end.
//!
//! [`VirtualTransport`] owns a [`GraftServer`] and moves bytes between
//! client and server synchronously. Crucially it is *byte-faithful*:
//! every request crosses as encoded frames through
//! [`GraftServer::ingest`] and every reply comes back through
//! [`GraftServer::take_outbound`], so a conformance test over the
//! virtual transport exercises the identical protocol core (framing,
//! malformed-frame recovery, out-of-order completion) as a live pipe —
//! only the readiness loop is elided.

use crate::server::GraftServer;
use crate::wire::{FrameBuf, Reply, Request, WireError};

/// Protocol-side connection state for one client.
#[derive(Debug)]
pub struct GraftClient {
    /// The server-issued connection id this client speaks for.
    pub conn: usize,
    next_seq: u32,
    frames: FrameBuf,
}

impl GraftClient {
    /// A client for connection `conn`.
    pub fn new(conn: usize) -> Self {
        GraftClient {
            conn,
            next_seq: 1,
            frames: FrameBuf::new(),
        }
    }

    /// Allocates the next sequence number.
    pub fn seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Encoded `Hello` frame.
    pub fn hello(&mut self, tenant: u64) -> Vec<u8> {
        Request::Hello {
            seq: self.seq(),
            tenant,
        }
        .encode()
    }

    /// Encoded `Install` frame.
    pub fn install(&mut self, point: u8, tech: u8, spec: &str) -> Vec<u8> {
        Request::Install {
            seq: self.seq(),
            point,
            tech,
            spec: spec.to_string(),
        }
        .encode()
    }

    /// Encoded `Bind` frame.
    pub fn bind(&mut self, graft: u64, entry: &str) -> Vec<u8> {
        Request::Bind {
            seq: self.seq(),
            graft,
            entry: entry.to_string(),
        }
        .encode()
    }

    /// Encoded `Invoke` frame; returns `(seq, bytes)` so the caller
    /// can match the eventual (possibly reordered) reply.
    pub fn invoke(&mut self, graft: u64, entry: u32, args: &[i64]) -> (u32, Vec<u8>) {
        let seq = self.seq();
        (
            seq,
            Request::Invoke {
                seq,
                graft,
                entry,
                args: args.to_vec(),
            }
            .encode(),
        )
    }

    /// Encoded `InvokeBatch` frame; returns `(seq, bytes)`.
    pub fn invoke_batch(
        &mut self,
        graft: u64,
        entry: u32,
        arity: u16,
        args: &[i64],
    ) -> (u32, Vec<u8>) {
        let seq = self.seq();
        (
            seq,
            Request::InvokeBatch {
                seq,
                graft,
                entry,
                arity,
                args: args.to_vec(),
            }
            .encode(),
        )
    }

    /// Encoded `Uninstall` frame.
    pub fn uninstall(&mut self, graft: u64) -> Vec<u8> {
        Request::Uninstall {
            seq: self.seq(),
            graft,
        }
        .encode()
    }

    /// Encoded `Bye` frame.
    pub fn bye(&mut self) -> Vec<u8> {
        Request::Bye { seq: self.seq() }.encode()
    }

    /// Feeds reply bytes from the transport; returns every complete
    /// reply they finished, in arrival order.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Result<Vec<Reply>, WireError> {
        self.frames.extend(bytes);
        let mut replies = Vec::new();
        while let Some(body) = self.frames.next_frame()? {
            replies.push(Reply::decode(&body)?);
        }
        Ok(replies)
    }
}

/// An in-process transport: the same protocol core as the pipe
/// front-end, minus the readiness loop. Deterministic by construction
/// — pump and drain run exactly when [`VirtualTransport::rpc`] says.
pub struct VirtualTransport {
    /// The server under test.
    pub server: GraftServer,
}

impl VirtualTransport {
    /// Wraps a server.
    pub fn new(server: GraftServer) -> Self {
        VirtualTransport { server }
    }

    /// Opens a connection and returns its client.
    pub fn connect(&mut self) -> GraftClient {
        GraftClient::new(self.server.connect())
    }

    /// Sends pre-encoded request bytes, runs the server to quiescence,
    /// and returns every reply that came back on this connection.
    pub fn exchange(&mut self, client: &mut GraftClient, bytes: &[u8]) -> Vec<Reply> {
        self.server.ingest(client.conn, bytes);
        self.server.pump();
        self.server.drain_all();
        let out = self.server.take_outbound(client.conn);
        client.on_bytes(&out).expect("server emits well-formed frames")
    }

    /// One-request convenience: send, serve, return the single reply.
    pub fn rpc(&mut self, client: &mut GraftClient, bytes: &[u8]) -> Reply {
        let mut replies = self.exchange(client, bytes);
        assert_eq!(replies.len(), 1, "expected one reply, got {replies:?}");
        replies.remove(0)
    }
}
