//! The pipe front-end: a poll(2)-based readiness loop over non-blocking
//! in-tree transport shims.
//!
//! This is the "live" shape of the server — the same
//! [`GraftServer`] protocol core as the [`VirtualTransport`], fed by a
//! real kernel boundary: each connection is a duplex
//! [`kernsim::netpipe::PipeEnd`], the loop `poll(2)`s every read fd,
//! drains whatever arrived into [`GraftServer::ingest`], pumps the
//! protocol, runs the shard executors, and flushes reply bytes back.
//! Clients live on their own threads and write frames blockingly, so
//! the loop sees arbitrary chunk boundaries — exactly what the
//! incremental framer is for.
//!
//! On targets without the FFI shims `PipeEnd::pair` returns `None`
//! and callers use the virtual transport instead (the documented
//! offline fallback).
//!
//! [`VirtualTransport`]: crate::client::VirtualTransport

use crate::server::GraftServer;
use kernsim::netpipe::{ignore_sigpipe, poll_readable, PipeEnd};

/// Outcome of one [`serve_pipes`] session.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipeServeStats {
    /// Poll wake-ups that found at least one readable connection.
    pub wakeups: u64,
    /// Raw byte chunks read off the pipes.
    pub chunks: u64,
    /// Connections that reached EOF or said `Bye`.
    pub closed: usize,
}

/// Runs the readiness loop until every connection has closed (client
/// EOF or `Bye`) and the plane is drained. Returns loop stats.
///
/// `ends[i]` becomes server connection `i` in registration order; the
/// caller keeps the peer ends and speaks frames over them from any
/// thread.
pub fn serve_pipes(server: &mut GraftServer, ends: Vec<PipeEnd>) -> PipeServeStats {
    let conns: Vec<usize> = ends.iter().map(|_| server.connect()).collect();
    let fds: Vec<i32> = ends.iter().map(|e| e.read_fd()).collect();
    let mut ready = vec![false; ends.len()];
    let mut eof = vec![false; ends.len()];
    let mut buf = [0u8; 4096];
    let mut stats = PipeServeStats::default();

    loop {
        let all_done = eof
            .iter()
            .zip(conns.iter())
            .all(|(&e, &c)| e || !server.is_open(c));
        if all_done && server.backlog() == 0 {
            break;
        }

        // Short timeout: the loop also owes the executor cycles while
        // clients are quiet (queued work completes out of band).
        let n = poll_readable(&fds, &mut ready, 10);
        if n > 0 {
            stats.wakeups += 1;
        }
        for (i, (&is_ready, end)) in ready.iter().zip(ends.iter()).enumerate() {
            if !is_ready || eof[i] {
                continue;
            }
            loop {
                match end.read(&mut buf) {
                    Some(0) => {
                        eof[i] = true;
                        break;
                    }
                    Some(n) => {
                        stats.chunks += 1;
                        server.ingest(conns[i], &buf[..n]);
                    }
                    None => break, // drained for now
                }
            }
        }

        server.pump();
        server.drain_all();

        for (i, end) in ends.iter().enumerate() {
            let out = server.take_outbound(conns[i]);
            if !out.is_empty() {
                end.write_all(&out);
            }
        }
    }

    stats.closed = eof
        .iter()
        .zip(conns.iter())
        .filter(|(&e, &c)| e || !server.is_open(c))
        .count();
    stats
}

/// The threaded front-end: this thread becomes the *pump* (poll,
/// frame reassembly, admission, completion processing, reply writes)
/// while a [`WorkerPlane`](crate::workers::WorkerPlane) of one drain
/// worker per shard runs the invokes concurrently. Two properties the
/// single-threaded loop does not need:
///
/// * **writes never block the pump**: write sides are flipped
///   non-blocking and replies a slow (slowloris) reader will not take
///   are parked in a per-connection pending buffer — one stalled
///   client costs other tenants nothing;
/// * **churn is survivable**: `SIGPIPE` is ignored up front, so a
///   client that vanishes mid-reply turns into `EPIPE`, the connection
///   is marked closed, and its in-flight replies are dropped as
///   orphans (accounting still runs).
///
/// Returns once every connection has closed and the plane is fully
/// drained and reaped; the workers are joined (loss-free) before it
/// does.
pub fn serve_pipes_threaded(server: &mut GraftServer, ends: Vec<PipeEnd>) -> PipeServeStats {
    ignore_sigpipe();
    for end in &ends {
        end.set_write_nonblocking();
    }
    let conns: Vec<usize> = ends.iter().map(|_| server.connect()).collect();
    let fds: Vec<i32> = ends.iter().map(|e| e.read_fd()).collect();
    let mut ready = vec![false; ends.len()];
    let mut eof = vec![false; ends.len()];
    let mut pending: Vec<Vec<u8>> = vec![Vec::new(); ends.len()];
    let mut buf = [0u8; 4096];
    let mut stats = PipeServeStats::default();

    let plane = server.spawn_workers();
    loop {
        let all_done = eof
            .iter()
            .zip(conns.iter())
            .all(|(&e, &c)| e || !server.is_open(c));
        if all_done
            && server.in_flight() == 0
            && server.backlog() == 0
            && pending.iter().all(|p| p.is_empty())
        {
            break;
        }

        // Short timeout: even with nothing readable the pump owes the
        // plane a reap pass and the pending buffers a flush attempt.
        let n = poll_readable(&fds, &mut ready, 1);
        if n > 0 {
            stats.wakeups += 1;
        }
        for (i, (&is_ready, end)) in ready.iter().zip(ends.iter()).enumerate() {
            if !is_ready || eof[i] {
                continue;
            }
            loop {
                match end.read(&mut buf) {
                    Some(0) => {
                        eof[i] = true;
                        // Abrupt close (no Bye): orphan what remains.
                        if server.is_open(conns[i]) {
                            server.disconnect(conns[i]);
                        }
                        pending[i].clear();
                        break;
                    }
                    Some(n) => {
                        stats.chunks += 1;
                        server.ingest(conns[i], &buf[..n]);
                    }
                    None => break, // drained for now
                }
            }
        }

        server.pump();
        server.reap();

        for (i, end) in ends.iter().enumerate() {
            let out = server.take_outbound(conns[i]);
            if !out.is_empty() {
                pending[i].extend_from_slice(&out);
            }
            if pending[i].is_empty() || eof[i] {
                continue;
            }
            match end.try_write(&pending[i]) {
                Some(0) => {} // reader full (slowloris): keep pending
                Some(n) => {
                    pending[i].drain(..n);
                }
                None => {
                    // Peer churned away mid-write.
                    pending[i].clear();
                    server.disconnect(conns[i]);
                    eof[i] = true;
                }
            }
        }
    }
    plane.join(server);

    stats.closed = eof
        .iter()
        .zip(conns.iter())
        .filter(|(&e, &c)| e || !server.is_open(c))
        .count();
    stats
}
