//! Per-tenant namespaces, quotas, and the admission-control ledger.
//!
//! A *tenant* is the unit of isolation the server bills and protects:
//! every connection authenticates as one tenant, every graft lives in
//! exactly one tenant's namespace, and every refusal is typed — a
//! tenant over budget gets [`GraftError::QuotaExceeded`], a tenant at
//! its in-flight cap gets [`GraftError::Overloaded`], and a tenant
//! whose graft tripped the quarantine supervisor gets a
//! `Quarantined` wire error until its backoff window elapses. Nothing
//! is ever silently dropped.
//!
//! The backoff ladder reuses the PR 5 scalar-host semantics verbatim
//! (`HostConfig::backoff_base`/`ban_ceiling`): after quarantine trip
//! `k` the window is `base << (k-1)` clean server dispatches served
//! *without* the tenant, doubling per trip, with a permanent ban at
//! the ceiling. The server owns the ladder (the backing `ShardedHost`
//! runs with auto-re-admission disabled) so that re-admission is a
//! *tenant*-scoped decision made where admission control lives.

use graft_api::GraftError;
use graft_kernel::GraftId;

/// Per-tenant resource ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Maximum grafts installed at once.
    pub max_grafts: usize,
    /// Cumulative fuel budget across all the tenant's grafts (`None`
    /// = unmetered). Checked against the per-graft ledgers.
    pub fuel_budget: Option<u64>,
    /// Maximum requests in flight (enqueued but not yet served).
    pub max_in_flight: usize,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_grafts: 4,
            fuel_budget: None,
            max_in_flight: 64,
        }
    }
}

/// Admission classes a server can partition its plane into.
pub const MAX_CLASSES: usize = 4;

/// One *weighted* admission class: every tenant belongs to a class,
/// and a class's tenants collectively hold a share of the plane's
/// in-flight capacity proportional to the class weight. Hard per-class
/// shares (not priorities) are what make the guarantee structural: a
/// heavy class at its share is refused `Overloaded` while a light
/// class's share stays free, so flooding cannot starve anyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaClass {
    /// Relative share weight. `0` marks the slot unused.
    pub weight: u32,
    /// Per-tenant ceilings for tenants in this class.
    pub quotas: TenantQuotas,
}

impl QuotaClass {
    /// An unused class slot.
    pub const UNUSED: QuotaClass = QuotaClass {
        weight: 0,
        quotas: TenantQuotas {
            max_grafts: 4,
            fuel_budget: None,
            max_in_flight: 64,
        },
    };
}

/// The in-flight slots class `class` may occupy out of `plane_cap`:
/// `plane_cap * weight / Σ weights`, floored, but never below 1 for an
/// active class (a positive weight always buys *some* service).
pub fn class_share(classes: &[QuotaClass; MAX_CLASSES], class: usize, plane_cap: u64) -> u64 {
    let total: u64 = classes.iter().map(|c| c.weight as u64).sum();
    let weight = classes[class].weight as u64;
    if total == 0 || weight == 0 {
        return 0;
    }
    (plane_cap * weight / total).max(1)
}

/// Where a tenant stands with the quarantine/backoff ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Standing {
    /// Serving normally.
    Serving,
    /// A graft tripped the supervisor; requests are refused until the
    /// window elapses.
    Parked {
        /// The quarantined graft awaiting re-admission.
        graft: GraftId,
        /// Clean server dispatches remaining before re-admission.
        remaining: u64,
    },
    /// Quarantined at or past the ban ceiling: permanently out.
    Banned,
}

/// One tenant's namespace + admission ledger.
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's wire id.
    pub id: u64,
    /// Grafts installed in this tenant's namespace.
    pub grafts: Vec<GraftId>,
    /// Requests admitted but not yet completed.
    pub in_flight: usize,
    /// High-water mark of `in_flight`.
    pub in_flight_peak: usize,
    /// Requests admitted over the tenant's lifetime.
    pub accepted: u64,
    /// Requests refused (all typed reasons combined).
    pub rejected: u64,
    /// Cumulative fuel charged from the per-graft ledgers at the last
    /// refresh (see `GraftServer::refresh_fuel`).
    pub fuel_charged: u64,
    /// Quarantine trips so far (drives the ladder).
    pub quarantines: u32,
    /// Current ladder standing.
    pub standing: Standing,
    /// Admission class index (see [`QuotaClass`]); `0` is the default
    /// class.
    pub class: usize,
}

impl Tenant {
    /// A fresh tenant in good standing.
    pub fn new(id: u64) -> Self {
        Tenant {
            id,
            grafts: Vec::new(),
            in_flight: 0,
            in_flight_peak: 0,
            accepted: 0,
            rejected: 0,
            fuel_charged: 0,
            quarantines: 0,
            standing: Standing::Serving,
            class: 0,
        }
    }

    /// Admission check for an install: namespace quota.
    pub fn admit_install(&self, quotas: &TenantQuotas) -> Result<(), GraftError> {
        if self.grafts.len() >= quotas.max_grafts {
            return Err(GraftError::QuotaExceeded {
                resource: "grafts",
                limit: quotas.max_grafts as u64,
            });
        }
        Ok(())
    }

    /// Admission check for an invoke: in-flight cap, fuel budget.
    /// Ladder standing is checked separately because it maps to a
    /// different wire error.
    pub fn admit_invoke(&self, quotas: &TenantQuotas) -> Result<(), GraftError> {
        if self.in_flight >= quotas.max_in_flight {
            return Err(GraftError::Overloaded {
                in_flight: self.in_flight as u64,
                cap: quotas.max_in_flight as u64,
            });
        }
        if let Some(budget) = quotas.fuel_budget {
            if self.fuel_charged >= budget {
                return Err(GraftError::QuotaExceeded {
                    resource: "fuel",
                    limit: budget,
                });
            }
        }
        Ok(())
    }

    /// Records an admitted request.
    pub fn admitted(&mut self) {
        self.accepted += 1;
        self.in_flight += 1;
        self.in_flight_peak = self.in_flight_peak.max(self.in_flight);
    }

    /// Records a completion (reply sent).
    pub fn completed(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Parks the tenant after a quarantine trip: computes the PR 5
    /// ladder window `base << (trips-1)` and either parks or bans.
    /// `base == 0` disables re-admission (park forever = ban).
    pub fn park(&mut self, graft: GraftId, base: u64, ban_ceiling: u32) {
        self.quarantines += 1;
        if base == 0 || self.quarantines >= ban_ceiling {
            self.standing = Standing::Banned;
            return;
        }
        let window = base << (self.quarantines - 1).min(62);
        self.standing = Standing::Parked {
            graft,
            remaining: window,
        };
    }

    /// One clean server dispatch was served without this tenant.
    /// Returns the graft to re-admit when the window just elapsed.
    pub fn tick(&mut self) -> Option<GraftId> {
        if let Standing::Parked { graft, remaining } = &mut self.standing {
            *remaining -= 1;
            if *remaining == 0 {
                let g = *graft;
                self.standing = Standing::Serving;
                return Some(g);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_quota_returns_typed_error() {
        let quotas = TenantQuotas {
            max_grafts: 2,
            ..TenantQuotas::default()
        };
        let mut t = Tenant::new(1);
        assert!(t.admit_install(&quotas).is_ok());
        t.grafts.push(GraftId(1));
        t.grafts.push(GraftId(2));
        match t.admit_install(&quotas) {
            Err(GraftError::QuotaExceeded { resource, limit }) => {
                assert_eq!(resource, "grafts");
                assert_eq!(limit, 2);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
    }

    #[test]
    fn in_flight_cap_returns_overloaded() {
        let quotas = TenantQuotas {
            max_in_flight: 3,
            ..TenantQuotas::default()
        };
        let mut t = Tenant::new(1);
        for _ in 0..3 {
            t.admit_invoke(&quotas).unwrap();
            t.admitted();
        }
        match t.admit_invoke(&quotas) {
            Err(GraftError::Overloaded { in_flight, cap }) => {
                assert_eq!((in_flight, cap), (3, 3));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        t.completed();
        assert!(t.admit_invoke(&quotas).is_ok());
        assert_eq!(t.in_flight_peak, 3);
    }

    #[test]
    fn fuel_budget_returns_quota_exceeded() {
        let quotas = TenantQuotas {
            fuel_budget: Some(100),
            ..TenantQuotas::default()
        };
        let mut t = Tenant::new(1);
        t.fuel_charged = 99;
        assert!(t.admit_invoke(&quotas).is_ok());
        t.fuel_charged = 100;
        match t.admit_invoke(&quotas) {
            Err(GraftError::QuotaExceeded { resource, limit }) => {
                assert_eq!(resource, "fuel");
                assert_eq!(limit, 100);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
    }

    #[test]
    fn ladder_windows_match_the_scalar_host_schedule() {
        // HostConfig { backoff_base: 4, ban_ceiling: 3 } on the scalar
        // host produces windows 4, 8 and then a permanent ban on the
        // third trip. The tenant ladder must reproduce that schedule.
        let base = 4u64;
        let ceiling = 3u32;
        let mut t = Tenant::new(1);
        let g = GraftId(9);

        for (trip, expect) in [(1u32, 4u64), (2, 8)] {
            t.park(g, base, ceiling);
            assert_eq!(t.quarantines, trip);
            match t.standing {
                Standing::Parked { remaining, .. } => assert_eq!(remaining, expect),
                other => panic!("trip {trip}: {other:?}"),
            }
            // Serve the window out; the final tick re-admits.
            for _ in 0..expect - 1 {
                assert_eq!(t.tick(), None);
            }
            assert_eq!(t.tick(), Some(g));
            assert_eq!(t.standing, Standing::Serving);
        }

        t.park(g, base, ceiling);
        assert_eq!(t.standing, Standing::Banned);
        assert_eq!(t.tick(), None); // banned tenants never re-admit
    }

    #[test]
    fn zero_base_disables_re_admission() {
        let mut t = Tenant::new(1);
        t.park(GraftId(1), 0, 5);
        assert_eq!(t.standing, Standing::Banned);
    }

    #[test]
    fn class_shares_split_the_plane_by_weight() {
        let mut classes = [QuotaClass::UNUSED; MAX_CLASSES];
        classes[0].weight = 3;
        classes[1].weight = 1;
        assert_eq!(class_share(&classes, 0, 256), 192);
        assert_eq!(class_share(&classes, 1, 256), 64);
        // Unused classes get nothing; active classes never round to 0.
        assert_eq!(class_share(&classes, 2, 256), 0);
        classes[2].weight = 1;
        assert_eq!(class_share(&classes, 2, 4), 1);
    }

    #[test]
    fn single_class_owns_the_whole_plane() {
        let mut classes = [QuotaClass::UNUSED; MAX_CLASSES];
        classes[0].weight = 1;
        assert_eq!(class_share(&classes, 0, 512), 512);
    }
}
