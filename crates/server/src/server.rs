//! The graft server: protocol core, admission control, and the
//! stealing-plane executor.
//!
//! [`GraftServer`] is transport-agnostic. Bytes arrive via
//! [`GraftServer::ingest`] (from a non-blocking pipe read, a virtual
//! transport flush — the server cannot tell), [`GraftServer::pump`]
//! decodes frames and runs the *control plane* inline (hello, install,
//! bind, uninstall — cheap, namespace-local), and admitted *data
//! plane* requests (invoke, batch) are keyed into
//! [`ShardedHost::enqueue`] so the work-stealing shards serve them.
//!
//! Serving is split in two halves so it can run on real threads:
//!
//! * the **invoke half** ([`GraftServer::drain_invoke`], or a
//!   [`WorkerPlane`](crate::workers::WorkerPlane) worker) takes a
//!   steal-aware batch for one shard, invokes each item's graft on
//!   that shard's handle, and pushes a [`Completion`] into the
//!   lock-free [`CompletionQueue`];
//! * the **completion half** ([`GraftServer::reap`]) runs serially on
//!   the pump/writer side: accounting, quarantine detection, ladder
//!   ticks, fuel refresh, and reply encode into the owning
//!   connection's outbox.
//!
//! Because the completion half is serial, every tenant-state decision
//! (park, ban, re-admit, fuel charge) is made by exactly one thread no
//! matter how many workers invoke — that is what makes strike
//! accounting exactly-once under concurrency. Because stealing and
//! threading both reorder completion, replies carry the client's
//! echoed `seq`.
//!
//! Admission control happens at pump time, before anything is
//! enqueued: a parked or banned tenant is refused with `Quarantined`,
//! an over-cap tenant with `Overloaded`, an over-budget tenant with
//! `QuotaExceeded` — all typed, all without touching the data plane.
//! Admission is additionally *weighted*: tenants belong to
//! [`QuotaClass`]es and each class holds a hard share of the plane's
//! in-flight capacity proportional to its weight, so a heavy class
//! cannot starve a light one. Quarantine detection happens at
//! completion time: when an invoke traps and the backing host's
//! supervisor has detached the graft, the owning tenant is parked on
//! the PR 5 backoff ladder and the server re-admits the graft
//! (`ShardedHost::readmit`) only after the tenant's window of clean
//! server dispatches has elapsed.

use crate::cq::CompletionQueue;
use crate::tenant::{class_share, QuotaClass, Standing, Tenant, TenantQuotas, MAX_CLASSES};
use crate::wire::{Reply, Request, WireError};
use graft_api::{ExtensionEngine, GraftError, Technology};
use graft_kernel::{
    AttachPoint, GraftId, HostConfig, RunQueues, ShardHandle, ShardedHost, StealPolicy,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// A loader the server calls to build an engine for an installed spec:
/// the registry decouples the server from any particular compiler
/// pipeline (tests register closures over `NativeEngine`; the bench
/// harness registers `GraftManager`-backed loaders).
pub type SpecLoader =
    Box<dyn Fn(Technology) -> Result<Box<dyn ExtensionEngine>, GraftError> + Send>;

/// Server tuning: the backing host, the plane, and the quotas.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Shard count for the backing [`ShardedHost`] — also the worker
    /// count when the plane is threaded (one worker per handle).
    pub shards: usize,
    /// Host supervisor config. `backoff_base` here is forced to 0:
    /// the *server* owns the re-admission ladder per tenant.
    pub host: HostConfig,
    /// Dispatch-plane policy (stealing or static).
    pub steal: StealPolicy,
    /// Per-tenant ceilings for the default class (class 0 inherits
    /// these when no explicit classes are configured).
    pub quotas: TenantQuotas,
    /// Weighted admission classes. All-unused (every weight 0) means
    /// "one default class owning the whole plane with `quotas`"; the
    /// constructor materializes that so admission always has a class.
    pub classes: [QuotaClass; MAX_CLASSES],
    /// Server-side re-admission ladder base (PR 5 semantics: window
    /// `base << (trip-1)` clean dispatches, doubling per trip). 0
    /// disables re-admission — quarantine is permanent.
    pub backoff_base: u64,
    /// Quarantine trips after which a tenant is permanently banned.
    pub ban_ceiling: u32,
    /// Completions between ledger-backed fuel-quota refreshes for a
    /// tenant (1 = every completion; larger amortizes the flush).
    pub fuel_refresh: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            host: HostConfig::default(),
            steal: StealPolicy::default(),
            quotas: TenantQuotas::default(),
            classes: [QuotaClass::UNUSED; MAX_CLASSES],
            backoff_base: 16,
            ban_ceiling: 5,
            fuel_refresh: 64,
        }
    }
}

/// Aggregate server counters (also published as `server.*` telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Data-plane requests served to completion.
    pub served: u64,
    /// Refusals: plane, tenant, or class share at capacity.
    pub rejected_overloaded: u64,
    /// Refusals: graft-count or fuel quota exhausted.
    pub rejected_quota: u64,
    /// Refusals: tenant parked or banned on the ladder.
    pub rejected_quarantined: u64,
    /// Frames answered with `Malformed` (connection survived).
    pub malformed: u64,
    /// Connections torn down for an untrusted length prefix.
    pub fatal_frames: u64,
    /// Tenants that ever connected.
    pub tenants: u64,
    /// Tenants currently parked or banned.
    pub tenants_quarantined: u64,
    /// High-water mark of total in-flight requests.
    pub inflight_peak: u64,
    /// Replies dropped because the connection closed while the request
    /// was in flight (churned clients; accounting still ran).
    pub orphaned: u64,
}

/// What one data-plane job carries through the plane.
#[derive(Debug)]
pub(crate) struct Job {
    conn: usize,
    seq: u32,
    tenant: u64,
    /// Per-call arity when this is a batch; `None` = single invoke.
    batch: Option<usize>,
    args: Vec<i64>,
    t0: Instant,
}

/// A finished invoke travelling back from a worker (or the inline
/// executor) to the serial completion half.
#[derive(Debug)]
pub(crate) struct Completion {
    /// Which shard invoked (fuel refresh flushes this shard's handle
    /// in single-threaded mode).
    pub(crate) shard: usize,
    pub(crate) job: Job,
    pub(crate) values: Vec<i64>,
    pub(crate) error: Option<GraftError>,
}

/// The invoke half of the executor: takes one steal-aware batch for
/// `shard`, invokes each item on `handle`, and pushes one
/// [`Completion`] per job. This is exactly what a drain-worker thread
/// runs in a loop; the single-threaded [`GraftServer::drain`] calls it
/// inline with the resident handle. Returns the number of jobs
/// invoked.
///
/// A full completion queue is transient by construction (capacity is
/// sized at 2× the plane's queue capacity and the consumer side always
/// reaps between waves), so the push spins rather than dropping —
/// a dropped completion would leak a tenant's in-flight slot forever.
pub(crate) fn invoke_shard(
    shard: usize,
    handle: &mut ShardHandle,
    queues: &RunQueues<Job>,
    completions: &CompletionQueue<Completion>,
) -> usize {
    let mut batch = Vec::new();
    queues.take(shard, &mut batch);
    let n = batch.len();
    for item in batch {
        let gid = GraftId(item.graft);
        let job = item.payload;
        // Invoke on this shard's replica. A batch job shares the
        // engine's prefix-on-trap contract: values for the calls that
        // ran, then the error that stopped it.
        let mut values = Vec::new();
        let mut error = None;
        match job.batch {
            None => match handle.invoke(gid, &job.args) {
                Ok(v) => values.push(v),
                Err(e) => error = Some(e),
            },
            Some(arity) => {
                for call in job.args.chunks(arity) {
                    match handle.invoke(gid, call) {
                        Ok(v) => values.push(v),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        // Tell the plane this shard now has the graft hot.
        queues.mark_warm(shard, item.graft);
        let mut completion = Completion {
            shard,
            job,
            values,
            error,
        };
        while let Err(back) = completions.push(completion) {
            completion = back;
            std::thread::yield_now();
        }
    }
    n
}

/// Per-graft server bookkeeping.
#[derive(Debug)]
struct GraftMeta {
    tenant: u64,
    point: AttachPoint,
}

/// One connection's state machine: framing in, bytes out.
#[derive(Debug, Default)]
struct Conn {
    open: bool,
    tenant: Option<u64>,
    inbox: crate::wire::FrameBuf,
    outbox: Vec<u8>,
}

/// The multi-tenant graft server. See the module docs for the shape.
pub struct GraftServer {
    host: ShardedHost,
    /// Shard handles when resident. Empty while a
    /// [`WorkerPlane`](crate::workers::WorkerPlane) owns them — the
    /// single-threaded executor paths assert residency.
    handles: Vec<ShardHandle>,
    queues: RunQueues<Job>,
    completions: Arc<CompletionQueue<Completion>>,
    config: ServerConfig,
    conns: Vec<Conn>,
    tenants: BTreeMap<u64, Tenant>,
    /// Tenant ids currently parked (ladder ticks scan only these).
    parked: Vec<u64>,
    /// Pre-assigned admission classes (applied at Hello).
    class_of: BTreeMap<u64, usize>,
    /// In-flight requests per admission class (pump-side state).
    class_in_flight: [u64; MAX_CLASSES],
    specs: BTreeMap<String, SpecLoader>,
    grafts: BTreeMap<u64, GraftMeta>,
    stats: ServerStats,
    total_in_flight: u64,
    /// When set, completed requests append `(tenant, service_ns)`
    /// here for offline percentile analysis (Table 11).
    latency_sink: Option<Vec<(u64, u64)>>,
    published: bool,
}

impl GraftServer {
    /// Builds a server over a fresh sharded host.
    pub fn new(mut config: ServerConfig) -> Self {
        // The server owns the re-admission ladder; the host supervisor
        // must not auto-readmit underneath it.
        config.host.backoff_base = 0;
        // No explicit classes ⇒ one default class over the whole plane
        // with the legacy per-tenant quotas.
        if config.classes.iter().all(|c| c.weight == 0) {
            config.classes[0] = QuotaClass {
                weight: 1,
                quotas: config.quotas,
            };
        }
        let mut host = ShardedHost::with_config(config.shards, config.host);
        let handles = host.take_handles();
        let queues = host.run_queues(config.steal);
        // Sized so that "invoke the whole plane, then reap once" can
        // never fill it (see `invoke_shard`).
        let cq_cap = (config.steal.queue_cap * config.shards * 2).max(4096);
        GraftServer {
            host,
            handles,
            queues,
            completions: Arc::new(CompletionQueue::with_capacity(cq_cap)),
            config,
            conns: Vec::new(),
            tenants: BTreeMap::new(),
            parked: Vec::new(),
            class_of: BTreeMap::new(),
            class_in_flight: [0; MAX_CLASSES],
            specs: BTreeMap::new(),
            grafts: BTreeMap::new(),
            stats: ServerStats::default(),
            total_in_flight: 0,
            latency_sink: None,
            published: false,
        }
    }

    /// Registers a named spec the wire `Install` frame can reference.
    pub fn register_spec(&mut self, name: &str, loader: SpecLoader) {
        self.specs.insert(name.to_string(), loader);
    }

    /// Assigns `tenant` to admission class `class` (effective at its
    /// next `Hello`, or immediately if the tenant already exists).
    /// Out-of-range or zero-weight classes fall back to class 0.
    pub fn assign_class(&mut self, tenant: u64, class: usize) {
        let class = if class < MAX_CLASSES && self.config.classes[class].weight > 0 {
            class
        } else {
            0
        };
        self.class_of.insert(tenant, class);
        if let Some(t) = self.tenants.get_mut(&tenant) {
            t.class = class;
        }
    }

    /// Starts collecting `(tenant, service_ns)` pairs per completion.
    pub fn collect_latency(&mut self, on: bool) {
        self.latency_sink = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the collected latency pairs.
    pub fn take_latencies(&mut self) -> Vec<(u64, u64)> {
        self.latency_sink
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Opens a connection; the returned id names it in
    /// [`ingest`](Self::ingest)/[`take_outbound`](Self::take_outbound).
    pub fn connect(&mut self) -> usize {
        self.conns.push(Conn {
            open: true,
            ..Conn::default()
        });
        self.conns.len() - 1
    }

    /// Whether a connection is still open.
    pub fn is_open(&self, conn: usize) -> bool {
        self.conns.get(conn).is_some_and(|c| c.open)
    }

    /// Marks a connection closed from the transport side (peer went
    /// away without `Bye`). In-flight requests complete their
    /// accounting but their replies are dropped as orphaned.
    pub fn disconnect(&mut self, conn: usize) {
        if let Some(c) = self.conns.get_mut(conn) {
            c.open = false;
            c.outbox.clear();
        }
    }

    /// Appends raw transport bytes to a connection's inbox.
    pub fn ingest(&mut self, conn: usize, bytes: &[u8]) {
        if let Some(c) = self.conns.get_mut(conn) {
            if c.open {
                c.inbox.extend(bytes);
            }
        }
    }

    /// Takes whatever reply bytes the connection has accumulated.
    pub fn take_outbound(&mut self, conn: usize) -> Vec<u8> {
        self.conns
            .get_mut(conn)
            .map(|c| std::mem::take(&mut c.outbox))
            .unwrap_or_default()
    }

    /// Decodes and processes every complete frame on every connection.
    pub fn pump(&mut self) {
        for conn in 0..self.conns.len() {
            self.pump_conn(conn);
        }
    }

    /// Decodes and processes every complete frame on one connection.
    pub fn pump_conn(&mut self, conn: usize) {
        loop {
            let Some(c) = self.conns.get_mut(conn) else {
                return;
            };
            if !c.open {
                return;
            }
            let body = match c.inbox.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => return,
                Err(fatal) => {
                    // The length prefix itself is untrustworthy: answer
                    // once, then close — the only protocol tear-down.
                    self.stats.fatal_frames += 1;
                    c.outbox
                        .extend(Reply::Error { seq: 0, error: fatal }.encode());
                    c.open = false;
                    return;
                }
            };
            let reply = match Request::decode(&body) {
                Ok(req) => self.handle(conn, req),
                Err(err) => {
                    // A bad body is the *client's* problem, not the
                    // connection's: reply typed and keep framing. Echo
                    // the seq if the prefix of the body still has one.
                    self.stats.malformed += 1;
                    graft_telemetry::counter!("server.malformed").add(1);
                    let seq = body
                        .get(1..5)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                        .unwrap_or(0);
                    Some(Reply::Error { seq, error: err })
                }
            };
            if let Some(reply) = reply {
                if let Some(c) = self.conns.get_mut(conn) {
                    c.outbox.extend(reply.encode());
                }
            }
        }
    }

    /// Control-plane handling. Data-plane requests return `None` here
    /// (their reply is written at completion time).
    fn handle(&mut self, conn: usize, req: Request) -> Option<Reply> {
        graft_telemetry::counter!("server.requests").add(1);
        let seq = req.seq();
        // Hello is the only frame legal without a tenant.
        let tenant_id = match (&req, self.conns[conn].tenant) {
            (Request::Hello { tenant, .. }, None) => {
                let id = *tenant;
                self.conns[conn].tenant = Some(id);
                if let std::collections::btree_map::Entry::Vacant(e) = self.tenants.entry(id) {
                    let mut t = Tenant::new(id);
                    t.class = self.class_of.get(&id).copied().unwrap_or(0);
                    e.insert(t);
                    self.stats.tenants += 1;
                }
                return Some(Reply::Welcome { seq, tenant: id });
            }
            (Request::Hello { .. }, Some(_)) => {
                return Some(Reply::Error {
                    seq,
                    error: WireError::Protocol("duplicate Hello".into()),
                });
            }
            (_, None) => {
                return Some(Reply::Error {
                    seq,
                    error: WireError::Protocol("frame before Hello".into()),
                });
            }
            (_, Some(id)) => id,
        };

        match req {
            Request::Hello { .. } => unreachable!("handled above"),
            Request::Bye { .. } => {
                self.conns[conn].open = false;
                Some(Reply::Gone { seq })
            }
            Request::Install {
                point, tech, spec, ..
            } => Some(self.install(tenant_id, point, tech, &spec, seq)),
            Request::Bind { graft, entry, .. } => {
                let meta = match self.tenant_graft(tenant_id, graft) {
                    Ok(meta) => meta,
                    Err(error) => return Some(Reply::Error { seq, error }),
                };
                // The point entry was pre-bound at install; its wire id
                // is 0 by construction. Any other name is the same
                // deterministic NoSuchFunction the engines raise.
                if entry == meta.point.entry() {
                    Some(Reply::Bound { seq, entry: 0 })
                } else {
                    Some(Reply::Error {
                        seq,
                        error: WireError::from(&GraftError::Trap(
                            graft_api::Trap::NoSuchFunction(entry),
                        )),
                    })
                }
            }
            Request::Uninstall { graft, .. } => {
                if let Err(error) = self.tenant_graft(tenant_id, graft) {
                    return Some(Reply::Error { seq, error });
                }
                self.host.uninstall(GraftId(graft));
                self.grafts.remove(&graft);
                let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
                t.grafts.retain(|g| g.0 != graft);
                Some(Reply::Gone { seq })
            }
            Request::Invoke {
                graft, entry, args, ..
            } => self.admit(conn, seq, tenant_id, graft, entry, None, args),
            Request::InvokeBatch {
                graft,
                entry,
                arity,
                args,
                ..
            } => self.admit(
                conn,
                seq,
                tenant_id,
                graft,
                entry,
                Some(arity as usize),
                args,
            ),
        }
    }

    /// Validates a graft handle against the tenant's namespace. The
    /// check is the isolation boundary: another tenant's (or a
    /// never-issued) handle is `NoSuchGraft` — handles cannot reach
    /// across namespaces.
    fn tenant_graft(&self, tenant: u64, graft: u64) -> Result<&GraftMeta, WireError> {
        match self.grafts.get(&graft) {
            Some(meta) if meta.tenant == tenant => Ok(meta),
            _ => Err(WireError::NoSuchGraft(graft)),
        }
    }

    /// The per-tenant ceilings a tenant's class grants it.
    fn quotas_for(&self, tenant: &Tenant) -> TenantQuotas {
        self.config.classes[tenant.class].quotas
    }

    fn install(&mut self, tenant_id: u64, point: u8, tech: u8, spec: &str, seq: u32) -> Reply {
        let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
        if matches!(t.standing, Standing::Banned) {
            self.stats.rejected_quarantined += 1;
            t.rejected += 1;
            return Reply::Error {
                seq,
                error: WireError::Quarantined {
                    backoff_remaining: 0,
                },
            };
        }
        let quotas = self.config.classes[t.class].quotas;
        if let Err(e) = t.admit_install(&quotas) {
            self.stats.rejected_quota += 1;
            t.rejected += 1;
            graft_telemetry::counter!("server.rejected.quota").add(1);
            return Reply::Error {
                seq,
                error: WireError::from(&e),
            };
        }
        let Some(point) = AttachPoint::ALL.get(point as usize).copied() else {
            return Reply::Error {
                seq,
                error: WireError::Malformed(format!("unknown attach point {point}")),
            };
        };
        let Some(tech) = Technology::ALL.get(tech as usize).copied() else {
            return Reply::Error {
                seq,
                error: WireError::Malformed(format!("unknown technology {tech}")),
            };
        };
        let Some(loader) = self.specs.get(spec) else {
            return Reply::Error {
                seq,
                error: WireError::Unavailable(format!("no spec `{spec}` registered")),
            };
        };
        let engine = match loader(tech) {
            Ok(engine) => engine,
            Err(e) => {
                return Reply::Error {
                    seq,
                    error: WireError::from(&e),
                }
            }
        };
        let name = format!("t{tenant_id}:{spec}");
        match self.host.install(point, &name, engine) {
            Ok(gid) => {
                self.grafts.insert(
                    gid.0,
                    GraftMeta {
                        tenant: tenant_id,
                        point,
                    },
                );
                let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
                t.grafts.push(gid);
                Reply::Installed { seq, graft: gid.0 }
            }
            Err(e) => Reply::Error {
                seq,
                error: WireError::from(&e),
            },
        }
    }

    /// Admission for one data-plane request: ladder standing, handle
    /// validity, entry-id staleness, in-flight cap, class share, fuel
    /// budget — all checked *before* the plane sees the job, each
    /// refusal typed.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        conn: usize,
        seq: u32,
        tenant_id: u64,
        graft: u64,
        entry: u32,
        batch: Option<usize>,
        args: Vec<i64>,
    ) -> Option<Reply> {
        if let Err(error) = self.tenant_graft(tenant_id, graft) {
            let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
            t.rejected += 1;
            return Some(Reply::Error { seq, error });
        }
        // The only entry id ever issued is 0 (the point entry, bound
        // at install). Anything else is a stale handle and traps
        // deterministically, exactly like the in-process engines.
        if entry != 0 {
            return Some(Reply::Error {
                seq,
                error: WireError::StaleHandle { kind: 0, id: entry },
            });
        }
        if let Some(arity) = batch {
            if arity == 0 || !args.len().is_multiple_of(arity) {
                return Some(Reply::Error {
                    seq,
                    error: WireError::Malformed(format!(
                        "batch of {} args with arity {arity}",
                        args.len()
                    )),
                });
            }
        }
        let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
        match t.standing {
            Standing::Banned => {
                t.rejected += 1;
                self.stats.rejected_quarantined += 1;
                graft_telemetry::counter!("server.rejected.quarantined").add(1);
                return Some(Reply::Error {
                    seq,
                    error: WireError::Quarantined {
                        backoff_remaining: 0,
                    },
                });
            }
            Standing::Parked { remaining, .. } => {
                t.rejected += 1;
                self.stats.rejected_quarantined += 1;
                graft_telemetry::counter!("server.rejected.quarantined").add(1);
                return Some(Reply::Error {
                    seq,
                    error: WireError::Quarantined {
                        backoff_remaining: remaining,
                    },
                });
            }
            Standing::Serving => {}
        }
        let class = t.class;
        let quotas = self.config.classes[class].quotas;
        if let Err(e) = t.admit_invoke(&quotas) {
            t.rejected += 1;
            match &e {
                GraftError::Overloaded { .. } => {
                    self.stats.rejected_overloaded += 1;
                    graft_telemetry::counter!("server.rejected.overloaded").add(1);
                }
                _ => {
                    self.stats.rejected_quota += 1;
                    graft_telemetry::counter!("server.rejected.quota").add(1);
                }
            }
            return Some(Reply::Error {
                seq,
                error: WireError::from(&e),
            });
        }
        // Weighted admission: the class's hard share of the plane.
        // Refusing here (not at enqueue) is what protects *other*
        // classes — this class's flood never occupies their slots.
        let plane_cap = (self.config.steal.queue_cap * self.config.shards) as u64;
        let share = class_share(&self.config.classes, class, plane_cap);
        if self.class_in_flight[class] >= share {
            let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
            t.rejected += 1;
            self.stats.rejected_overloaded += 1;
            graft_telemetry::counter!("server.rejected.overloaded").add(1);
            return Some(Reply::Error {
                seq,
                error: WireError::Overloaded {
                    in_flight: self.class_in_flight[class],
                    cap: share,
                },
            });
        }
        let job = Job {
            conn,
            seq,
            tenant: tenant_id,
            batch,
            args,
            t0: Instant::now(),
        };
        // Key by tenant: a tenant's requests hash to a home shard
        // (cache affinity), and the stealing plane rebalances skew.
        match self
            .host
            .enqueue(&self.queues, tenant_id, Some(GraftId(graft)), job)
        {
            Ok(_shard) => {
                let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
                t.admitted();
                self.class_in_flight[class] += 1;
                self.total_in_flight += 1;
                if self.total_in_flight > self.stats.inflight_peak {
                    self.stats.inflight_peak = self.total_in_flight;
                }
                None
            }
            Err(_job) => {
                // Every queue in the plane is full: backpressure is an
                // Overloaded refusal, never a silent drop.
                let t = self.tenants.get_mut(&tenant_id).expect("tenant exists");
                t.rejected += 1;
                self.stats.rejected_overloaded += 1;
                graft_telemetry::counter!("server.rejected.overloaded").add(1);
                Some(Reply::Error {
                    seq,
                    error: WireError::Overloaded {
                        in_flight: self.total_in_flight,
                        cap: plane_cap,
                    },
                })
            }
        }
    }

    /// The invoke half only: serves one steal-aware batch on `shard`
    /// and queues the completions without processing them. Pair with
    /// [`reap`](Self::reap). Panics if a [`WorkerPlane`]
    /// (crate::workers::WorkerPlane) currently owns the handles.
    pub fn drain_invoke(&mut self, shard: usize) -> usize {
        assert!(
            !self.handles.is_empty(),
            "drain_invoke needs resident handles (worker plane active?)"
        );
        invoke_shard(shard, &mut self.handles[shard], &self.queues, &self.completions)
    }

    /// The executor: serves one steal-aware batch on `shard` and
    /// processes every queued completion. Returns the number of
    /// requests invoked.
    pub fn drain(&mut self, shard: usize) -> usize {
        let n = self.drain_invoke(shard);
        self.reap();
        n
    }

    /// Serves every shard round-robin until the plane is empty. The
    /// single-threaded deterministic shape (tests, Table 11); a pipe
    /// front-end interleaves `drain` with its poll loop instead.
    pub fn drain_all(&mut self) -> usize {
        let mut total = 0;
        loop {
            let mut round = 0;
            for shard in 0..self.handles.len() {
                round += self.drain(shard);
            }
            if round == 0 {
                return total;
            }
            total += round;
        }
    }

    /// The completion half: pops every queued [`Completion`] and runs
    /// the serial accounting/reply path. Returns how many were
    /// processed. This is the *only* consumer of tenant standing, so
    /// running it on one thread (the pump) makes strike accounting
    /// exactly-once regardless of worker count.
    pub fn reap(&mut self) -> usize {
        let completions = Arc::clone(&self.completions);
        let mut n = 0;
        while let Some(c) = completions.pop() {
            self.complete(c);
            n += 1;
        }
        n
    }

    /// Completion: accounting, quarantine detection, ladder ticks,
    /// fuel refresh, reply delivery.
    fn complete(&mut self, completion: Completion) {
        let Completion {
            shard,
            job,
            values,
            error,
        } = completion;
        let service_ns = job.t0.elapsed().as_nanos() as u64;
        graft_telemetry::histogram!("server.service_ns").record(service_ns);
        if let Some(sink) = self.latency_sink.as_mut() {
            sink.push((job.tenant, service_ns));
        }
        self.stats.served += 1;
        self.total_in_flight = self.total_in_flight.saturating_sub(1);
        graft_telemetry::counter!("server.replies").add(1);

        // Did this failure quarantine the graft? (The supervisor
        // detaches globally; the *tenant* consequence — parking on the
        // ladder — is the server's decision.) The `Serving` guard is
        // the exactly-once strike: a second trap from the same episode
        // (e.g. a queued request another worker served as
        // `Unavailable` after the detach) finds the tenant already
        // parked and does not strike again.
        let clean = error.is_none();
        if let Some(e) = &error {
            let trapped = e.as_trap().is_some()
                || matches!(e, GraftError::Unavailable { .. });
            if trapped {
                // Find the job's graft: it is the one the tenant owns
                // that the host now reports quarantined.
                let t = self.tenants.get(&job.tenant).expect("tenant exists");
                let newly_parked = matches!(t.standing, Standing::Serving);
                if newly_parked {
                    let quarantined = t
                        .grafts
                        .iter()
                        .copied()
                        .find(|g| self.host.is_quarantined(*g));
                    if let Some(gid) = quarantined {
                        let base = self.config.backoff_base;
                        let ceiling = self.config.ban_ceiling;
                        let t = self.tenants.get_mut(&job.tenant).expect("tenant exists");
                        t.park(gid, base, ceiling);
                        self.parked.push(job.tenant);
                        self.stats.tenants_quarantined += 1;
                        graft_telemetry::counter!("server.tenants.quarantined").add(1);
                    }
                }
            }
        }

        // Fuel-quota refresh from the authoritative per-graft ledgers,
        // amortized over `fuel_refresh` completions per tenant. With a
        // worker plane active the handles are not resident — workers
        // flush their own handle per batch instead, so the shared
        // ledgers stay no staler than one batch.
        let t = self.tenants.get(&job.tenant).expect("tenant exists");
        let quotas = self.quotas_for(t);
        if quotas.fuel_budget.is_some() && t.accepted.is_multiple_of(self.config.fuel_refresh) {
            let grafts = t.grafts.clone();
            if let Some(handle) = self.handles.get_mut(shard) {
                handle.flush();
            }
            let charged: u64 = grafts
                .iter()
                .filter_map(|g| self.host.ledger(*g))
                .map(|l| l.fuel_used)
                .sum();
            let t = self.tenants.get_mut(&job.tenant).expect("tenant exists");
            t.fuel_charged = charged;
        }

        let t = self.tenants.get_mut(&job.tenant).expect("tenant exists");
        let class = t.class;
        t.completed();
        self.class_in_flight[class] = self.class_in_flight[class].saturating_sub(1);

        // A clean dispatch ticks every parked tenant's window — the
        // server-wide analog of the scalar host's "dispatches served
        // without the graft".
        if clean && !self.parked.is_empty() {
            let mut still_parked = Vec::with_capacity(self.parked.len());
            let mut readmit = Vec::new();
            for id in std::mem::take(&mut self.parked) {
                let t = self.tenants.get_mut(&id).expect("tenant exists");
                match t.tick() {
                    Some(gid) => readmit.push(gid),
                    None => {
                        if matches!(t.standing, Standing::Parked { .. }) {
                            still_parked.push(id);
                        }
                        // Banned tenants fall off the tick list.
                    }
                }
            }
            self.parked = still_parked;
            for gid in readmit {
                self.host.readmit(gid);
                self.stats.tenants_quarantined =
                    self.stats.tenants_quarantined.saturating_sub(1);
            }
        }

        let reply = match (job.batch, error) {
            (None, None) => Reply::Value {
                seq: job.seq,
                value: values[0],
            },
            (None, Some(e)) => Reply::Error {
                seq: job.seq,
                error: WireError::from(&e),
            },
            (Some(_), e) => Reply::Batch {
                seq: job.seq,
                values,
                error: e.as_ref().map(WireError::from),
            },
        };
        match self.conns.get_mut(job.conn) {
            Some(c) if c.open => c.outbox.extend(reply.encode()),
            _ => {
                // The client churned away mid-flight: the accounting
                // above still ran (slots released, strikes recorded),
                // only the bytes have nowhere to go.
                self.stats.orphaned += 1;
                graft_telemetry::counter!("server.replies.orphaned").add(1);
            }
        }
    }

    /// Work still sitting in the plane.
    pub fn backlog(&self) -> usize {
        self.queues.total_depth()
    }

    /// The shard a tenant's work homes to (before any warm-graft
    /// divert) — lets tests and the bench rig pick drain order.
    pub fn home_shard(&self, tenant: u64) -> usize {
        self.queues.home(tenant)
    }

    /// Queued depth of one shard (racy probe while workers run).
    pub fn shard_depth(&self, shard: usize) -> usize {
        self.queues.depth(shard)
    }

    /// Requests admitted but not yet completion-processed (includes
    /// queued, in-invoke, and queued-completion work).
    pub fn in_flight(&self) -> u64 {
        self.total_in_flight
    }

    /// Number of shards serving the data plane.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// A tenant's current ladder standing (None = never connected).
    pub fn tenant_standing(&self, tenant: u64) -> Option<Standing> {
        self.tenants.get(&tenant).map(|t| t.standing)
    }

    /// A tenant's quarantine-trip count (None = never connected).
    pub fn tenant_trips(&self, tenant: u64) -> Option<u32> {
        self.tenants.get(&tenant).map(|t| t.quarantines)
    }

    /// A tenant's admission ledger `(accepted, rejected, in_flight_peak)`.
    pub fn tenant_ledger(&self, tenant: u64) -> Option<(u64, u64, usize)> {
        self.tenants
            .get(&tenant)
            .map(|t| (t.accepted, t.rejected, t.in_flight_peak))
    }

    /// The backing host (for tests asserting host-level state).
    pub fn host(&self) -> &ShardedHost {
        &self.host
    }

    /// Plane stats (steals, diverts…) for the bench report.
    pub fn queue_stats(&self) -> graft_kernel::QueueStats {
        self.queues.stats()
    }

    /// Moves the shard handles out for a worker plane, along with the
    /// shared plane ends the workers need. `fuel_metered` tells the
    /// workers to flush their handle per batch so the pump-side fuel
    /// refresh reads fresh ledgers.
    pub(crate) fn worker_parts(
        &mut self,
    ) -> (
        Vec<ShardHandle>,
        RunQueues<Job>,
        Arc<CompletionQueue<Completion>>,
        bool,
    ) {
        assert!(
            !self.handles.is_empty(),
            "worker plane already owns the handles"
        );
        let fuel_metered = self
            .config
            .classes
            .iter()
            .any(|c| c.weight > 0 && c.quotas.fuel_budget.is_some());
        (
            std::mem::take(&mut self.handles),
            self.queues.clone(),
            Arc::clone(&self.completions),
            fuel_metered,
        )
    }

    /// Returns the handles a worker plane took (already ordered by
    /// shard index by the caller).
    pub(crate) fn restore_handles(&mut self, handles: Vec<ShardHandle>) {
        debug_assert!(self.handles.is_empty());
        self.handles = handles;
    }

    /// Publishes `server.*` gauge-style counters. Called on drop;
    /// idempotent.
    fn publish_telemetry(&mut self) {
        if self.published || !graft_telemetry::enabled() {
            return;
        }
        self.published = true;
        graft_telemetry::counter!("server.served").add(self.stats.served);
        graft_telemetry::counter!("server.tenants").add(self.stats.tenants);
        graft_telemetry::counter!("server.inflight.peak").add(self.stats.inflight_peak);
        graft_telemetry::counter!("server.conns").add(self.conns.len() as u64);
    }
}

impl Drop for GraftServer {
    fn drop(&mut self) {
        self.publish_telemetry();
    }
}
