//! graft-server: the networked multi-tenant graft host.
//!
//! The 1996 paper measures extension technologies inside one process;
//! the north star is a *served* system — grafts installed and invoked
//! on behalf of many untrusted tenants, the way eBPF programs are
//! loaded into a shared kernel. This crate promotes the in-process
//! sharded kernel to that shape:
//!
//! * [`wire`] — the length-prefixed binary protocol over the id-based
//!   batched ABI: bind/invoke/invoke_batch frames, typed wire errors,
//!   malformed-frame recovery without tearing the connection;
//! * [`tenant`] — per-tenant namespaces, quotas (max grafts, fuel
//!   budget, in-flight cap), and the PR 5 backoff ladder as *tenant*
//!   isolation;
//! * [`server`] — the transport-agnostic protocol core + admission
//!   control, with the data plane keyed into `ShardedHost::enqueue`
//!   so the work-stealing shards serve requests;
//! * [`client`] — frame building and reply re-association, plus the
//!   deterministic in-process [`VirtualTransport`];
//! * [`pipe`] — the live front-end: a `poll(2)` readiness loop over
//!   non-blocking pipe shims from `kernsim::netpipe`.
//!
//! See `docs/server.md` for the frame catalogue and the tenant
//! lifecycle state machine, and Table 11 (`--bin table11`) for the
//! service benchmark: 10k+ simulated tenants, p50/p99/p999 service
//! latency and saturation throughput per technology over the shard
//! ladder, and the noisy-neighbor quarantine drill.

#![warn(missing_docs)]

pub mod client;
pub mod pipe;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{GraftClient, VirtualTransport};
pub use pipe::{serve_pipes, PipeServeStats};
pub use server::{GraftServer, ServerConfig, ServerStats, SpecLoader};
pub use tenant::{Standing, Tenant, TenantQuotas};
pub use wire::{FrameBuf, Reply, Request, WireError, MAX_FRAME};
