//! graft-server: the networked multi-tenant graft host.
//!
//! The 1996 paper measures extension technologies inside one process;
//! the north star is a *served* system — grafts installed and invoked
//! on behalf of many untrusted tenants, the way eBPF programs are
//! loaded into a shared kernel. This crate promotes the in-process
//! sharded kernel to that shape:
//!
//! * [`wire`] — the length-prefixed binary protocol over the id-based
//!   batched ABI: bind/invoke/invoke_batch frames, typed wire errors,
//!   malformed-frame recovery without tearing the connection;
//! * [`tenant`] — per-tenant namespaces, quotas (max grafts, fuel
//!   budget, in-flight cap), weighted admission classes, and the PR 5
//!   backoff ladder as *tenant* isolation;
//! * [`server`] — the transport-agnostic protocol core + admission
//!   control, with the data plane keyed into `ShardedHost::enqueue`
//!   so the work-stealing shards serve requests. Serving is split
//!   into an invoke half and a serial completion half joined by the
//!   lock-free [`cq::CompletionQueue`];
//! * [`workers`] — the drain-worker plane: one real thread per shard
//!   behind `ShardedHost::take_handles`, joined loss-free;
//! * [`client`] — frame building and reply re-association, plus the
//!   deterministic in-process [`VirtualTransport`];
//! * [`pipe`] — the live front-ends: `poll(2)` readiness loops over
//!   non-blocking pipe shims from `kernsim::netpipe`, single-threaded
//!   ([`serve_pipes`]) or pump + workers ([`serve_pipes_threaded`]).
//!
//! See `docs/server.md` for the frame catalogue, the tenant lifecycle
//! state machine, and the threading model, and Table 11
//! (`--bin table11`) for the service benchmark: 100k+ simulated
//! tenants with churn and slowloris clients, p50/p99/p999 service
//! latency and saturation throughput per technology over the worker
//! ladder, and the noisy-neighbor quarantine drill.

#![warn(missing_docs)]

pub mod client;
pub mod cq;
pub mod pipe;
pub mod server;
pub mod tenant;
pub mod wire;
pub mod workers;

pub use client::{GraftClient, VirtualTransport};
pub use cq::CompletionQueue;
pub use pipe::{serve_pipes, serve_pipes_threaded, PipeServeStats};
pub use server::{GraftServer, ServerConfig, ServerStats, SpecLoader};
pub use tenant::{class_share, QuotaClass, Standing, Tenant, TenantQuotas, MAX_CLASSES};
pub use wire::{FrameBuf, Reply, Request, WireError, MAX_FRAME};
pub use workers::{WorkerPlane, WorkerStats};
