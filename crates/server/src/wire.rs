//! The graft-server wire protocol: length-prefixed binary frames over
//! the id-based batched ABI.
//!
//! Every frame is `u32-LE length ‖ body`; the first body byte is the
//! opcode, and every request after `Hello` carries a client-chosen
//! `seq` that the server echoes in the reply. Echoing matters because
//! the data plane is served by the stealing shards: replies complete
//! *out of order* relative to submission, and `seq` is how the client
//! re-associates them.
//!
//! Two failure shapes are deliberately distinct:
//!
//! * a frame that *parses as a frame* but has a bad body (unknown
//!   opcode, truncated payload, string overrun) is answered with a
//!   typed [`WireError::Malformed`] reply and the connection stays up —
//!   the length prefix lets the decoder resynchronize on the next
//!   frame boundary;
//! * a frame whose declared length exceeds [`MAX_FRAME`] is fatal:
//!   the prefix itself can no longer be trusted, so the server closes
//!   the connection (the only tear-down the protocol performs).
//!
//! Stale handles never panic and never index: an `EntryId` the server
//! never issued comes back as [`WireError::StaleHandle`], the wire
//! image of [`Trap::BadHandle`] — deterministically, exactly as the
//! in-process engines behave.

use graft_api::{GraftError, Trap};
use std::fmt;

/// Largest body a frame may declare. Generous for batched invokes
/// (8-byte args × thousands) while keeping a corrupted length prefix
/// from ballooning the connection buffer.
pub const MAX_FRAME: usize = 1 << 16;

/// Request opcodes (first body byte, client → server).
mod op {
    pub const HELLO: u8 = 0x01;
    pub const INSTALL: u8 = 0x02;
    pub const BIND: u8 = 0x03;
    pub const INVOKE: u8 = 0x04;
    pub const INVOKE_BATCH: u8 = 0x05;
    pub const UNINSTALL: u8 = 0x06;
    pub const BYE: u8 = 0x07;
}

/// Reply opcodes (first body byte, server → client).
mod rop {
    pub const WELCOME: u8 = 0x81;
    pub const INSTALLED: u8 = 0x82;
    pub const BOUND: u8 = 0x83;
    pub const VALUE: u8 = 0x84;
    pub const BATCH: u8 = 0x85;
    pub const GONE: u8 = 0x86;
    pub const ERROR: u8 = 0xff;
}

/// A client → server frame body, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// First frame on a connection: authenticate as tenant `tenant`.
    Hello {
        /// Echoed in the reply.
        seq: u32,
        /// The tenant this connection acts for.
        tenant: u64,
    },
    /// Install a named graft spec (server-side registry) at an attach
    /// point with a technology, into this tenant's namespace.
    Install {
        /// Echoed in the reply.
        seq: u32,
        /// Attach-point code (see [`Request::encode`]).
        point: u8,
        /// Technology code.
        tech: u8,
        /// Spec name in the server's registry.
        spec: String,
    },
    /// Look up the bound entry id for `entry` on an installed graft.
    Bind {
        /// Echoed in the reply.
        seq: u32,
        /// Graft handle from `Installed`.
        graft: u64,
        /// Entry-point name.
        entry: String,
    },
    /// Invoke one pre-bound entry with `args`.
    Invoke {
        /// Echoed in the reply.
        seq: u32,
        /// Graft handle from `Installed`.
        graft: u64,
        /// Entry id from `Bound`.
        entry: u32,
        /// Arguments.
        args: Vec<i64>,
    },
    /// Invoke one entry `calls` times with packed `arity`-wide args —
    /// the wire image of `ExtensionEngine::invoke_batch`, with the same
    /// prefix-on-trap semantics.
    InvokeBatch {
        /// Echoed in the reply.
        seq: u32,
        /// Graft handle from `Installed`.
        graft: u64,
        /// Entry id from `Bound`.
        entry: u32,
        /// Per-call argument count.
        arity: u16,
        /// `calls × arity` packed arguments.
        args: Vec<i64>,
    },
    /// Remove a graft from this tenant's namespace.
    Uninstall {
        /// Echoed in the reply.
        seq: u32,
        /// Graft handle from `Installed`.
        graft: u64,
    },
    /// Orderly close.
    Bye {
        /// Echoed in the reply.
        seq: u32,
    },
}

/// A server → client frame body, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `Hello` accepted.
    Welcome {
        /// Echo of the request seq.
        seq: u32,
        /// The tenant id acknowledged.
        tenant: u64,
    },
    /// `Install` succeeded; `graft` is the handle for later frames.
    Installed {
        /// Echo of the request seq.
        seq: u32,
        /// The new graft handle.
        graft: u64,
    },
    /// `Bind` succeeded.
    Bound {
        /// Echo of the request seq.
        seq: u32,
        /// The entry id to put in invoke frames.
        entry: u32,
    },
    /// An `Invoke` completed with a value.
    Value {
        /// Echo of the request seq.
        seq: u32,
        /// The graft's return value.
        value: i64,
    },
    /// An `InvokeBatch` completed: the per-call values that ran, plus
    /// the trap that stopped the batch if one did (prefix semantics).
    Batch {
        /// Echo of the request seq.
        seq: u32,
        /// Values for the calls that completed.
        values: Vec<i64>,
        /// The error that ended the batch early, if any.
        error: Option<WireError>,
    },
    /// `Uninstall`/`Bye` acknowledged.
    Gone {
        /// Echo of the request seq.
        seq: u32,
    },
    /// The request failed with a typed error.
    Error {
        /// Echo of the request seq (0 when the seq itself was
        /// unreadable).
        seq: u32,
        /// What went wrong.
        error: WireError,
    },
}

/// Typed wire errors. Everything a server can refuse is enumerated
/// here so clients never have to parse prose, and admission decisions
/// (`QuotaExceeded`, `Overloaded`, `Quarantined`) are distinguishable
/// from runtime faults (`Trap`) and protocol misuse (`Malformed`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame body did not parse; the connection survives.
    Malformed(String),
    /// A data frame arrived before `Hello`, or `Hello` came twice.
    Protocol(String),
    /// The graft handle does not exist in this tenant's namespace.
    NoSuchGraft(u64),
    /// A pre-bound handle the server never issued (wire image of
    /// [`Trap::BadHandle`]).
    StaleHandle {
        /// `0` = entry, `1` = region.
        kind: u8,
        /// The raw handle value presented.
        id: u32,
    },
    /// The graft trapped; `kind` is the [`graft_api::TrapKind`]
    /// discriminant and `detail` the rendered trap.
    Trap {
        /// Coarse trap taxonomy code.
        kind: u8,
        /// Human-readable trap rendering.
        detail: String,
    },
    /// A per-tenant quota (grafts installed, cumulative fuel) is
    /// exhausted.
    QuotaExceeded {
        /// Which quota (`"grafts"`, `"fuel"`, …).
        resource: String,
        /// The configured ceiling.
        limit: u64,
    },
    /// The tenant's in-flight cap (or the plane's queue capacity) is
    /// full; the request was rejected, not queued.
    Overloaded {
        /// Requests in flight when refused.
        in_flight: u64,
        /// The ceiling that was hit.
        cap: u64,
    },
    /// The tenant's graft is quarantined; requests are refused until
    /// the backoff window elapses (`0` = permanently banned).
    Quarantined {
        /// Clean server dispatches remaining before re-admission.
        backoff_remaining: u64,
    },
    /// The graft exists but cannot serve (detached, missing source…).
    Unavailable(String),
    /// Wrong argument count for the entry.
    BadArity {
        /// Declared parameter count.
        expected: u32,
        /// Supplied argument count.
        got: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WireError::NoSuchGraft(id) => write!(f, "no such graft {id}"),
            WireError::StaleHandle { kind, id } => {
                let ns = if *kind == 0 { "entry" } else { "region" };
                write!(f, "stale or unknown {ns} handle {id}")
            }
            WireError::Trap { detail, .. } => write!(f, "graft trapped: {detail}"),
            WireError::QuotaExceeded { resource, limit } => {
                write!(f, "quota exceeded: {resource} (limit {limit})")
            }
            WireError::Overloaded { in_flight, cap } => {
                write!(f, "overloaded: {in_flight} in flight (cap {cap})")
            }
            WireError::Quarantined { backoff_remaining } => {
                write!(f, "tenant quarantined ({backoff_remaining} to re-admission)")
            }
            WireError::Unavailable(m) => write!(f, "unavailable: {m}"),
            WireError::BadArity { expected, got } => {
                write!(f, "bad arity: expected {expected}, got {got}")
            }
        }
    }
}

impl From<&GraftError> for WireError {
    fn from(e: &GraftError) -> WireError {
        match e {
            GraftError::Trap(Trap::BadHandle { kind, id }) => WireError::StaleHandle {
                kind: u8::from(*kind != "entry"),
                id: *id,
            },
            GraftError::Trap(t) => WireError::Trap {
                kind: t.kind() as u8,
                detail: t.to_string(),
            },
            GraftError::QuotaExceeded { resource, limit } => WireError::QuotaExceeded {
                resource: (*resource).to_string(),
                limit: *limit,
            },
            GraftError::Overloaded { in_flight, cap } => WireError::Overloaded {
                in_flight: *in_flight,
                cap: *cap,
            },
            GraftError::Unavailable { graft, missing } => {
                WireError::Unavailable(format!("graft `{graft}`: {missing}"))
            }
            GraftError::BadArity { expected, got, .. } => WireError::BadArity {
                expected: *expected as u32,
                got: *got as u32,
            },
            other => WireError::Unavailable(other.to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// Encoding primitives: little-endian integers, u16-length strings.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over one frame body; every read is bounds-checked and a
/// short body yields `Malformed`, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed(format!(
                "truncated body: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError::Malformed("non-UTF-8 string".into()))
    }

    fn i64_vec(&mut self, count: usize) -> Result<Vec<i64>, WireError> {
        // Validate against remaining bytes *before* allocating so a
        // forged count cannot balloon memory.
        if (self.buf.len() - self.pos) / 8 < count {
            return Err(WireError::Malformed(format!(
                "arg count {count} exceeds body"
            )));
        }
        (0..count).map(|_| self.i64()).collect()
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

impl Request {
    /// Encodes this request as one length-prefixed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::Hello { seq, tenant } => {
                b.push(op::HELLO);
                put_u32(&mut b, *seq);
                put_u64(&mut b, *tenant);
            }
            Request::Install {
                seq,
                point,
                tech,
                spec,
            } => {
                b.push(op::INSTALL);
                put_u32(&mut b, *seq);
                b.push(*point);
                b.push(*tech);
                put_str(&mut b, spec);
            }
            Request::Bind { seq, graft, entry } => {
                b.push(op::BIND);
                put_u32(&mut b, *seq);
                put_u64(&mut b, *graft);
                put_str(&mut b, entry);
            }
            Request::Invoke {
                seq,
                graft,
                entry,
                args,
            } => {
                b.push(op::INVOKE);
                put_u32(&mut b, *seq);
                put_u64(&mut b, *graft);
                put_u32(&mut b, *entry);
                put_u16(&mut b, args.len() as u16);
                args.iter().for_each(|a| put_i64(&mut b, *a));
            }
            Request::InvokeBatch {
                seq,
                graft,
                entry,
                arity,
                args,
            } => {
                b.push(op::INVOKE_BATCH);
                put_u32(&mut b, *seq);
                put_u64(&mut b, *graft);
                put_u32(&mut b, *entry);
                put_u16(&mut b, *arity);
                put_u32(&mut b, args.len() as u32);
                args.iter().for_each(|a| put_i64(&mut b, *a));
            }
            Request::Uninstall { seq, graft } => {
                b.push(op::UNINSTALL);
                put_u32(&mut b, *seq);
                put_u64(&mut b, *graft);
            }
            Request::Bye { seq } => {
                b.push(op::BYE);
                put_u32(&mut b, *seq);
            }
        }
        frame(b)
    }

    /// Decodes one frame *body* (length prefix already stripped).
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(body);
        let opcode = c.u8()?;
        let req = match opcode {
            op::HELLO => Request::Hello {
                seq: c.u32()?,
                tenant: c.u64()?,
            },
            op::INSTALL => Request::Install {
                seq: c.u32()?,
                point: c.u8()?,
                tech: c.u8()?,
                spec: c.string()?,
            },
            op::BIND => Request::Bind {
                seq: c.u32()?,
                graft: c.u64()?,
                entry: c.string()?,
            },
            op::INVOKE => {
                let seq = c.u32()?;
                let graft = c.u64()?;
                let entry = c.u32()?;
                let argc = c.u16()? as usize;
                Request::Invoke {
                    seq,
                    graft,
                    entry,
                    args: c.i64_vec(argc)?,
                }
            }
            op::INVOKE_BATCH => {
                let seq = c.u32()?;
                let graft = c.u64()?;
                let entry = c.u32()?;
                let arity = c.u16()?;
                let total = c.u32()? as usize;
                let args = c.i64_vec(total)?;
                if arity != 0 && args.len() % arity as usize != 0 {
                    return Err(WireError::Malformed(format!(
                        "batch args {} not a multiple of arity {arity}",
                        args.len()
                    )));
                }
                Request::InvokeBatch {
                    seq,
                    graft,
                    entry,
                    arity,
                    args,
                }
            }
            op::UNINSTALL => Request::Uninstall {
                seq: c.u32()?,
                graft: c.u64()?,
            },
            op::BYE => Request::Bye { seq: c.u32()? },
            other => return Err(WireError::Malformed(format!("unknown opcode {other:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }

    /// The request's sequence number (for echoing in error replies).
    pub fn seq(&self) -> u32 {
        match self {
            Request::Hello { seq, .. }
            | Request::Install { seq, .. }
            | Request::Bind { seq, .. }
            | Request::Invoke { seq, .. }
            | Request::InvokeBatch { seq, .. }
            | Request::Uninstall { seq, .. }
            | Request::Bye { seq } => *seq,
        }
    }
}

fn put_wire_error(b: &mut Vec<u8>, e: &WireError) {
    match e {
        WireError::Malformed(m) => {
            b.push(0);
            put_str(b, m);
        }
        WireError::Protocol(m) => {
            b.push(1);
            put_str(b, m);
        }
        WireError::NoSuchGraft(id) => {
            b.push(2);
            put_u64(b, *id);
        }
        WireError::StaleHandle { kind, id } => {
            b.push(3);
            b.push(*kind);
            put_u32(b, *id);
        }
        WireError::Trap { kind, detail } => {
            b.push(4);
            b.push(*kind);
            put_str(b, detail);
        }
        WireError::QuotaExceeded { resource, limit } => {
            b.push(5);
            put_str(b, resource);
            put_u64(b, *limit);
        }
        WireError::Overloaded { in_flight, cap } => {
            b.push(6);
            put_u64(b, *in_flight);
            put_u64(b, *cap);
        }
        WireError::Quarantined { backoff_remaining } => {
            b.push(7);
            put_u64(b, *backoff_remaining);
        }
        WireError::Unavailable(m) => {
            b.push(8);
            put_str(b, m);
        }
        WireError::BadArity { expected, got } => {
            b.push(9);
            put_u32(b, *expected);
            put_u32(b, *got);
        }
    }
}

fn read_wire_error(c: &mut Cursor<'_>) -> Result<WireError, WireError> {
    Ok(match c.u8()? {
        0 => WireError::Malformed(c.string()?),
        1 => WireError::Protocol(c.string()?),
        2 => WireError::NoSuchGraft(c.u64()?),
        3 => WireError::StaleHandle {
            kind: c.u8()?,
            id: c.u32()?,
        },
        4 => WireError::Trap {
            kind: c.u8()?,
            detail: c.string()?,
        },
        5 => WireError::QuotaExceeded {
            resource: c.string()?,
            limit: c.u64()?,
        },
        6 => WireError::Overloaded {
            in_flight: c.u64()?,
            cap: c.u64()?,
        },
        7 => WireError::Quarantined {
            backoff_remaining: c.u64()?,
        },
        8 => WireError::Unavailable(c.string()?),
        9 => WireError::BadArity {
            expected: c.u32()?,
            got: c.u32()?,
        },
        other => {
            return Err(WireError::Malformed(format!(
                "unknown error tag {other}"
            )))
        }
    })
}

impl Reply {
    /// Encodes this reply as one length-prefixed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Reply::Welcome { seq, tenant } => {
                b.push(rop::WELCOME);
                put_u32(&mut b, *seq);
                put_u64(&mut b, *tenant);
            }
            Reply::Installed { seq, graft } => {
                b.push(rop::INSTALLED);
                put_u32(&mut b, *seq);
                put_u64(&mut b, *graft);
            }
            Reply::Bound { seq, entry } => {
                b.push(rop::BOUND);
                put_u32(&mut b, *seq);
                put_u32(&mut b, *entry);
            }
            Reply::Value { seq, value } => {
                b.push(rop::VALUE);
                put_u32(&mut b, *seq);
                put_i64(&mut b, *value);
            }
            Reply::Batch { seq, values, error } => {
                b.push(rop::BATCH);
                put_u32(&mut b, *seq);
                put_u32(&mut b, values.len() as u32);
                values.iter().for_each(|v| put_i64(&mut b, *v));
                match error {
                    None => b.push(0),
                    Some(e) => {
                        b.push(1);
                        put_wire_error(&mut b, e);
                    }
                }
            }
            Reply::Gone { seq } => {
                b.push(rop::GONE);
                put_u32(&mut b, *seq);
            }
            Reply::Error { seq, error } => {
                b.push(rop::ERROR);
                put_u32(&mut b, *seq);
                put_wire_error(&mut b, error);
            }
        }
        frame(b)
    }

    /// Decodes one frame *body* (length prefix already stripped).
    pub fn decode(body: &[u8]) -> Result<Reply, WireError> {
        let mut c = Cursor::new(body);
        let opcode = c.u8()?;
        let reply = match opcode {
            rop::WELCOME => Reply::Welcome {
                seq: c.u32()?,
                tenant: c.u64()?,
            },
            rop::INSTALLED => Reply::Installed {
                seq: c.u32()?,
                graft: c.u64()?,
            },
            rop::BOUND => Reply::Bound {
                seq: c.u32()?,
                entry: c.u32()?,
            },
            rop::VALUE => Reply::Value {
                seq: c.u32()?,
                value: c.i64()?,
            },
            rop::BATCH => {
                let seq = c.u32()?;
                let count = c.u32()? as usize;
                let values = c.i64_vec(count)?;
                let error = match c.u8()? {
                    0 => None,
                    _ => Some(read_wire_error(&mut c)?),
                };
                Reply::Batch { seq, values, error }
            }
            rop::GONE => Reply::Gone { seq: c.u32()? },
            rop::ERROR => {
                let seq = c.u32()?;
                Reply::Error {
                    seq,
                    error: read_wire_error(&mut c)?,
                }
            }
            other => return Err(WireError::Malformed(format!("unknown opcode {other:#04x}"))),
        };
        c.done()?;
        Ok(reply)
    }

    /// The echoed sequence number.
    pub fn seq(&self) -> u32 {
        match self {
            Reply::Welcome { seq, .. }
            | Reply::Installed { seq, .. }
            | Reply::Bound { seq, .. }
            | Reply::Value { seq, .. }
            | Reply::Batch { seq, .. }
            | Reply::Gone { seq }
            | Reply::Error { seq, .. } => *seq,
        }
    }
}

/// Incremental frame reassembly over an arbitrary byte stream.
///
/// Feed it whatever chunks the transport produced (a non-blocking pipe
/// read, a whole virtual-transport flush); [`FrameBuf::next`] yields
/// complete frame bodies in order. The only unrecoverable condition is
/// a declared length beyond [`MAX_FRAME`] — everything else is either
/// "wait for more bytes" or a per-frame body error the caller answers
/// without closing.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw transport bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the consumed prefix once it
        // dominates the buffer so a long-lived connection stays O(frame).
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, if one has fully arrived.
    ///
    /// `Err` is the fatal oversized-length condition; the caller must
    /// close the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4].try_into().unwrap(),
        ) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Malformed(format!(
                "declared frame length {len} exceeds maximum {MAX_FRAME}"
            )));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let body = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(body))
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let framed = req.encode();
        let mut fb = FrameBuf::new();
        fb.extend(&framed);
        let body = fb.next_frame().unwrap().expect("one frame");
        assert_eq!(Request::decode(&body).unwrap(), req);
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Hello { seq: 1, tenant: 42 });
        round_trip_req(Request::Install {
            seq: 2,
            point: 0,
            tech: 3,
            spec: "tenant_tag".into(),
        });
        round_trip_req(Request::Bind {
            seq: 3,
            graft: 7,
            entry: "select_victim".into(),
        });
        round_trip_req(Request::Invoke {
            seq: 4,
            graft: 7,
            entry: 0,
            args: vec![-1, i64::MAX, 0],
        });
        round_trip_req(Request::InvokeBatch {
            seq: 5,
            graft: 7,
            entry: 0,
            arity: 2,
            args: vec![1, 2, 3, 4],
        });
        round_trip_req(Request::Uninstall { seq: 6, graft: 7 });
        round_trip_req(Request::Bye { seq: 7 });
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Welcome { seq: 1, tenant: 9 },
            Reply::Installed { seq: 2, graft: 3 },
            Reply::Bound { seq: 3, entry: 0 },
            Reply::Value { seq: 4, value: -7 },
            Reply::Batch {
                seq: 5,
                values: vec![1, 2],
                error: Some(WireError::Trap {
                    kind: 2,
                    detail: "integer division by zero".into(),
                }),
            },
            Reply::Batch {
                seq: 6,
                values: vec![],
                error: None,
            },
            Reply::Gone { seq: 7 },
            Reply::Error {
                seq: 8,
                error: WireError::StaleHandle { kind: 0, id: 99 },
            },
            Reply::Error {
                seq: 9,
                error: WireError::QuotaExceeded {
                    resource: "grafts".into(),
                    limit: 4,
                },
            },
            Reply::Error {
                seq: 10,
                error: WireError::Overloaded {
                    in_flight: 64,
                    cap: 64,
                },
            },
            Reply::Error {
                seq: 11,
                error: WireError::Quarantined {
                    backoff_remaining: 16,
                },
            },
        ] {
            let framed = reply.encode();
            let mut fb = FrameBuf::new();
            fb.extend(&framed);
            let body = fb.next_frame().unwrap().unwrap();
            assert_eq!(Reply::decode(&body).unwrap(), reply);
        }
    }

    #[test]
    fn frames_reassemble_from_arbitrary_chunking() {
        let a = Request::Invoke {
            seq: 1,
            graft: 1,
            entry: 0,
            args: vec![10, 20],
        }
        .encode();
        let b = Request::Bye { seq: 2 }.encode();
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();

        // Deliver one byte at a time: exactly two frames pop out,
        // in order, regardless of chunk boundaries.
        let mut fb = FrameBuf::new();
        let mut frames = Vec::new();
        for byte in stream {
            fb.extend(&[byte]);
            while let Some(body) = fb.next_frame().unwrap() {
                frames.push(Request::decode(&body).unwrap());
            }
        }
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[0], Request::Invoke { .. }));
        assert!(matches!(frames[1], Request::Bye { .. }));
    }

    #[test]
    fn malformed_body_is_typed_not_fatal() {
        // Unknown opcode.
        let err = Request::decode(&[0x6f, 0, 0, 0, 0]).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
        // Truncated payload.
        let err = Request::decode(&[super::op::INVOKE, 1, 0]).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
        // Trailing garbage.
        let mut body = vec![super::op::BYE, 1, 0, 0, 0];
        body.push(0xee);
        let err = Request::decode(&body).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
        // Forged arg count larger than the body.
        let mut body = vec![super::op::INVOKE];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&u16::MAX.to_le_bytes()); // claims 65535 args
        let err = Request::decode(&body).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut fb = FrameBuf::new();
        fb.extend(&((MAX_FRAME as u32 + 1).to_le_bytes()));
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn graft_errors_map_to_typed_wire_errors() {
        let stale = GraftError::bad_handle("entry", 5);
        assert_eq!(
            WireError::from(&stale),
            WireError::StaleHandle { kind: 0, id: 5 }
        );
        let quota = GraftError::QuotaExceeded {
            resource: "fuel",
            limit: 1000,
        };
        assert!(matches!(
            WireError::from(&quota),
            WireError::QuotaExceeded { limit: 1000, .. }
        ));
        let trap: GraftError = Trap::DivByZero.into();
        match WireError::from(&trap) {
            WireError::Trap { kind, .. } => {
                assert_eq!(kind, graft_api::TrapKind::DivByZero as u8)
            }
            other => panic!("{other:?}"),
        }
    }
}
