//! A lock-free bounded MPMC completion queue.
//!
//! Drain workers push finished [`Completion`](crate::server)s here and
//! the pump thread pops them to run the serial completion half
//! (accounting, ladder ticks, reply encode). The queue is the only
//! data-plane channel from workers back to the writer side, so it must
//! be lock-free: a worker blocked on a mutex while holding a hot
//! `ShardHandle` would serialize the very plane the workers exist to
//! parallelize.
//!
//! The design is the classic bounded-array MPMC queue (Vyukov): each
//! cell carries a sequence stamp; producers claim the tail with a CAS
//! and publish by storing `pos + 1` into the stamp, consumers claim
//! the head and recycle the cell by storing `pos + capacity`. Stamps
//! make every claim/publish pair a two-word handshake with no shared
//! lock and no ABA hazard, at the cost of a fixed capacity — which is
//! exactly what we want, because the admission plane already bounds
//! in-flight work: a full completion queue is a transient condition
//! (the pump is mid-pop), never a steady state.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cache-line padding so the producer and consumer cursors do not
/// false-share.
#[repr(align(64))]
struct Cursor(AtomicUsize);

struct Slot<T> {
    /// The Vyukov sequence stamp. `stamp == pos` ⇒ free for the
    /// producer claiming `pos`; `stamp == pos + 1` ⇒ holds the value
    /// for the consumer claiming `pos`.
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free multi-producer multi-consumer queue.
pub struct CompletionQueue<T> {
    mask: usize,
    slots: Box<[Slot<T>]>,
    /// Producer cursor (next position to claim for a push).
    tail: Cursor,
    /// Consumer cursor (next position to claim for a pop).
    head: Cursor,
}

// Safety: values are moved in through `push` and out through `pop`
// with the stamp protocol guaranteeing exclusive access to each slot
// between the claiming thread's CAS and its publishing store. Only
// `T: Send` is required — `T` itself is never shared, only handed off.
unsafe impl<T: Send> Send for CompletionQueue<T> {}
unsafe impl<T: Send> Sync for CompletionQueue<T> {}

impl<T> CompletionQueue<T> {
    /// A queue holding at least `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        CompletionQueue {
            mask: cap - 1,
            slots,
            tail: Cursor(AtomicUsize::new(0)),
            head: Cursor(AtomicUsize::new(0)),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate occupancy (racy by nature; exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a value; `Err(value)` hands it back when the ring is
    /// full. Lock-free: a stalled peer cannot block this call, only
    /// fail it.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == pos {
                // Free slot: claim the position.
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Exclusive until the stamp store publishes.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if stamp.wrapping_sub(pos) as isize > 0 {
                // Someone already produced past us: reload the tail.
                pos = self.tail.0.load(Ordering::Relaxed);
            } else {
                // stamp < pos: the consumer a full lap behind has not
                // freed this slot — the ring is full.
                return Err(value);
            }
        }
    }

    /// Pops the oldest value, if any.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let stamp = slot.stamp.load(Ordering::Acquire);
            let expect = pos.wrapping_add(1);
            if stamp == expect {
                // Published value: claim the position.
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Recycle for the producer one lap ahead.
                        slot.stamp
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if stamp.wrapping_sub(expect) as isize > 0 {
                // Another consumer already took it: reload the head.
                pos = self.head.0.load(Ordering::Relaxed);
            } else {
                // stamp == pos: the producer has not published here.
                return None;
            }
        }
    }
}

impl<T> Drop for CompletionQueue<T> {
    fn drop(&mut self) {
        // Drain leftover values so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_thread() {
        let q = CompletionQueue::with_capacity(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert_eq!(q.push(99), Err(99), "ring of 8 is full after 8 pushes");
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        // The ring recycles: push/pop across the wrap boundary.
        for lap in 0..5 {
            for i in 0..6 {
                q.push(lap * 10 + i).unwrap();
            }
            for i in 0..6 {
                assert_eq!(q.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let q = CompletionQueue::<u8>::with_capacity(5);
        assert_eq!(q.capacity(), 8);
        let q = CompletionQueue::<u8>::with_capacity(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn leftover_values_drop_with_the_queue() {
        // Arc counts double as drop counts: if the queue leaks its
        // remaining values the strong count stays above 1.
        let token = Arc::new(());
        {
            let q = CompletionQueue::with_capacity(4);
            for _ in 0..3 {
                q.push(Arc::clone(&token)).unwrap();
            }
            assert_eq!(Arc::strong_count(&token), 4);
            assert!(q.pop().is_some());
        }
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn multi_producer_single_consumer_delivers_every_value_once() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 5_000;
        let q = Arc::new(CompletionQueue::with_capacity(64));
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = p * PER + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut seen = vec![false; (PRODUCERS * PER) as usize];
        let mut got = 0u64;
        while got < PRODUCERS * PER {
            match q.pop() {
                Some(v) => {
                    assert!(!seen[v as usize], "value {v} delivered twice");
                    seen[v as usize] = true;
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(q.pop(), None);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // MPMC guarantees per-producer FIFO: with one consumer, each
        // producer's values must arrive in its own submission order.
        const PRODUCERS: usize = 3;
        const PER: usize = 2_000;
        let q = Arc::new(CompletionQueue::with_capacity(16));
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = (p, i);
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut next = [0usize; PRODUCERS];
        let mut got = 0;
        while got < PRODUCERS * PER {
            match q.pop() {
                Some((p, i)) => {
                    assert_eq!(i, next[p], "producer {p} reordered");
                    next[p] += 1;
                    got += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
    }
}
