//! The drain-worker plane: real threads behind `take_handles`.
//!
//! [`GraftServer::spawn_workers`] moves the server's [`ShardHandle`]s
//! onto N OS threads — one worker per shard, exactly the ownership
//! split `ShardedHost::take_handles` was designed for. Each worker
//! loops the invoke half ([`invoke_shard`](crate::server)): take a
//! steal-aware batch for its shard, run the grafts on its own
//! thread-confined handle, and push completions into the shared
//! lock-free [`CompletionQueue`](crate::cq::CompletionQueue). The pump
//! thread keeps sole ownership of admission and completion processing
//! ([`GraftServer::reap`]), so no tenant or connection state is ever
//! touched from two threads.
//!
//! State partition, for the record:
//! * **epoch-published** (host control plane): installs, detaches,
//!   re-admissions — workers observe them at their next handle sync;
//! * **atomic** (shared planes): run queues, completion queue, ledger
//!   scoreboards, the shutdown flag;
//! * **thread-confined**: each worker's `ShardHandle` (graft replicas,
//!   warm state), and everything else in `GraftServer` on the pump.
//!
//! Shutdown is cooperative and loss-free: [`WorkerPlane::join`] raises
//! the flag, and a worker exits only once the flag is up *and* the
//! plane is drained, so every admitted job is invoked before the
//! handles come home.

use crate::server::{invoke_shard, GraftServer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Counters one drain worker publishes when it exits.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// The shard (and handle) this worker owned.
    pub shard: usize,
    /// Jobs this worker invoked.
    pub served: u64,
    /// Non-empty batches taken.
    pub batches: u64,
    /// Empty polls (spins) while waiting for work.
    pub idle_spins: u64,
}

/// A running set of drain workers. Must be [`join`](Self::join)ed back
/// into the server before any single-threaded executor path
/// (`drain`/`drain_all`) is used again.
pub struct WorkerPlane {
    threads: Vec<JoinHandle<(graft_kernel::ShardHandle, WorkerStats)>>,
    shutdown: Arc<AtomicBool>,
}

impl GraftServer {
    /// Spawns one drain worker per shard. While the plane runs, this
    /// thread (the pump) keeps feeding admission via
    /// [`pump`](Self::pump) and must call [`reap`](Self::reap) to
    /// process completions; `drain`/`drain_all` would panic (the
    /// handles are on the workers).
    pub fn spawn_workers(&mut self) -> WorkerPlane {
        let (handles, queues, completions, fuel_metered) = self.worker_parts();
        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = handles
            .into_iter()
            .map(|mut handle| {
                let queues = queues.clone();
                let completions = Arc::clone(&completions);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    let shard = handle.shard();
                    let mut stats = WorkerStats {
                        shard,
                        ..WorkerStats::default()
                    };
                    let mut empties = 0u32;
                    loop {
                        let n = invoke_shard(shard, &mut handle, &queues, &completions);
                        if n > 0 {
                            stats.served += n as u64;
                            stats.batches += 1;
                            empties = 0;
                            // Fuel metering reads the shared ledgers on
                            // the pump; keep them no staler than one
                            // batch.
                            if fuel_metered {
                                handle.flush();
                            }
                            continue;
                        }
                        // Exit only when asked *and* drained: nothing
                        // admitted is ever abandoned. (total_depth also
                        // covers other shards' queues — with stealing
                        // on, this worker can still help finish them.)
                        if shutdown.load(Ordering::Acquire) && queues.total_depth() == 0 {
                            break;
                        }
                        stats.idle_spins += 1;
                        empties += 1;
                        if empties < 64 {
                            std::thread::yield_now();
                        } else {
                            // Long idle: back off so a 1-core CI box
                            // still schedules the pump promptly.
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                    handle.flush();
                    (handle, stats)
                })
            })
            .collect();
        WorkerPlane { threads, shutdown }
    }
}

impl WorkerPlane {
    /// How many workers are running.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Signals shutdown, waits for every worker to drain and exit,
    /// returns the handles to the server, and processes any remaining
    /// completions. Returns the per-worker counters (also published as
    /// `server.workers.*` telemetry).
    pub fn join(self, server: &mut GraftServer) -> Vec<WorkerStats> {
        self.shutdown.store(true, Ordering::Release);
        let mut returned: Vec<(graft_kernel::ShardHandle, WorkerStats)> = self
            .threads
            .into_iter()
            .map(|t| t.join().expect("drain worker panicked"))
            .collect();
        returned.sort_by_key(|(handle, _)| handle.shard());
        let mut stats = Vec::with_capacity(returned.len());
        let mut handles = Vec::with_capacity(returned.len());
        for (handle, s) in returned {
            handles.push(handle);
            stats.push(s);
        }
        server.restore_handles(handles);
        // Everything the workers invoked is now processed serially.
        server.reap();
        graft_telemetry::counter!("server.workers").add(stats.len() as u64);
        for s in &stats {
            graft_telemetry::counter!("server.workers.served").add(s.served);
            graft_telemetry::counter!("server.workers.batches").add(s.batches);
            graft_telemetry::counter!("server.workers.idle_spins").add(s.idle_spins);
        }
        stats
    }
}
