//! Runtime traps and framework errors.

use std::fmt;

/// A fault raised while a graft was executing.
///
/// Traps are the *protection mechanism doing its job*: a safe technology
/// converts what would be memory corruption under unsafe C into one of
/// these values, which the kernel can handle by unloading the graft.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// An array or region access outside its bounds (safe-language check).
    OutOfBounds {
        /// Region or array that was accessed.
        region: String,
        /// The offending index.
        index: i64,
        /// The region length.
        len: usize,
    },
    /// A pointer-chasing load through the NIL sentinel (Modula-3's
    /// implicit NIL check; see the paper's Linux discussion in §5.4).
    NilDeref {
        /// Region in which the NIL chase happened.
        region: String,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// The graft exhausted its execution budget ("fuel") and was preempted
    /// (the paper's requirement that extensions not monopolize the CPU).
    FuelExhausted,
    /// The SFI load-time verifier or runtime sandbox rejected an access.
    SfiViolation(String),
    /// A dynamic type error in an interpreted technology (bytecode
    /// verifier escape hatch or script coercion failure).
    TypeError(String),
    /// Call stack exceeded the engine's configured limit.
    StackOverflow,
    /// The graft called an entry point or function that does not exist.
    NoSuchFunction(String),
    /// A pre-bound handle (an `EntryId` or `RegionId`) was presented to an
    /// engine that never issued it, or is out of range for the loaded
    /// graft. Stale handles must trap deterministically — never index
    /// out of bounds, never panic.
    BadHandle {
        /// Which namespace the handle belongs to: `"entry"` or `"region"`.
        kind: &'static str,
        /// The raw handle value.
        id: u32,
    },
    /// An explicit abort raised by the graft itself.
    Abort(i64),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBounds { region, index, len } => {
                write!(f, "out-of-bounds access: {region}[{index}] (len {len})")
            }
            Trap::NilDeref { region } => write!(f, "NIL dereference in region {region}"),
            Trap::DivByZero => f.write_str("integer division by zero"),
            Trap::FuelExhausted => f.write_str("execution budget exhausted (preempted)"),
            Trap::SfiViolation(msg) => write!(f, "SFI violation: {msg}"),
            Trap::TypeError(msg) => write!(f, "type error: {msg}"),
            Trap::StackOverflow => f.write_str("graft call stack overflow"),
            Trap::NoSuchFunction(name) => write!(f, "no such function `{name}`"),
            Trap::BadHandle { kind, id } => {
                write!(f, "stale or unknown {kind} handle {id}")
            }
            Trap::Abort(code) => write!(f, "graft aborted with code {code}"),
        }
    }
}

/// Any error produced while compiling, verifying, loading, or running a
/// graft.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraftError {
    /// The graft source failed to compile (lex/parse/type error).
    Compile(String),
    /// Load-time verification rejected the compiled graft.
    Verify(String),
    /// The requested technology has no implementation of this graft (for
    /// example, no Tickle source was supplied).
    Unavailable {
        /// Name of the graft.
        graft: String,
        /// What was missing.
        missing: String,
    },
    /// The graft was invoked with the wrong number of arguments.
    BadArity {
        /// Entry point name.
        entry: String,
        /// Number of parameters the entry declares.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// No region with the given name exists in the graft's region set.
    NoSuchRegion(String),
    /// A kernel-side region access was out of bounds (marshalling bug).
    RegionRange {
        /// Region name.
        region: String,
        /// Offending index.
        index: usize,
        /// Region length.
        len: usize,
    },
    /// The graft trapped while executing.
    Trap(Trap),
    /// The upcall transport to a user-level server failed.
    UpcallFailed(String),
    /// An admission-control layer refused the request because a
    /// configured per-tenant quota is exhausted (installed grafts,
    /// cumulative fuel, …). Typed so callers — and the graft-server
    /// wire protocol — can distinguish "you are over budget" from a
    /// runtime fault; quota refusals are never silent drops.
    QuotaExceeded {
        /// Which quota ran out (`"grafts"`, `"fuel"`, …).
        resource: &'static str,
        /// The configured ceiling that was hit.
        limit: u64,
    },
    /// The serving layer is at its in-flight capacity and cannot accept
    /// more work right now; the request was rejected, not queued.
    Overloaded {
        /// Requests currently in flight.
        in_flight: u64,
        /// The configured in-flight ceiling.
        cap: u64,
    },
}

impl GraftError {
    /// Returns the trap if this error is a runtime trap.
    pub fn as_trap(&self) -> Option<&Trap> {
        match self {
            GraftError::Trap(t) => Some(t),
            _ => None,
        }
    }

    /// The deterministic error for a stale or out-of-range handle.
    pub fn bad_handle(kind: &'static str, id: u32) -> GraftError {
        GraftError::Trap(Trap::BadHandle { kind, id })
    }
}

impl fmt::Display for GraftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraftError::Compile(msg) => write!(f, "compile error: {msg}"),
            GraftError::Verify(msg) => write!(f, "verification failed: {msg}"),
            GraftError::Unavailable { graft, missing } => {
                write!(f, "graft `{graft}` unavailable: missing {missing}")
            }
            GraftError::BadArity {
                entry,
                expected,
                got,
            } => write!(f, "entry `{entry}` expects {expected} args, got {got}"),
            GraftError::NoSuchRegion(name) => write!(f, "no such region `{name}`"),
            GraftError::RegionRange { region, index, len } => {
                write!(f, "kernel access out of range: {region}[{index}] (len {len})")
            }
            GraftError::Trap(t) => write!(f, "graft trapped: {t}"),
            GraftError::UpcallFailed(msg) => write!(f, "upcall failed: {msg}"),
            GraftError::QuotaExceeded { resource, limit } => {
                write!(f, "quota exceeded: {resource} (limit {limit})")
            }
            GraftError::Overloaded { in_flight, cap } => {
                write!(f, "overloaded: {in_flight} requests in flight (cap {cap})")
            }
        }
    }
}

impl std::error::Error for GraftError {}

impl From<Trap> for GraftError {
    fn from(t: Trap) -> Self {
        GraftError::Trap(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_converts_into_graft_error() {
        let err: GraftError = Trap::DivByZero.into();
        assert_eq!(err.as_trap(), Some(&Trap::DivByZero));
    }

    #[test]
    fn display_messages_are_informative() {
        let err = GraftError::Trap(Trap::OutOfBounds {
            region: "hotlist".into(),
            index: 99,
            len: 64,
        });
        let msg = err.to_string();
        assert!(msg.contains("hotlist"));
        assert!(msg.contains("99"));
        assert!(msg.contains("64"));
    }

    #[test]
    fn compile_errors_are_not_traps() {
        let err = GraftError::Compile("unexpected token".into());
        assert!(err.as_trap().is_none());
    }

    #[test]
    fn admission_errors_are_typed_and_informative() {
        let quota = GraftError::QuotaExceeded {
            resource: "grafts",
            limit: 4,
        };
        assert!(quota.as_trap().is_none());
        let msg = quota.to_string();
        assert!(msg.contains("grafts") && msg.contains('4'), "{msg}");
        let busy = GraftError::Overloaded {
            in_flight: 64,
            cap: 64,
        };
        assert!(busy.as_trap().is_none());
        let msg = busy.to_string();
        assert!(msg.contains("64") && msg.contains("overloaded"), "{msg}");
    }

    #[test]
    fn bad_handle_is_a_deterministic_trap() {
        let err = GraftError::bad_handle("entry", 7);
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "entry", id: 7 })
        ));
        let msg = err.to_string();
        assert!(msg.contains("entry"));
        assert!(msg.contains('7'));
    }
}
