//! Host-side vocabulary for multi-tenant extension hosting.
//!
//! The kernel crate (`graft-kernel`) hosts *chains* of grafts at typed
//! attach points. The types here are the shared contract between the
//! host and everything that observes it: the per-invocation [`Verdict`]
//! a chained graft returns, the coarse [`TrapKind`] taxonomy used for
//! per-graft accounting, and the [`GraftLedger`] that feeds the
//! quarantine supervisor.
//!
//! They live in `graft-api` (not the kernel crate) so that engines,
//! substrates, and report code can speak them without depending on the
//! host implementation.

use crate::error::Trap;
use std::fmt;

/// The outcome of asking one chained graft for its opinion.
///
/// Attach points dispatch through an ordered chain. Each graft either
/// declines (`Continue` — ask the next graft, or fall back to the
/// built-in kernel policy when the chain is exhausted) or decides
/// (`Override` — use this value, stop walking the chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No opinion; defer to the rest of the chain or the kernel default.
    Continue,
    /// A decision: the attach point interprets the payload (a victim
    /// page, a read-ahead block, a candidate index, a flush count, ...).
    Override(i64),
}

impl Verdict {
    /// True when this verdict decides the dispatch.
    pub fn is_override(&self) -> bool {
        matches!(self, Verdict::Override(_))
    }

    /// The payload of an `Override`, if any.
    pub fn value(&self) -> Option<i64> {
        match self {
            Verdict::Override(v) => Some(*v),
            Verdict::Continue => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Continue => f.write_str("continue"),
            Verdict::Override(v) => write!(f, "override({v})"),
        }
    }
}

/// Coarse classification of a [`Trap`] for fixed-size accounting.
///
/// The ledger counts traps by kind rather than by value so that a
/// hostile graft cannot inflate kernel memory by trapping with a
/// different payload each time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum TrapKind {
    /// [`Trap::OutOfBounds`].
    OutOfBounds = 0,
    /// [`Trap::NilDeref`].
    NilDeref = 1,
    /// [`Trap::DivByZero`].
    DivByZero = 2,
    /// [`Trap::FuelExhausted`].
    FuelExhausted = 3,
    /// [`Trap::SfiViolation`].
    SfiViolation = 4,
    /// [`Trap::TypeError`].
    TypeError = 5,
    /// [`Trap::StackOverflow`].
    StackOverflow = 6,
    /// [`Trap::NoSuchFunction`].
    NoSuchFunction = 7,
    /// [`Trap::BadHandle`].
    BadHandle = 8,
    /// [`Trap::Abort`].
    Abort = 9,
}

impl TrapKind {
    /// Number of kinds; the length of [`TrapCounts`]' backing array.
    pub const COUNT: usize = 10;

    /// All kinds, in `repr` order.
    pub const ALL: [TrapKind; TrapKind::COUNT] = [
        TrapKind::OutOfBounds,
        TrapKind::NilDeref,
        TrapKind::DivByZero,
        TrapKind::FuelExhausted,
        TrapKind::SfiViolation,
        TrapKind::TypeError,
        TrapKind::StackOverflow,
        TrapKind::NoSuchFunction,
        TrapKind::BadHandle,
        TrapKind::Abort,
    ];

    /// A short stable name, used as a telemetry/report label.
    pub fn name(&self) -> &'static str {
        match self {
            TrapKind::OutOfBounds => "out_of_bounds",
            TrapKind::NilDeref => "nil_deref",
            TrapKind::DivByZero => "div_by_zero",
            TrapKind::FuelExhausted => "fuel_exhausted",
            TrapKind::SfiViolation => "sfi_violation",
            TrapKind::TypeError => "type_error",
            TrapKind::StackOverflow => "stack_overflow",
            TrapKind::NoSuchFunction => "no_such_function",
            TrapKind::BadHandle => "bad_handle",
            TrapKind::Abort => "abort",
        }
    }
}

impl Trap {
    /// The coarse kind of this trap, for ledger accounting.
    pub fn kind(&self) -> TrapKind {
        match self {
            Trap::OutOfBounds { .. } => TrapKind::OutOfBounds,
            Trap::NilDeref { .. } => TrapKind::NilDeref,
            Trap::DivByZero => TrapKind::DivByZero,
            Trap::FuelExhausted => TrapKind::FuelExhausted,
            Trap::SfiViolation(_) => TrapKind::SfiViolation,
            Trap::TypeError(_) => TrapKind::TypeError,
            Trap::StackOverflow => TrapKind::StackOverflow,
            Trap::NoSuchFunction(_) => TrapKind::NoSuchFunction,
            Trap::BadHandle { .. } => TrapKind::BadHandle,
            Trap::Abort(_) => TrapKind::Abort,
        }
    }
}

/// Fixed-size per-kind trap counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrapCounts {
    counts: [u64; TrapKind::COUNT],
}

impl TrapCounts {
    /// Record one trap of the given kind.
    pub fn record(&mut self, kind: TrapKind) {
        self.counts[kind as usize] += 1;
    }

    /// Record `n` traps of the given kind (bulk merge of per-shard
    /// ledgers into a shared total).
    pub fn add(&mut self, kind: TrapKind, n: u64) {
        self.counts[kind as usize] += n;
    }

    /// Number of traps of one kind.
    pub fn get(&self, kind: TrapKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total traps across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterate over `(kind, count)` pairs with nonzero counts.
    pub fn nonzero(&self) -> impl Iterator<Item = (TrapKind, u64)> + '_ {
        TrapKind::ALL
            .iter()
            .map(|&k| (k, self.get(k)))
            .filter(|&(_, n)| n > 0)
    }
}

/// Per-graft resource accounting, maintained by the host on every
/// dispatch through the graft.
///
/// This is the runtime half of the safety story: load-time checks keep a
/// graft from corrupting memory, the ledger keeps it from monopolizing
/// the processor or failing silently forever. The quarantine supervisor
/// reads the ledger after every invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraftLedger {
    /// Completed invocations (successful or trapped).
    pub invocations: u64,
    /// Invocations that ended in a runtime trap.
    pub traps: u64,
    /// Cumulative wall-clock nanoseconds spent inside the graft.
    pub cum_ns: u64,
    /// Cumulative fuel consumed, when the engine meters it.
    pub fuel_used: u64,
    /// Traps broken down by [`TrapKind`].
    pub trap_counts: TrapCounts,
}

impl GraftLedger {
    /// Record one successful invocation.
    pub fn record_ok(&mut self, ns: u64, fuel: Option<u64>) {
        self.invocations += 1;
        self.cum_ns += ns;
        self.fuel_used += fuel.unwrap_or(0);
    }

    /// Record one trapped invocation.
    pub fn record_trap(&mut self, ns: u64, fuel: Option<u64>, trap: &Trap) {
        self.invocations += 1;
        self.traps += 1;
        self.cum_ns += ns;
        self.fuel_used += fuel.unwrap_or(0);
        self.trap_counts.record(trap.kind());
    }

    /// Mean nanoseconds per invocation, or 0 for an idle ledger.
    pub fn mean_ns(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cum_ns as f64 / self.invocations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_trap_maps_to_its_kind() {
        let traps: Vec<Trap> = vec![
            Trap::OutOfBounds {
                region: "r".into(),
                index: 1,
                len: 0,
            },
            Trap::NilDeref { region: "r".into() },
            Trap::DivByZero,
            Trap::FuelExhausted,
            Trap::SfiViolation("x".into()),
            Trap::TypeError("x".into()),
            Trap::StackOverflow,
            Trap::NoSuchFunction("f".into()),
            Trap::BadHandle { kind: "entry", id: 0 },
            Trap::Abort(1),
        ];
        let kinds: Vec<TrapKind> = traps.iter().map(Trap::kind).collect();
        assert_eq!(kinds, TrapKind::ALL.to_vec());
        // Names are distinct (they become telemetry labels).
        let mut names: Vec<&str> = TrapKind::ALL.iter().map(TrapKind::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TrapKind::COUNT);
    }

    #[test]
    fn ledger_accumulates_ok_and_trap() {
        let mut ledger = GraftLedger::default();
        ledger.record_ok(100, Some(7));
        ledger.record_trap(50, None, &Trap::DivByZero);
        ledger.record_trap(50, Some(3), &Trap::FuelExhausted);
        assert_eq!(ledger.invocations, 3);
        assert_eq!(ledger.traps, 2);
        assert_eq!(ledger.cum_ns, 200);
        assert_eq!(ledger.fuel_used, 10);
        assert_eq!(ledger.trap_counts.get(TrapKind::DivByZero), 1);
        assert_eq!(ledger.trap_counts.get(TrapKind::FuelExhausted), 1);
        assert_eq!(ledger.trap_counts.total(), 2);
        assert!((ledger.mean_ns() - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(ledger.trap_counts.nonzero().count(), 2);
    }

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Override(5).is_override());
        assert_eq!(Verdict::Override(5).value(), Some(5));
        assert!(!Verdict::Continue.is_override());
        assert_eq!(Verdict::Continue.value(), None);
        assert_eq!(Verdict::Override(-1).to_string(), "override(-1)");
        assert_eq!(Verdict::Continue.to_string(), "continue");
    }
}
