//! Portable graft packages.
//!
//! A [`GraftSpec`] is what an application vendor ships: the graft's
//! identity, its region ABI, its entry points, and its source in each
//! technology's input language. The `GraftManager` in `graft-core`
//! compiles the appropriate source for the technology the kernel selects.

use std::sync::Arc;

use crate::engine::NativeGraft;
use crate::region::RegionSpec;
use crate::taxonomy::{GraftClass, Motivation};

/// One callable entry point exported by a graft.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryPoint {
    /// Exported name.
    pub name: String,
    /// Number of scalar `i64` parameters.
    pub arity: usize,
}

impl EntryPoint {
    /// Builds an entry point description.
    pub fn new(name: &str, arity: usize) -> Self {
        EntryPoint {
            name: name.to_string(),
            arity,
        }
    }
}

/// Factory producing a fresh native (Rust) implementation of a graft.
pub type NativeFactory = Box<dyn Fn() -> Box<dyn NativeGraft> + Send + Sync>;

/// Shared, clonable handle to a native factory.
///
/// Stored in [`GraftSpec`] (and threaded into `NativeEngine`) as an
/// `Arc` so a sharded host can mint one fresh graft instance per worker
/// shard from the same factory.
pub type SharedNativeFactory = Arc<dyn Fn() -> Box<dyn NativeGraft> + Send + Sync>;

/// A technology-independent graft package.
pub struct GraftSpec {
    /// Human-readable graft name.
    pub name: String,
    /// Structural class in the paper's taxonomy.
    pub class: GraftClass,
    /// Why an application would install this graft.
    pub motivation: Motivation,
    /// Shared-memory ABI between kernel and graft.
    pub regions: Vec<RegionSpec>,
    /// Exported entry points.
    pub entries: Vec<EntryPoint>,
    /// Grail source (compiled technologies: unchecked, safe, SFI,
    /// bytecode).
    pub grail: Option<String>,
    /// Tickle source (script technology).
    pub tickle: Option<String>,
    /// Native Rust implementation factory.
    pub native: Option<SharedNativeFactory>,
}

impl GraftSpec {
    /// Starts a spec with the mandatory identity fields; sources are
    /// attached with the builder methods.
    pub fn new(name: &str, class: GraftClass, motivation: Motivation) -> Self {
        GraftSpec {
            name: name.to_string(),
            class,
            motivation,
            regions: Vec::new(),
            entries: Vec::new(),
            grail: None,
            tickle: None,
            native: None,
        }
    }

    /// Adds a region to the ABI.
    pub fn region(mut self, spec: RegionSpec) -> Self {
        self.regions.push(spec);
        self
    }

    /// Declares an entry point.
    pub fn entry(mut self, name: &str, arity: usize) -> Self {
        self.entries.push(EntryPoint::new(name, arity));
        self
    }

    /// Attaches Grail source.
    pub fn with_grail(mut self, source: &str) -> Self {
        self.grail = Some(source.to_string());
        self
    }

    /// Attaches Tickle source.
    pub fn with_tickle(mut self, source: &str) -> Self {
        self.tickle = Some(source.to_string());
        self
    }

    /// Attaches a native implementation factory.
    pub fn with_native(mut self, factory: NativeFactory) -> Self {
        self.native = Some(Arc::from(factory));
        self
    }

    /// Looks up a declared entry point.
    pub fn find_entry(&self, name: &str) -> Option<&EntryPoint> {
        self.entries.iter().find(|e| e.name == name)
    }
}

impl std::fmt::Debug for GraftSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraftSpec")
            .field("name", &self.name)
            .field("class", &self.class)
            .field("motivation", &self.motivation)
            .field("regions", &self.regions)
            .field("entries", &self.entries)
            .field("grail", &self.grail.as_ref().map(|s| s.len()))
            .field("tickle", &self.tickle.as_ref().map(|s| s.len()))
            .field("native", &self.native.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_fields() {
        let spec = GraftSpec::new("probe", GraftClass::BlackBox, Motivation::Functionality)
            .region(RegionSpec::data("io", 8))
            .entry("run", 2)
            .with_grail("fn run(a: int, b: int) -> int { return a + b; }");
        assert_eq!(spec.regions.len(), 1);
        assert_eq!(spec.find_entry("run").unwrap().arity, 2);
        assert!(spec.find_entry("missing").is_none());
        assert!(spec.grail.is_some());
        assert!(spec.tickle.is_none());
    }

    #[test]
    fn debug_does_not_dump_sources() {
        let spec = GraftSpec::new("p", GraftClass::Stream, Motivation::Performance)
            .with_grail(&"x".repeat(10_000));
        let dbg = format!("{spec:?}");
        assert!(dbg.len() < 1000, "debug output should summarize sources");
    }
}
