//! Extension technologies and trust models (Section 4 of the paper).

use std::fmt;

/// How the kernel protects itself from a graft (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrustModel {
    /// No protection at all: the graft is trusted (the MS-DOS / unsafe-C
    /// model).
    Unprotected,
    /// The graft runs in a separate address space and is reached by upcall
    /// (the microkernel / user-level-server model, Section 4.1).
    HardwareProtection,
    /// The graft runs in the kernel address space but the instructions it
    /// may execute are restricted by the language, the compiler, or binary
    /// patching (Section 4.2).
    SoftwareProtection,
    /// The graft is run by an in-kernel interpreter that implements only
    /// safe operations (Section 4.3).
    Interpretation,
}

impl fmt::Display for TrustModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrustModel::Unprotected => "unprotected",
            TrustModel::HardwareProtection => "hardware protection",
            TrustModel::SoftwareProtection => "software protection",
            TrustModel::Interpretation => "interpretation",
        };
        f.write_str(s)
    }
}

/// An extension technology evaluated by the paper, mapped onto this
/// reproduction's engines.
///
/// The paper's technologies and our analogues:
///
/// | Paper            | Variant                     | Engine                              |
/// |------------------|-----------------------------|-------------------------------------|
/// | C (`gcc -O`)     | [`CompiledUnchecked`]       | threaded code, no checks            |
/// | Modula-3         | [`SafeCompiled`]            | threaded code + bounds/NIL checks   |
/// | Omniware (SFI)   | [`Sfi`]                     | threaded code + mask instrumentation|
/// | Java             | [`Bytecode`]                | stack bytecode interpreter          |
/// | Tcl              | [`Script`]                  | string-substitution interpreter     |
/// | user-level server| [`UserLevel`]               | cross-thread upcall wrapper         |
/// | (upper bound)    | [`RustNative`]              | hand-written Rust                   |
///
/// [`CompiledUnchecked`]: Technology::CompiledUnchecked
/// [`SafeCompiled`]: Technology::SafeCompiled
/// [`Sfi`]: Technology::Sfi
/// [`Bytecode`]: Technology::Bytecode
/// [`Script`]: Technology::Script
/// [`UserLevel`]: Technology::UserLevel
/// [`RustNative`]: Technology::RustNative
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technology {
    /// Hand-written Rust compiled into the host binary. Not one of the
    /// paper's downloadable technologies; reported as a hardware upper
    /// bound on what "compiled into the kernel" can do on this machine.
    RustNative,
    /// The paper's unsafe C baseline: graft source compiled to threaded
    /// code with every safety check disabled. All normalized numbers are
    /// relative to this technology, as in the paper.
    CompiledUnchecked,
    /// The paper's Modula-3: same compiled code plus array-bounds checks,
    /// NIL checks on pointer-chasing loads, and defined overflow.
    SafeCompiled,
    /// The paper's Omniware: same compiled code run inside a sandbox
    /// arena, with explicit address-mask instructions inserted before
    /// every write (and optionally every read) and a load-time verifier.
    Sfi,
    /// The paper's Java: a stack bytecode interpreter with boxed values.
    Bytecode,
    /// The paper's Tcl: direct source interpretation, everything a string.
    Script,
    /// The paper's user-level server: a graft hosted behind an upcall
    /// boundary (hardware protection).
    UserLevel,
}

impl Technology {
    /// Every technology, in the paper's comparison order.
    pub const ALL: [Technology; 7] = [
        Technology::RustNative,
        Technology::CompiledUnchecked,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Bytecode,
        Technology::Script,
        Technology::UserLevel,
    ];

    /// The downloadable technologies the paper's tables compare (excludes
    /// the Rust upper bound and the upcall wrapper, which Figure 1 treats
    /// parametrically).
    pub const TABLE_ORDER: [Technology; 5] = [
        Technology::CompiledUnchecked,
        Technology::Bytecode,
        Technology::SafeCompiled,
        Technology::Sfi,
        Technology::Script,
    ];

    /// Which trust model protects the kernel under this technology.
    pub fn trust_model(self) -> TrustModel {
        match self {
            Technology::RustNative | Technology::CompiledUnchecked => TrustModel::Unprotected,
            Technology::SafeCompiled | Technology::Sfi => TrustModel::SoftwareProtection,
            Technology::Bytecode | Technology::Script => TrustModel::Interpretation,
            Technology::UserLevel => TrustModel::HardwareProtection,
        }
    }

    /// The 1996 technology this engine stands in for.
    pub fn paper_name(self) -> &'static str {
        match self {
            Technology::RustNative => "(in-kernel native)",
            Technology::CompiledUnchecked => "C",
            Technology::SafeCompiled => "Modula-3",
            Technology::Sfi => "Omniware",
            Technology::Bytecode => "Java",
            Technology::Script => "Tcl",
            Technology::UserLevel => "user-level server",
        }
    }

    /// Whether the kernel can preempt a runaway graft under this
    /// technology without special compiler support.
    ///
    /// Interpreted and upcall technologies meter execution (fuel /
    /// time-slicing); compiled in-kernel code must be instrumented.
    pub fn preemptible(self) -> bool {
        !matches!(
            self,
            Technology::RustNative | Technology::CompiledUnchecked
        )
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technology::RustNative => "rust-native",
            Technology::CompiledUnchecked => "compiled-unchecked",
            Technology::SafeCompiled => "safe-compiled",
            Technology::Sfi => "sfi",
            Technology::Bytecode => "bytecode",
            Technology::Script => "script",
            Technology::UserLevel => "user-level",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Technology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rust-native" | "native" => Ok(Technology::RustNative),
            "compiled-unchecked" | "c" | "unchecked" => Ok(Technology::CompiledUnchecked),
            "safe-compiled" | "modula-3" | "m3" | "safe" => Ok(Technology::SafeCompiled),
            "sfi" | "omniware" => Ok(Technology::Sfi),
            "bytecode" | "java" => Ok(Technology::Bytecode),
            "script" | "tcl" | "tickle" => Ok(Technology::Script),
            "user-level" | "upcall" => Ok(Technology::UserLevel),
            other => Err(format!("unknown technology `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trust_models_match_paper_sections() {
        assert_eq!(
            Technology::CompiledUnchecked.trust_model(),
            TrustModel::Unprotected
        );
        assert_eq!(
            Technology::SafeCompiled.trust_model(),
            TrustModel::SoftwareProtection
        );
        assert_eq!(Technology::Sfi.trust_model(), TrustModel::SoftwareProtection);
        assert_eq!(Technology::Bytecode.trust_model(), TrustModel::Interpretation);
        assert_eq!(Technology::Script.trust_model(), TrustModel::Interpretation);
        assert_eq!(
            Technology::UserLevel.trust_model(),
            TrustModel::HardwareProtection
        );
    }

    #[test]
    fn from_str_round_trips_display() {
        for tech in Technology::ALL {
            let parsed: Technology = tech.to_string().parse().unwrap();
            assert_eq!(parsed, tech);
        }
    }

    #[test]
    fn from_str_accepts_paper_aliases() {
        assert_eq!("m3".parse::<Technology>().unwrap(), Technology::SafeCompiled);
        assert_eq!("java".parse::<Technology>().unwrap(), Technology::Bytecode);
        assert_eq!("tcl".parse::<Technology>().unwrap(), Technology::Script);
        assert_eq!("omniware".parse::<Technology>().unwrap(), Technology::Sfi);
        assert!("fortran".parse::<Technology>().is_err());
    }

    #[test]
    fn unchecked_compiled_code_is_not_preemptible() {
        assert!(!Technology::CompiledUnchecked.preemptible());
        assert!(Technology::Bytecode.preemptible());
        assert!(Technology::UserLevel.preemptible());
    }
}
