//! Shared vocabulary for the graftbench extension framework.
//!
//! This crate defines the types that every other crate in the workspace
//! speaks: the graft taxonomy from Section 3 of Small & Seltzer (USENIX
//! 1996), the extension-technology enumeration from Section 4, the
//! kernel/graft shared-memory ABI ([`RegionStore`]), the runtime error and
//! trap model, and the [`ExtensionEngine`] trait that all execution engines
//! (threaded code, bytecode VM, script interpreter, native Rust) implement.
//!
//! The crate is deliberately dependency-free so that engines, the kernel
//! simulator, and the benchmark harness can all depend on it without
//! pulling in one another.

pub mod engine;
pub mod error;
pub mod host;
pub mod region;
pub mod spec;
pub mod taxonomy;
pub mod tech;

pub use engine::{EntryId, ExtensionEngine, NativeEngine, NativeGraft};
pub use error::{GraftError, Trap};
pub use host::{GraftLedger, TrapCounts, TrapKind, Verdict};
pub use region::{Region, RegionId, RegionSpec, RegionStore};
pub use spec::{EntryPoint, GraftSpec};
pub use taxonomy::{GraftClass, Motivation};
pub use tech::{Technology, TrustModel};
