//! The graft taxonomy of Section 3 of the paper.

use std::fmt;

/// Structural class of a kernel extension ("graft").
///
/// Section 3 of the paper identifies three basic structures into which the
/// implementation of most grafts falls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraftClass {
    /// Presented with a list of options, selects the item of highest
    /// priority (Section 3.1). Examples: VM page eviction, buffer-cache
    /// eviction, process scheduling.
    Prioritization,
    /// Filtering code inserted into a data stream (Section 3.2). Examples:
    /// compression, encryption, MD5 fingerprinting, journaling.
    Stream,
    /// A function with some inputs, some state, and a single output
    /// (Section 3.3). Examples: access-control lists, read-ahead policy,
    /// a Logical Disk block-mapping layer.
    BlackBox,
}

impl GraftClass {
    /// All classes, in the order the paper presents them.
    pub const ALL: [GraftClass; 3] = [
        GraftClass::Prioritization,
        GraftClass::Stream,
        GraftClass::BlackBox,
    ];

    /// The benchmark graft the paper uses to represent this class.
    pub fn representative_benchmark(self) -> &'static str {
        match self {
            GraftClass::Prioritization => "VM page eviction (hot-list search)",
            GraftClass::Stream => "MD5 fingerprinting (RFC 1321)",
            GraftClass::BlackBox => "Logical Disk block mapping",
        }
    }
}

impl fmt::Display for GraftClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GraftClass::Prioritization => "prioritization",
            GraftClass::Stream => "stream",
            GraftClass::BlackBox => "black box",
        };
        f.write_str(s)
    }
}

/// Why an application grafts code into the kernel (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Motivation {
    /// Control kernel policy (buffer cache, VM cache, scheduling).
    Policy,
    /// Migrate application code into the kernel to save copies and upcalls.
    Performance,
    /// Add general functionality (ACLs, compressed files, new protocols).
    Functionality,
}

impl fmt::Display for Motivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Motivation::Policy => "policy",
            Motivation::Performance => "performance",
            Motivation::Functionality => "functionality",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_are_distinct() {
        assert_eq!(GraftClass::ALL.len(), 3);
        assert_ne!(GraftClass::ALL[0], GraftClass::ALL[1]);
        assert_ne!(GraftClass::ALL[1], GraftClass::ALL[2]);
    }

    #[test]
    fn display_is_lowercase_prose() {
        assert_eq!(GraftClass::Prioritization.to_string(), "prioritization");
        assert_eq!(GraftClass::BlackBox.to_string(), "black box");
        assert_eq!(Motivation::Policy.to_string(), "policy");
    }

    #[test]
    fn representative_benchmarks_match_paper() {
        assert!(GraftClass::Stream
            .representative_benchmark()
            .contains("MD5"));
        assert!(GraftClass::BlackBox
            .representative_benchmark()
            .contains("Logical Disk"));
    }
}
