//! The engine trait all extension technologies implement, plus the native
//! (hand-written Rust) engine.

use crate::error::{GraftError, Trap};
use crate::region::{RegionSpec, RegionStore};
use crate::tech::Technology;

/// A loaded, executable graft under some extension technology.
///
/// The kernel drives every technology through the same interface:
///
/// 1. marshal input into the graft's regions ([`load_region`] and
///    friends);
/// 2. [`invoke`] an entry point with scalar arguments;
/// 3. read results back out of the regions.
///
/// Implementations must be [`Send`] so a graft can be pushed behind the
/// user-level upcall boundary.
///
/// [`load_region`]: ExtensionEngine::load_region
/// [`invoke`]: ExtensionEngine::invoke
pub trait ExtensionEngine: Send {
    /// The technology this engine implements.
    fn technology(&self) -> Technology;

    /// Runs the entry point `entry` with the given scalar arguments and
    /// returns its scalar result.
    fn invoke(&mut self, entry: &str, args: &[i64]) -> Result<i64, GraftError>;

    /// Kernel-side bulk marshal into a region at a word offset.
    fn load_region(&mut self, name: &str, offset: usize, data: &[i64]) -> Result<(), GraftError>;

    /// Kernel-side single-word read from a region.
    fn read_region(&self, name: &str, index: usize) -> Result<i64, GraftError>;

    /// Kernel-side single-word write into a region.
    fn write_region(&mut self, name: &str, index: usize, value: i64) -> Result<(), GraftError>;

    /// Kernel-side bulk read from a region at a word offset.
    fn read_region_slice(
        &self,
        name: &str,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError>;

    /// Sets the execution budget for subsequent invocations.
    ///
    /// `None` means unmetered. Engines that cannot meter execution (the
    /// unprotected compiled technologies) ignore this; whether metering is
    /// honoured is exposed by [`Technology::preemptible`].
    fn set_fuel(&mut self, fuel: Option<u64>);

    /// Fuel consumed by the most recent invocation, if the engine meters.
    fn fuel_used(&self) -> Option<u64> {
        None
    }
}

/// A hand-written Rust graft body (the paper's "code compiled into the
/// kernel" upper bound).
///
/// Native grafts receive direct mutable access to the region store; there
/// is no checking layer beyond Rust's own — which is the point of the
/// [`Technology::RustNative`] row in the tables.
pub trait NativeGraft: Send {
    /// Executes `entry` against the regions.
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError>;
}

/// Blanket native-graft implementation for plain functions, so simple
/// grafts can be written as closures.
impl<F> NativeGraft for F
where
    F: FnMut(&str, &[i64], &mut RegionStore) -> Result<i64, GraftError> + Send,
{
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        self(entry, args, regions)
    }
}

/// Engine wrapper that runs a [`NativeGraft`] over a [`RegionStore`].
pub struct NativeEngine {
    regions: RegionStore,
    graft: Box<dyn NativeGraft>,
}

impl NativeEngine {
    /// Builds a native engine with zeroed regions.
    pub fn new(specs: &[RegionSpec], graft: Box<dyn NativeGraft>) -> Result<Self, GraftError> {
        Ok(NativeEngine {
            regions: RegionStore::new(specs)?,
            graft,
        })
    }
}

impl ExtensionEngine for NativeEngine {
    fn technology(&self) -> Technology {
        Technology::RustNative
    }

    fn invoke(&mut self, entry: &str, args: &[i64]) -> Result<i64, GraftError> {
        self.graft.call(entry, args, &mut self.regions)
    }

    fn load_region(&mut self, name: &str, offset: usize, data: &[i64]) -> Result<(), GraftError> {
        self.regions.load(name, offset, data)
    }

    fn read_region(&self, name: &str, index: usize) -> Result<i64, GraftError> {
        self.regions.read(name, index)
    }

    fn write_region(&mut self, name: &str, index: usize, value: i64) -> Result<(), GraftError> {
        self.regions.write(name, index, value)
    }

    fn read_region_slice(
        &self,
        name: &str,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        self.regions.read_slice(name, offset, out)
    }

    fn set_fuel(&mut self, _fuel: Option<u64>) {
        // Native code cannot be metered without compiler support; this is
        // precisely the reliability hazard the paper attributes to
        // unprotected technologies.
    }
}

/// Convenience used by engines to surface a trap for a missing entry.
pub fn no_such_entry(entry: &str) -> GraftError {
    GraftError::Trap(Trap::NoSuchFunction(entry.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionSpec;

    fn doubling_engine() -> NativeEngine {
        let graft = |entry: &str, args: &[i64], regions: &mut RegionStore| {
            match entry {
                "double" => Ok(args[0] * 2),
                "sum_buf" => {
                    let id = regions.id("buf")?;
                    Ok(regions.region(id).words().iter().sum())
                }
                other => Err(no_such_entry(other)),
            }
        };
        NativeEngine::new(&[RegionSpec::data("buf", 4)], Box::new(graft)).unwrap()
    }

    #[test]
    fn native_engine_invokes_closure() {
        let mut e = doubling_engine();
        assert_eq!(e.invoke("double", &[21]).unwrap(), 42);
    }

    #[test]
    fn native_engine_sees_marshalled_regions() {
        let mut e = doubling_engine();
        e.load_region("buf", 0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(e.invoke("sum_buf", &[]).unwrap(), 10);
    }

    #[test]
    fn missing_entry_traps() {
        let mut e = doubling_engine();
        let err = e.invoke("nope", &[]).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::NoSuchFunction(name)) if name == "nope"
        ));
    }

    #[test]
    fn native_engine_reports_rust_native() {
        let e = doubling_engine();
        assert_eq!(e.technology(), Technology::RustNative);
        assert_eq!(e.fuel_used(), None);
    }
}
