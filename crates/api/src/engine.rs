//! The engine trait all extension technologies implement, plus the native
//! (hand-written Rust) engine.
//!
//! # Two-phase bind/invoke ABI
//!
//! The graft ABI is split into a *bind* phase and an *invoke* phase,
//! mirroring how production extension runtimes (eBPF helper/map
//! relocation, safe-language kernel extensions) push name resolution to
//! load time:
//!
//! - **Bind (load time, cold):** [`bind_entry`] and [`bind_region`]
//!   resolve a name to a dense handle ([`EntryId`], [`RegionId`]) once
//!   per graft. Unknown names fail *here*, deterministically.
//! - **Invoke (steady state, hot):** [`invoke_id`], [`invoke_batch`] and
//!   the `*_region_id` family are pure index operations — zero hashing,
//!   zero string compares, zero allocation on the hot path. Stale or
//!   out-of-range handles trap with [`Trap::BadHandle`]; they never
//!   panic and never touch out-of-bounds memory.
//!
//! The historical one-phase string API ([`invoke`], [`load_region`],
//! …) survives as a thin compat shim: provided trait methods that bind
//! and then delegate. It is deprecated for hot paths — every table in
//! the repro now measures the handle-based path.
//!
//! [`bind_entry`]: ExtensionEngine::bind_entry
//! [`bind_region`]: ExtensionEngine::bind_region
//! [`invoke_id`]: ExtensionEngine::invoke_id
//! [`invoke_batch`]: ExtensionEngine::invoke_batch
//! [`invoke`]: ExtensionEngine::invoke
//! [`load_region`]: ExtensionEngine::load_region
//! [`Trap::BadHandle`]: crate::error::Trap::BadHandle

use std::collections::HashMap;

use graft_telemetry::TraceId;

use crate::error::{GraftError, Trap};
use crate::region::{RegionId, RegionSpec, RegionStore};
use crate::spec::{EntryPoint, SharedNativeFactory};
use crate::tech::Technology;

/// Handle to a bound entry point within one graft instance.
///
/// Issued by [`ExtensionEngine::bind_entry`]; only meaningful to the
/// engine that issued it. The raw value is an engine-private dense
/// index (function table slot, proc slot, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId(pub u32);

impl EntryId {
    /// The entry's index into its engine's function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A loaded, executable graft under some extension technology.
///
/// The kernel drives every technology through the same interface:
///
/// 1. **bind** the entry points and regions it will use
///    ([`bind_entry`], [`bind_region`]) — once, at load time;
/// 2. marshal input into the graft's regions ([`load_region_id`] and
///    friends);
/// 3. [`invoke_id`] an entry point with scalar arguments (or
///    [`invoke_batch`] many calls at once);
/// 4. read results back out of the regions.
///
/// Implementations must be [`Send`] so a graft can be pushed behind the
/// user-level upcall boundary.
///
/// [`bind_entry`]: ExtensionEngine::bind_entry
/// [`bind_region`]: ExtensionEngine::bind_region
/// [`load_region_id`]: ExtensionEngine::load_region_id
/// [`invoke_id`]: ExtensionEngine::invoke_id
/// [`invoke_batch`]: ExtensionEngine::invoke_batch
pub trait ExtensionEngine: Send {
    /// The technology this engine implements.
    fn technology(&self) -> Technology;

    /// Resolves an entry-point name to a handle, once, at load time.
    ///
    /// Fails with a deterministic error when the graft declares no such
    /// entry. Binding the same name twice returns the same handle.
    fn bind_entry(&mut self, entry: &str) -> Result<EntryId, GraftError>;

    /// Resolves a region name to a handle, once, at load time.
    fn bind_region(&self, name: &str) -> Result<RegionId, GraftError>;

    /// Runs a pre-bound entry point with the given scalar arguments and
    /// returns its scalar result. The steady-state hot path: no string
    /// lookup, no allocation.
    fn invoke_id(&mut self, entry: EntryId, args: &[i64]) -> Result<i64, GraftError>;

    /// Runs `calls` invocations of one pre-bound entry point in a
    /// single request, appending each scalar result to `out`.
    ///
    /// `args_flat` carries the arguments for all calls back to back;
    /// its length must be an exact multiple of `calls` (the per-call
    /// arity is inferred as `args_flat.len() / calls`). On a trap the
    /// batch stops at the faulting call: `out` holds the results
    /// completed so far and the error is returned.
    ///
    /// The default implementation loops [`invoke_id`]; transports with a
    /// per-call boundary cost (the user-level upcall engine) override it
    /// to amortize round-trips — the paper's Logical-Disk batching
    /// argument applied to our own boundary.
    ///
    /// [`invoke_id`]: ExtensionEngine::invoke_id
    fn invoke_batch(
        &mut self,
        entry: EntryId,
        calls: usize,
        args_flat: &[i64],
        out: &mut Vec<i64>,
    ) -> Result<(), GraftError> {
        let arity = batch_arity(calls, args_flat.len())?;
        out.reserve(calls);
        if arity == 0 {
            for _ in 0..calls {
                out.push(self.invoke_id(entry, &[])?);
            }
        } else {
            for chunk in args_flat.chunks_exact(arity) {
                out.push(self.invoke_id(entry, chunk)?);
            }
        }
        Ok(())
    }

    /// [`invoke_id`] with a propagated trace context — the causal
    /// identity of the kernel dispatch that caused this invocation.
    ///
    /// The default forwards to [`invoke_id`] and discards the context,
    /// so engines without engine-side instrumentation need no change.
    /// Engines that *have* an internal boundary override it: the upcall
    /// engine ships the id across the wire so the server thread's
    /// events land in the same causal timeline, and the in-kernel
    /// engines time their half of the dispatch under the trace. Hosts
    /// only call this in recording mode ([`graft_telemetry::tracing`]),
    /// so the untraced hot path never pays for it.
    ///
    /// [`invoke_id`]: ExtensionEngine::invoke_id
    fn invoke_id_traced(
        &mut self,
        entry: EntryId,
        args: &[i64],
        trace: TraceId,
    ) -> Result<i64, GraftError> {
        let _ = trace;
        self.invoke_id(entry, args)
    }

    /// [`invoke_batch`] with a propagated trace context; same contract
    /// as [`invoke_id_traced`].
    ///
    /// [`invoke_batch`]: ExtensionEngine::invoke_batch
    /// [`invoke_id_traced`]: ExtensionEngine::invoke_id_traced
    fn invoke_batch_traced(
        &mut self,
        entry: EntryId,
        calls: usize,
        args_flat: &[i64],
        out: &mut Vec<i64>,
        trace: TraceId,
    ) -> Result<(), GraftError> {
        let _ = trace;
        self.invoke_batch(entry, calls, args_flat, out)
    }

    /// Kernel-side bulk marshal into a pre-bound region at a word
    /// offset.
    fn load_region_id(
        &mut self,
        id: RegionId,
        offset: usize,
        data: &[i64],
    ) -> Result<(), GraftError>;

    /// Kernel-side single-word read from a pre-bound region.
    fn read_region_id(&self, id: RegionId, index: usize) -> Result<i64, GraftError>;

    /// Kernel-side single-word write into a pre-bound region.
    fn write_region_id(&mut self, id: RegionId, index: usize, value: i64)
        -> Result<(), GraftError>;

    /// Kernel-side bulk read from a pre-bound region at a word offset.
    fn read_region_slice_id(
        &self,
        id: RegionId,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError>;

    /// Length (in words) of a pre-bound region.
    ///
    /// The sizing half of the state-salvage seam: the supervisor asks
    /// how big a region is before snapshotting it, so the default
    /// [`snapshot_region`] can allocate exactly once.
    ///
    /// [`snapshot_region`]: ExtensionEngine::snapshot_region
    fn region_len(&self, id: RegionId) -> Result<usize, GraftError>;

    /// Copies a pre-bound region's entire contents out of the graft —
    /// the state-salvage seam.
    ///
    /// The quarantine supervisor calls this at detach time to rescue
    /// critical kernel state (a Logical Disk map, a scheduler table)
    /// that lives *inside* a black-box graft, so degraded mode can keep
    /// serving with the salvaged state instead of an empty one. It is a
    /// cold-path operation: one allocation per region, sized by
    /// [`region_len`].
    ///
    /// Transports with a per-call boundary cost (the user-level upcall
    /// engine) override this to ship the whole region in one round
    /// trip.
    ///
    /// [`region_len`]: ExtensionEngine::region_len
    fn snapshot_region(&self, id: RegionId) -> Result<Vec<i64>, GraftError> {
        let len = self.region_len(id)?;
        let mut out = vec![0i64; len];
        self.read_region_slice_id(id, 0, &mut out)?;
        Ok(out)
    }

    /// Overwrites a pre-bound region's entire contents — the re-seed
    /// half of the state-salvage seam.
    ///
    /// `words` must be exactly the region's length; a partial restore
    /// is rejected *before any word is written*, so a failed restore
    /// never leaves the region half-seeded. Used to hand a salvaged
    /// snapshot to a replacement graft (possibly under a different
    /// technology, or a [`fork_for_shard`] replica).
    ///
    /// [`fork_for_shard`]: ExtensionEngine::fork_for_shard
    fn restore_region(&mut self, id: RegionId, words: &[i64]) -> Result<(), GraftError> {
        let len = self.region_len(id)?;
        if words.len() != len {
            return Err(GraftError::Verify(format!(
                "restore_region: {} words for a region of {len}",
                words.len()
            )));
        }
        self.load_region_id(id, 0, words)
    }

    /// Runs the entry point `entry` with the given scalar arguments and
    /// returns its scalar result.
    ///
    /// One-phase compat shim: binds by name on every call, then
    /// delegates to [`invoke_id`]. Hot paths should bind once instead.
    ///
    /// [`invoke_id`]: ExtensionEngine::invoke_id
    fn invoke(&mut self, entry: &str, args: &[i64]) -> Result<i64, GraftError> {
        let id = self.bind_entry(entry)?;
        self.invoke_id(id, args)
    }

    /// Kernel-side bulk marshal into a region at a word offset
    /// (name-keyed compat shim over [`load_region_id`]).
    ///
    /// [`load_region_id`]: ExtensionEngine::load_region_id
    fn load_region(&mut self, name: &str, offset: usize, data: &[i64]) -> Result<(), GraftError> {
        let id = self.bind_region(name)?;
        self.load_region_id(id, offset, data)
    }

    /// Kernel-side single-word read from a region (name-keyed compat
    /// shim over [`read_region_id`]).
    ///
    /// [`read_region_id`]: ExtensionEngine::read_region_id
    fn read_region(&self, name: &str, index: usize) -> Result<i64, GraftError> {
        let id = self.bind_region(name)?;
        self.read_region_id(id, index)
    }

    /// Kernel-side single-word write into a region (name-keyed compat
    /// shim over [`write_region_id`]).
    ///
    /// [`write_region_id`]: ExtensionEngine::write_region_id
    fn write_region(&mut self, name: &str, index: usize, value: i64) -> Result<(), GraftError> {
        let id = self.bind_region(name)?;
        self.write_region_id(id, index, value)
    }

    /// Kernel-side bulk read from a region at a word offset (name-keyed
    /// compat shim over [`read_region_slice_id`]).
    ///
    /// [`read_region_slice_id`]: ExtensionEngine::read_region_slice_id
    fn read_region_slice(
        &self,
        name: &str,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        let id = self.bind_region(name)?;
        self.read_region_slice_id(id, offset, out)
    }

    /// Sets the execution budget for subsequent invocations.
    ///
    /// `None` means unmetered. Engines that cannot meter execution (the
    /// unprotected compiled technologies) ignore this; whether metering is
    /// honoured is exposed by [`Technology::preemptible`].
    fn set_fuel(&mut self, fuel: Option<u64>);

    /// Fuel consumed by the most recent invocation, if the engine meters.
    fn fuel_used(&self) -> Option<u64> {
        None
    }

    /// Whether the engine is currently metering fuel.
    ///
    /// Batched chain dispatch consults this before fusing calls: after a
    /// fused [`invoke_batch`] only the *last* call's fuel is observable
    /// through [`fuel_used`], so a metered engine must take the
    /// per-invocation path to keep the per-graft ledger's fuel
    /// accounting exact. The default derives the answer from
    /// [`fuel_used`] (metered engines report `Some` even before the
    /// first invocation); engines whose `fuel_used` is expensive (a wire
    /// round-trip) may override with a local answer.
    ///
    /// [`invoke_batch`]: ExtensionEngine::invoke_batch
    /// [`fuel_used`]: ExtensionEngine::fuel_used
    fn fuel_metered(&self) -> bool {
        self.fuel_used().is_some()
    }

    /// Produces a fresh, thread-confined replica of this engine for
    /// worker shard `shard` (the eBPF per-CPU-program idea applied to
    /// grafts).
    ///
    /// The replica shares immutable code (modules, proc tables, native
    /// factories) with its parent but owns a private copy of all mutable
    /// state — regions and globals are *snapshotted* at fork time, so
    /// state marshalled at install time (read-ahead plans, scheduler
    /// tables) propagates to every shard, while steady-state writes
    /// stay shard-local. Fuel accounting starts fresh; the caller
    /// re-applies its budget via [`set_fuel`].
    ///
    /// Engines that cannot replicate themselves (an engine already
    /// hosting live kernel-side state it cannot share) return a
    /// deterministic [`GraftError::Unavailable`]; the sharded host
    /// refuses the install rather than falling back to a lock.
    ///
    /// [`set_fuel`]: ExtensionEngine::set_fuel
    fn fork_for_shard(&self, shard: usize) -> Result<Box<dyn ExtensionEngine>, GraftError> {
        let _ = shard;
        Err(GraftError::Unavailable {
            graft: format!("{:?}", self.technology()),
            missing: "fork_for_shard support".to_string(),
        })
    }
}

/// Validates a batch shape and returns the per-call arity.
///
/// Shared by every `invoke_batch` implementation so the shape error is
/// identical across engines and across the upcall boundary.
pub fn batch_arity(calls: usize, args_len: usize) -> Result<usize, GraftError> {
    if calls == 0 {
        return if args_len == 0 {
            Ok(0)
        } else {
            Err(GraftError::Verify(format!(
                "invoke_batch: {args_len} args for 0 calls"
            )))
        };
    }
    if !args_len.is_multiple_of(calls) {
        return Err(GraftError::Verify(format!(
            "invoke_batch: {args_len} args do not split evenly into {calls} calls"
        )));
    }
    Ok(args_len / calls)
}

/// A hand-written Rust graft body (the paper's "code compiled into the
/// kernel" upper bound).
///
/// Native grafts receive direct mutable access to the region store; there
/// is no checking layer beyond Rust's own — which is the point of the
/// [`Technology::RustNative`] row in the tables.
pub trait NativeGraft: Send {
    /// Executes `entry` against the regions.
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError>;
}

/// Blanket native-graft implementation for plain functions, so simple
/// grafts can be written as closures.
impl<F> NativeGraft for F
where
    F: FnMut(&str, &[i64], &mut RegionStore) -> Result<i64, GraftError> + Send,
{
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        self(entry, args, regions)
    }
}

/// Engine wrapper that runs a [`NativeGraft`] over a [`RegionStore`].
///
/// Native graft bodies dispatch on the entry *name* internally (they
/// are ordinary Rust match arms), so the engine maintains an intern
/// table mapping [`EntryId`] back to the bound name. With a declared
/// entry manifest ([`NativeEngine::with_entries`]) binding an unknown
/// name fails at bind time, like every other technology; without one
/// (the open-world [`NativeEngine::new`] constructor used by ad-hoc
/// closures) any name binds and the graft body itself rejects unknown
/// entries at call time.
pub struct NativeEngine {
    regions: RegionStore,
    graft: Box<dyn NativeGraft>,
    /// Interned entry names, indexed by `EntryId`.
    entries: Vec<String>,
    entry_ids: HashMap<String, EntryId>,
    /// Whether `entries` is a closed manifest (bind rejects unknowns).
    sealed: bool,
    /// Factory that minted `graft`, when known. Required for
    /// [`ExtensionEngine::fork_for_shard`]: native graft bodies are
    /// opaque `FnMut` state, so the only way to replicate one is to
    /// mint a fresh instance from the same factory.
    factory: Option<SharedNativeFactory>,
}

impl NativeEngine {
    /// Builds a native engine with zeroed regions and an *open* entry
    /// namespace: any name binds, and unknown entries are rejected by
    /// the graft body at call time.
    pub fn new(specs: &[RegionSpec], graft: Box<dyn NativeGraft>) -> Result<Self, GraftError> {
        Ok(NativeEngine {
            regions: RegionStore::new(specs)?,
            graft,
            entries: Vec::new(),
            entry_ids: HashMap::new(),
            sealed: false,
            factory: None,
        })
    }

    /// Builds a native engine with a *closed* entry manifest: binding a
    /// name outside `entries` fails deterministically at bind time,
    /// matching the compiled/bytecode/script technologies.
    pub fn with_entries(
        specs: &[RegionSpec],
        entries: &[EntryPoint],
        graft: Box<dyn NativeGraft>,
    ) -> Result<Self, GraftError> {
        let mut engine = NativeEngine::new(specs, graft)?;
        for entry in entries {
            engine.intern(&entry.name);
        }
        engine.sealed = true;
        Ok(engine)
    }

    /// Builds a sealed native engine from a shared factory, keeping the
    /// factory so the engine can later [`fork_for_shard`] itself.
    ///
    /// [`fork_for_shard`]: ExtensionEngine::fork_for_shard
    pub fn from_factory(
        specs: &[RegionSpec],
        entries: &[EntryPoint],
        factory: SharedNativeFactory,
    ) -> Result<Self, GraftError> {
        let mut engine = NativeEngine::with_entries(specs, entries, factory())?;
        engine.factory = Some(factory);
        Ok(engine)
    }

    fn intern(&mut self, name: &str) -> EntryId {
        if let Some(&id) = self.entry_ids.get(name) {
            return id;
        }
        let id = EntryId(self.entries.len() as u32);
        self.entries.push(name.to_string());
        self.entry_ids.insert(name.to_string(), id);
        id
    }
}

impl ExtensionEngine for NativeEngine {
    fn technology(&self) -> Technology {
        Technology::RustNative
    }

    fn bind_entry(&mut self, entry: &str) -> Result<EntryId, GraftError> {
        match self.entry_ids.get(entry) {
            Some(&id) => Ok(id),
            None if self.sealed => Err(no_such_entry(entry)),
            None => Ok(self.intern(entry)),
        }
    }

    fn bind_region(&self, name: &str) -> Result<RegionId, GraftError> {
        self.regions.id(name)
    }

    fn invoke_id(&mut self, entry: EntryId, args: &[i64]) -> Result<i64, GraftError> {
        let name = self
            .entries
            .get(entry.index())
            .ok_or(GraftError::bad_handle("entry", entry.0))?;
        self.graft.call(name, args, &mut self.regions)
    }

    fn load_region_id(
        &mut self,
        id: RegionId,
        offset: usize,
        data: &[i64],
    ) -> Result<(), GraftError> {
        self.regions.load_id(id, offset, data)
    }

    fn read_region_id(&self, id: RegionId, index: usize) -> Result<i64, GraftError> {
        self.regions.read_id(id, index)
    }

    fn write_region_id(
        &mut self,
        id: RegionId,
        index: usize,
        value: i64,
    ) -> Result<(), GraftError> {
        self.regions.write_id(id, index, value)
    }

    fn read_region_slice_id(
        &self,
        id: RegionId,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        self.regions.read_slice_id(id, offset, out)
    }

    fn region_len(&self, id: RegionId) -> Result<usize, GraftError> {
        self.regions.len_id(id)
    }

    fn set_fuel(&mut self, _fuel: Option<u64>) {
        // Native code cannot be metered without compiler support; this is
        // precisely the reliability hazard the paper attributes to
        // unprotected technologies.
    }

    fn fork_for_shard(&self, _shard: usize) -> Result<Box<dyn ExtensionEngine>, GraftError> {
        let factory = self.factory.as_ref().ok_or_else(|| GraftError::Unavailable {
            graft: "native".to_string(),
            missing: "a shared factory (built via NativeEngine::from_factory)".to_string(),
        })?;
        Ok(Box::new(NativeEngine {
            // Snapshot current region contents, not the zeroed initial
            // state: install-time marshalling must reach every shard.
            regions: self.regions.clone(),
            graft: factory(),
            entries: self.entries.clone(),
            entry_ids: self.entry_ids.clone(),
            sealed: self.sealed,
            factory: Some(factory.clone()),
        }))
    }
}

/// Convenience used by engines to surface a trap for a missing entry.
pub fn no_such_entry(entry: &str) -> GraftError {
    GraftError::Trap(Trap::NoSuchFunction(entry.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionSpec;
    use crate::spec::EntryPoint;

    fn doubling_graft() -> Box<dyn NativeGraft> {
        Box::new(|entry: &str, args: &[i64], regions: &mut RegionStore| {
            match entry {
                "double" => Ok(args[0] * 2),
                "sum_buf" => {
                    let id = regions.id("buf")?;
                    Ok(regions.region(id).words().iter().sum())
                }
                other => Err(no_such_entry(other)),
            }
        })
    }

    fn doubling_engine() -> NativeEngine {
        NativeEngine::new(&[RegionSpec::data("buf", 4)], doubling_graft()).unwrap()
    }

    #[test]
    fn native_engine_invokes_closure() {
        let mut e = doubling_engine();
        assert_eq!(e.invoke("double", &[21]).unwrap(), 42);
    }

    #[test]
    fn native_engine_sees_marshalled_regions() {
        let mut e = doubling_engine();
        e.load_region("buf", 0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(e.invoke("sum_buf", &[]).unwrap(), 10);
    }

    #[test]
    fn missing_entry_traps() {
        let mut e = doubling_engine();
        let err = e.invoke("nope", &[]).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::NoSuchFunction(name)) if name == "nope"
        ));
    }

    #[test]
    fn native_engine_reports_rust_native() {
        let e = doubling_engine();
        assert_eq!(e.technology(), Technology::RustNative);
        assert_eq!(e.fuel_used(), None);
    }

    #[test]
    fn bind_then_invoke_matches_string_invoke() {
        let mut e = doubling_engine();
        let id = e.bind_entry("double").unwrap();
        assert_eq!(e.bind_entry("double").unwrap(), id, "binding is stable");
        assert_eq!(e.invoke_id(id, &[21]).unwrap(), 42);
        assert_eq!(e.invoke("double", &[21]).unwrap(), 42);
    }

    #[test]
    fn bound_regions_take_the_id_fast_path() {
        let mut e = doubling_engine();
        let buf = e.bind_region("buf").unwrap();
        e.load_region_id(buf, 0, &[5, 6]).unwrap();
        assert_eq!(e.read_region_id(buf, 1).unwrap(), 6);
        e.write_region_id(buf, 2, 7).unwrap();
        let mut out = [0; 3];
        e.read_region_slice_id(buf, 0, &mut out).unwrap();
        assert_eq!(out, [5, 6, 7]);
        assert!(e.bind_region("nope").is_err());
    }

    #[test]
    fn sealed_manifest_rejects_unknown_names_at_bind() {
        let mut e = NativeEngine::with_entries(
            &[RegionSpec::data("buf", 4)],
            &[EntryPoint::new("double", 1)],
            doubling_graft(),
        )
        .unwrap();
        assert!(e.bind_entry("double").is_ok());
        let err = e.bind_entry("nope").unwrap_err();
        assert!(matches!(err.as_trap(), Some(Trap::NoSuchFunction(_))));
    }

    #[test]
    fn stale_entry_id_traps_deterministically() {
        let mut e = doubling_engine();
        let err = e.invoke_id(EntryId(999), &[1]).unwrap_err();
        assert!(matches!(
            err.as_trap(),
            Some(Trap::BadHandle { kind: "entry", id: 999 })
        ));
    }

    #[test]
    fn default_invoke_batch_loops_and_stops_on_trap() {
        let mut e = doubling_engine();
        let id = e.bind_entry("double").unwrap();
        let mut out = Vec::new();
        e.invoke_batch(id, 3, &[1, 2, 3], &mut out).unwrap();
        assert_eq!(out, [2, 4, 6]);

        // Shape errors are rejected before any call runs.
        let mut out2 = Vec::new();
        assert!(e.invoke_batch(id, 2, &[1, 2, 3], &mut out2).is_err());
        assert!(out2.is_empty());

        // Zero calls is a no-op.
        e.invoke_batch(id, 0, &[], &mut out2).unwrap();
        assert!(out2.is_empty());
    }

    #[test]
    fn fork_without_factory_is_a_deterministic_refusal() {
        let e = doubling_engine();
        let err = match e.fork_for_shard(0) {
            Err(err) => err,
            Ok(_) => panic!("factory-less fork must refuse"),
        };
        assert!(matches!(err, GraftError::Unavailable { .. }));
    }

    #[test]
    fn fork_from_factory_snapshots_regions_and_isolates_writes() {
        let factory: SharedNativeFactory = std::sync::Arc::new(|| doubling_graft());
        let mut parent = NativeEngine::from_factory(
            &[RegionSpec::data("buf", 4)],
            &[EntryPoint::new("double", 1), EntryPoint::new("sum_buf", 0)],
            factory,
        )
        .unwrap();
        parent.load_region("buf", 0, &[1, 2, 3, 4]).unwrap();

        let mut child = parent.fork_for_shard(3).unwrap();
        // Install-time marshalled state propagates...
        assert_eq!(child.invoke("sum_buf", &[]).unwrap(), 10);
        // ...handles keep the same meaning in the replica...
        let id = parent.bind_entry("double").unwrap();
        assert_eq!(child.invoke_id(id, &[21]).unwrap(), 42);
        // ...the manifest stays sealed...
        assert!(child.invoke("nope", &[]).is_err());
        // ...and post-fork writes stay shard-local.
        child.write_region("buf", 0, 100).unwrap();
        assert_eq!(parent.read_region("buf", 0).unwrap(), 1);
        // Grandchildren fork too (the factory travels with the replica).
        assert!(child.fork_for_shard(1).is_ok());
    }

    #[test]
    fn snapshot_restore_round_trips_bit_exact() {
        let mut e = doubling_engine();
        let buf = e.bind_region("buf").unwrap();
        e.load_region_id(buf, 0, &[9, -8, 7, i64::MIN]).unwrap();
        assert_eq!(e.region_len(buf).unwrap(), 4);

        let snap = e.snapshot_region(buf).unwrap();
        assert_eq!(snap, [9, -8, 7, i64::MIN]);

        // Scribble, then restore: contents come back bit-exact.
        e.load_region_id(buf, 0, &[0; 4]).unwrap();
        e.restore_region(buf, &snap).unwrap();
        assert_eq!(e.snapshot_region(buf).unwrap(), snap);

        // A partial restore is rejected before any word is written.
        let err = e.restore_region(buf, &[1, 2]).unwrap_err();
        assert!(matches!(err, GraftError::Verify(_)));
        assert_eq!(e.snapshot_region(buf).unwrap(), snap);

        // Stale handles trap deterministically.
        assert!(e.region_len(RegionId(99)).is_err());
        assert!(e.snapshot_region(RegionId(99)).is_err());
    }

    #[test]
    fn traced_invoke_defaults_forward() {
        let mut e = doubling_engine();
        let id = e.bind_entry("double").unwrap();
        let trace = graft_telemetry::TraceId::mint(0, 7);
        assert_eq!(e.invoke_id_traced(id, &[21], trace).unwrap(), 42);
        let mut out = Vec::new();
        e.invoke_batch_traced(id, 2, &[1, 2], &mut out, trace).unwrap();
        assert_eq!(out, [2, 4]);
    }

    #[test]
    fn batch_arity_contract() {
        assert_eq!(batch_arity(4, 8).unwrap(), 2);
        assert_eq!(batch_arity(3, 0).unwrap(), 0);
        assert_eq!(batch_arity(0, 0).unwrap(), 0);
        assert!(batch_arity(0, 2).is_err());
        assert!(batch_arity(2, 3).is_err());
    }
}
