//! The kernel/graft shared-memory ABI.
//!
//! A graft does not get raw pointers into kernel memory. Instead the
//! kernel *marshals* the data structures the graft may inspect (the LRU
//! queue, the hot list, a block of file data, a logical-to-physical block
//! map) into named **regions**: flat arrays of `i64` words. How a region
//! access is checked — bounds-checked, NIL-checked, address-masked, or not
//! checked at all — is exactly what distinguishes the extension
//! technologies the paper compares, so the checking policy belongs to the
//! engines; this module only stores the words.

use std::collections::HashMap;

use crate::error::GraftError;

/// Identifier of a region within one graft instance, assigned in
/// declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u16);

impl RegionId {
    /// The region's index into its [`RegionStore`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of one shared region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSpec {
    /// Name the graft and the kernel use to refer to the region.
    pub name: String,
    /// Length in 64-bit words.
    pub len: usize,
    /// Whether the region holds index-linked records (word 0 is the NIL
    /// sentinel and must never be dereferenced). Safe-compiled engines
    /// insert NIL checks on loads from linked regions only, mirroring
    /// Modula-3's checking of `REF` types but not array indexes.
    pub linked: bool,
    /// Whether the graft may write to the region. Read-only regions let
    /// the SFI engine skip write-masking kernel inputs.
    pub writable: bool,
}

impl RegionSpec {
    /// A writable, non-linked data region.
    pub fn data(name: &str, len: usize) -> Self {
        RegionSpec {
            name: name.to_string(),
            len,
            linked: false,
            writable: true,
        }
    }

    /// A writable region of index-linked records (0 is NIL).
    pub fn linked(name: &str, len: usize) -> Self {
        RegionSpec {
            name: name.to_string(),
            len,
            linked: true,
            writable: true,
        }
    }

    /// A read-only data region (kernel input the graft may not modify).
    pub fn read_only(name: &str, len: usize) -> Self {
        RegionSpec {
            name: name.to_string(),
            len,
            linked: false,
            writable: false,
        }
    }
}

/// One region: its spec plus backing words.
#[derive(Debug, Clone)]
pub struct Region {
    spec: RegionSpec,
    data: Vec<i64>,
}

impl Region {
    /// Allocates a zeroed region for `spec`.
    pub fn new(spec: RegionSpec) -> Self {
        let data = vec![0; spec.len];
        Region { spec, data }
    }

    /// The region's static description.
    pub fn spec(&self) -> &RegionSpec {
        &self.spec
    }

    /// Length in words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the region holds zero words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the words.
    pub fn words(&self) -> &[i64] {
        &self.data
    }

    /// Mutable view of the words.
    pub fn words_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }
}

/// The complete set of regions belonging to one graft instance.
///
/// All engines embed a `RegionStore` (or, for SFI, an arena laid out from
/// one). Kernel-side marshalling goes through the fallible `load` / `read`
/// methods; engine-side graft accesses go through each engine's own
/// checked or unchecked fast paths.
#[derive(Debug, Clone, Default)]
pub struct RegionStore {
    regions: Vec<Region>,
    by_name: HashMap<String, RegionId>,
}

impl RegionStore {
    /// Builds a store with one zeroed region per spec.
    ///
    /// Duplicate names are rejected: the ABI requires region names to be
    /// unique within a graft.
    pub fn new(specs: &[RegionSpec]) -> Result<Self, GraftError> {
        let mut store = RegionStore::default();
        for spec in specs {
            if store.by_name.contains_key(&spec.name) {
                return Err(GraftError::Verify(format!(
                    "duplicate region name `{}`",
                    spec.name
                )));
            }
            let id = RegionId(store.regions.len() as u16);
            store.by_name.insert(spec.name.clone(), id);
            store.regions.push(Region::new(spec.clone()));
        }
        Ok(store)
    }

    /// Number of regions.
    pub fn count(&self) -> usize {
        self.regions.len()
    }

    /// Looks up a region id by name.
    pub fn id(&self, name: &str) -> Result<RegionId, GraftError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| GraftError::NoSuchRegion(name.to_string()))
    }

    /// The region with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Mutable access to the region with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id.index()]
    }

    /// Iterates over `(id, region)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (RegionId(i as u16), r))
    }

    /// Validates that `id` was issued by this store, returning the
    /// deterministic bad-handle trap otherwise.
    fn checked(&self, id: RegionId) -> Result<&Region, GraftError> {
        self.regions
            .get(id.index())
            .ok_or(GraftError::bad_handle("region", u32::from(id.0)))
    }

    /// Mutable twin of [`Self::checked`].
    fn checked_mut(&mut self, id: RegionId) -> Result<&mut Region, GraftError> {
        self.regions
            .get_mut(id.index())
            .ok_or(GraftError::bad_handle("region", u32::from(id.0)))
    }

    /// Kernel-side bulk marshal by pre-bound id: copies `data` into the
    /// region starting at word `offset`. No hashing, no string compare;
    /// the region name is only touched on the error path.
    pub fn load_id(&mut self, id: RegionId, offset: usize, data: &[i64]) -> Result<(), GraftError> {
        let region = self.checked_mut(id)?;
        let end = offset.checked_add(data.len()).filter(|&e| e <= region.len());
        match end {
            Some(end) => {
                region.data[offset..end].copy_from_slice(data);
                Ok(())
            }
            None => Err(GraftError::RegionRange {
                region: region.spec.name.clone(),
                index: offset.saturating_add(data.len()),
                len: region.len(),
            }),
        }
    }

    /// Kernel-side read of a single word by pre-bound id.
    pub fn read_id(&self, id: RegionId, index: usize) -> Result<i64, GraftError> {
        let region = self.checked(id)?;
        region
            .data
            .get(index)
            .copied()
            .ok_or_else(|| GraftError::RegionRange {
                region: region.spec.name.clone(),
                index,
                len: region.len(),
            })
    }

    /// Kernel-side write of a single word by pre-bound id.
    pub fn write_id(&mut self, id: RegionId, index: usize, value: i64) -> Result<(), GraftError> {
        let region = self.checked_mut(id)?;
        let len = region.len();
        match region.data.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(GraftError::RegionRange {
                region: region.spec.name.clone(),
                index,
                len,
            }),
        }
    }

    /// Kernel-side bulk read by pre-bound id: copies `out.len()` words
    /// starting at `offset` into `out`.
    pub fn read_slice_id(
        &self,
        id: RegionId,
        offset: usize,
        out: &mut [i64],
    ) -> Result<(), GraftError> {
        let region = self.checked(id)?;
        let end = offset.checked_add(out.len()).filter(|&e| e <= region.len());
        match end {
            Some(end) => {
                out.copy_from_slice(&region.data[offset..end]);
                Ok(())
            }
            None => Err(GraftError::RegionRange {
                region: region.spec.name.clone(),
                index: offset.saturating_add(out.len()),
                len: region.len(),
            }),
        }
    }

    /// Length (in words) of a region by pre-bound id.
    pub fn len_id(&self, id: RegionId) -> Result<usize, GraftError> {
        Ok(self.checked(id)?.len())
    }

    /// Kernel-side bulk marshal: copies `data` into the region starting at
    /// word `offset`. Name-keyed compat path; hot code should
    /// [`Self::id`] once and use [`Self::load_id`].
    pub fn load(&mut self, name: &str, offset: usize, data: &[i64]) -> Result<(), GraftError> {
        let id = self.id(name)?;
        self.load_id(id, offset, data)
    }

    /// Kernel-side read of a single word (name-keyed compat path).
    pub fn read(&self, name: &str, index: usize) -> Result<i64, GraftError> {
        let id = self.id(name)?;
        self.read_id(id, index)
    }

    /// Kernel-side write of a single word (name-keyed compat path).
    pub fn write(&mut self, name: &str, index: usize, value: i64) -> Result<(), GraftError> {
        let id = self.id(name)?;
        self.write_id(id, index, value)
    }

    /// Kernel-side bulk read: copies `out.len()` words starting at
    /// `offset` into `out` (name-keyed compat path).
    pub fn read_slice(&self, name: &str, offset: usize, out: &mut [i64]) -> Result<(), GraftError> {
        let id = self.id(name)?;
        self.read_slice_id(id, offset, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RegionStore {
        RegionStore::new(&[
            RegionSpec::data("buf", 8),
            RegionSpec::linked("queue", 16),
            RegionSpec::read_only("input", 4),
        ])
        .unwrap()
    }

    #[test]
    fn regions_start_zeroed() {
        let s = store();
        for i in 0..8 {
            assert_eq!(s.read("buf", i).unwrap(), 0);
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = RegionStore::new(&[RegionSpec::data("x", 1), RegionSpec::data("x", 2)]);
        assert!(matches!(err, Err(GraftError::Verify(_))));
    }

    #[test]
    fn load_read_round_trip() {
        let mut s = store();
        s.load("buf", 2, &[10, 20, 30]).unwrap();
        assert_eq!(s.read("buf", 2).unwrap(), 10);
        assert_eq!(s.read("buf", 4).unwrap(), 30);
        let mut out = [0; 3];
        s.read_slice("buf", 2, &mut out).unwrap();
        assert_eq!(out, [10, 20, 30]);
    }

    #[test]
    fn out_of_range_load_is_rejected() {
        let mut s = store();
        let err = s.load("buf", 6, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, GraftError::RegionRange { .. }));
    }

    #[test]
    fn overflowing_offset_is_rejected() {
        let mut s = store();
        let err = s.load("buf", usize::MAX, &[1]).unwrap_err();
        assert!(matches!(err, GraftError::RegionRange { .. }));
    }

    #[test]
    fn unknown_region_is_reported() {
        let s = store();
        assert!(matches!(
            s.read("nope", 0),
            Err(GraftError::NoSuchRegion(_))
        ));
    }

    #[test]
    fn id_paths_match_name_paths() {
        let mut s = store();
        let buf = s.id("buf").unwrap();
        s.load_id(buf, 1, &[7, 8]).unwrap();
        assert_eq!(s.read_id(buf, 1).unwrap(), 7);
        assert_eq!(s.read("buf", 2).unwrap(), 8);
        s.write_id(buf, 3, 9).unwrap();
        let mut out = [0; 3];
        s.read_slice_id(buf, 1, &mut out).unwrap();
        assert_eq!(out, [7, 8, 9]);
    }

    #[test]
    fn stale_region_id_traps_deterministically() {
        let mut s = store();
        let stale = RegionId(100);
        for err in [
            s.read_id(stale, 0).unwrap_err(),
            s.load_id(stale, 0, &[1]).unwrap_err(),
            s.write_id(stale, 0, 1).unwrap_err(),
            s.read_slice_id(stale, 0, &mut [0]).unwrap_err(),
        ] {
            assert!(matches!(
                err.as_trap(),
                Some(crate::error::Trap::BadHandle { kind: "region", id: 100 })
            ));
        }
    }

    #[test]
    fn ids_are_assigned_in_declaration_order() {
        let s = store();
        assert_eq!(s.id("buf").unwrap(), RegionId(0));
        assert_eq!(s.id("queue").unwrap(), RegionId(1));
        assert_eq!(s.id("input").unwrap(), RegionId(2));
        assert!(s.region(RegionId(1)).spec().linked);
        assert!(!s.region(RegionId(2)).spec().writable);
    }
}
