//! Model-based property tests for the region store (the kernel/graft
//! shared-memory ABI).

use graft_api::{RegionSpec, RegionStore};
use proptest::prelude::*;

proptest! {
    /// Kernel-side writes and reads behave like a flat array, and every
    /// out-of-range access is rejected without mutating anything.
    #[test]
    fn region_store_matches_a_vec_model(
        len in 1usize..64,
        ops in prop::collection::vec((any::<u8>(), any::<i64>()), 0..100),
    ) {
        let mut store = RegionStore::new(&[RegionSpec::data("r", len)]).unwrap();
        let mut model = vec![0i64; len];
        for (idx, value) in ops {
            let idx = idx as usize;
            let result = store.write("r", idx, value);
            if idx < len {
                prop_assert!(result.is_ok());
                model[idx] = value;
            } else {
                prop_assert!(result.is_err());
            }
        }
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(store.read("r", i).unwrap(), want);
        }
        // Bulk read agrees with the model too.
        let mut out = vec![0i64; len];
        store.read_slice("r", 0, &mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    /// Bulk loads land exactly where requested and nowhere else.
    #[test]
    fn bulk_load_is_exact(
        len in 8usize..64,
        offset in 0usize..64,
        data in prop::collection::vec(any::<i64>(), 0..64),
    ) {
        let mut store = RegionStore::new(&[RegionSpec::data("r", len)]).unwrap();
        let fits = offset.checked_add(data.len()).map_or(false, |e| e <= len);
        let result = store.load("r", offset, &data);
        prop_assert_eq!(result.is_ok(), fits);
        if fits {
            for (i, &v) in data.iter().enumerate() {
                prop_assert_eq!(store.read("r", offset + i).unwrap(), v);
            }
            // Words outside the written window are still zero.
            for i in 0..offset {
                prop_assert_eq!(store.read("r", i).unwrap(), 0);
            }
            for i in offset + data.len()..len {
                prop_assert_eq!(store.read("r", i).unwrap(), 0);
            }
        }
    }
}
