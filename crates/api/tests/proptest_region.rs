//! Model-based property tests for the region store (the kernel/graft
//! shared-memory ABI), driven by a seeded RNG (no network deps).

use graft_api::{RegionSpec, RegionStore};
use graft_rng::{Rng, SmallRng};

/// Kernel-side writes and reads behave like a flat array, and every
/// out-of-range access is rejected without mutating anything.
#[test]
fn region_store_matches_a_vec_model() {
    let mut rng = SmallRng::seed_from_u64(0xA110);
    for _case in 0..64 {
        let len = rng.gen_range(1usize..64);
        let nops = rng.gen_range(0usize..100);
        let mut store = RegionStore::new(&[RegionSpec::data("r", len)]).unwrap();
        let mut model = vec![0i64; len];
        for _ in 0..nops {
            let idx = (rng.next_u64() & 0xFF) as usize;
            let value = rng.next_u64() as i64;
            let result = store.write("r", idx, value);
            if idx < len {
                assert!(result.is_ok());
                model[idx] = value;
            } else {
                assert!(result.is_err());
            }
        }
        for (i, &want) in model.iter().enumerate() {
            assert_eq!(store.read("r", i).unwrap(), want);
        }
        // Bulk read agrees with the model too.
        let mut out = vec![0i64; len];
        store.read_slice("r", 0, &mut out).unwrap();
        assert_eq!(out, model);
    }
}

/// Bulk loads land exactly where requested and nowhere else.
#[test]
fn bulk_load_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0xB01D);
    for _case in 0..128 {
        let len = rng.gen_range(8usize..64);
        let offset = rng.gen_range(0usize..64);
        let dlen = rng.gen_range(0usize..64);
        let data: Vec<i64> = (0..dlen).map(|_| rng.next_u64() as i64).collect();
        let mut store = RegionStore::new(&[RegionSpec::data("r", len)]).unwrap();
        let fits = offset.checked_add(data.len()).is_some_and(|e| e <= len);
        let result = store.load("r", offset, &data);
        assert_eq!(result.is_ok(), fits);
        if fits {
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(store.read("r", offset + i).unwrap(), v);
            }
            // Words outside the written window are still zero.
            for i in 0..offset {
                assert_eq!(store.read("r", i).unwrap(), 0);
            }
            for i in offset + data.len()..len {
                assert_eq!(store.read("r", i).unwrap(), 0);
            }
        }
    }
}
