//! The Logical Disk bookkeeping graft (Black box; §3.3, Table 6).
//!
//! The graft maintains the logical→physical block map and the segment
//! fill state entirely inside its own regions and globals; the kernel
//! calls `ld_write(logical)` on every block write and learns from the
//! return value whether a segment just filled (and must be flushed to
//! the disk), and `ld_lookup(logical)` on reads. Table 6 times exactly
//! this per-write bookkeeping.
//!
//! The paper did not measure Tcl on this test ("Because of performance
//! of Tcl on the first two tests, we did not take Tcl measurements for
//! this test"), and neither do we: the spec carries no Tickle source,
//! which exercises the framework's `Unavailable` path.
//!
//! ## Region ABI
//!
//! * `map` — one word per logical block; −1 means unmapped. The kernel
//!   marshals the initial −1 fill.
//!
//! Entries: `ld_init()`, `ld_write(logical) -> flushed(0/1)`,
//! `ld_lookup(logical) -> physical | -1`, `ld_stat(i)` (0 = next
//! physical, 1 = segments flushed, 2 = dead blocks).

use graft_api::{
    ExtensionEngine, GraftClass, GraftError, GraftSpec, Motivation, NativeGraft, RegionSpec,
    RegionStore,
};

/// Logical blocks in the benchmark disk. The paper simulates 262,144
/// (1 GB of 4 KB blocks); the region is sized for it.
pub const BLOCKS: usize = 262_144;
/// Blocks per segment (64 KB / 4 KB).
pub const SEGMENT_BLOCKS: i64 = 16;

/// Grail source for the Logical Disk graft.
pub const GRAIL: &str = r#"
// Logical Disk bookkeeping: map logical blocks to a log of physical
// blocks, batching writes into 16-block segments.

var nextp = 0;
var segfill = 0;
var flushes = 0;
var dead = 0;

fn ld_init() {
    nextp = 0;
    segfill = 0;
    flushes = 0;
    dead = 0;
}

fn ld_write(logical: int) -> int {
    if map[logical] >= 0 {
        dead = dead + 1;
    }
    map[logical] = nextp;
    nextp = nextp + 1;
    segfill = segfill + 1;
    if segfill == 16 {
        segfill = 0;
        flushes = flushes + 1;
        return 1;
    }
    return 0;
}

fn ld_lookup(logical: int) -> int {
    return map[logical];
}

fn ld_stat(i: int) -> int {
    if i == 0 { return nextp; }
    if i == 1 { return flushes; }
    return dead;
}
"#;

/// Grail source for the **time-bomb** Logical Disk graft: identical
/// bookkeeping, plus an `ld_arm(n)` fuse. Once armed, the n-th
/// subsequent `ld_write` divides by zero *before* touching the map —
/// the one trap every technology turns into a fault (as Table 7's
/// saboteur), raised with the region state still consistent. Table 9
/// uses it to price salvage-at-detach: the supervisor must lift the
/// intact map out of the trapped graft.
pub const GRAIL_BOMB: &str = r#"
var nextp = 0;
var segfill = 0;
var flushes = 0;
var dead = 0;
var fuse = 0;

fn ld_init() {
    nextp = 0;
    segfill = 0;
    flushes = 0;
    dead = 0;
    fuse = 0;
}

fn ld_arm(n: int) {
    fuse = n;
}

fn ld_write(logical: int) -> int {
    if fuse > 0 {
        fuse = fuse - 1;
        if fuse == 0 {
            return logical / (fuse - fuse);
        }
    }
    if map[logical] >= 0 {
        dead = dead + 1;
    }
    map[logical] = nextp;
    nextp = nextp + 1;
    segfill = segfill + 1;
    if segfill == 16 {
        segfill = 0;
        flushes = flushes + 1;
        return 1;
    }
    return 0;
}

fn ld_lookup(logical: int) -> int {
    return map[logical];
}

fn ld_stat(i: int) -> int {
    if i == 0 { return nextp; }
    if i == 1 { return flushes; }
    return dead;
}
"#;

/// Native implementation of the same ABI.
#[derive(Debug, Default)]
pub struct NativeLogDisk {
    nextp: i64,
    segfill: i64,
    flushes: i64,
    dead: i64,
}

impl NativeGraft for NativeLogDisk {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        match entry {
            "ld_init" => {
                *self = NativeLogDisk::default();
                Ok(0)
            }
            "ld_write" => {
                let logical = args[0] as usize;
                let id = regions.id("map")?;
                let map = regions.region_mut(id).words_mut();
                if map[logical] >= 0 {
                    self.dead += 1;
                }
                map[logical] = self.nextp;
                self.nextp += 1;
                self.segfill += 1;
                if self.segfill == SEGMENT_BLOCKS {
                    self.segfill = 0;
                    self.flushes += 1;
                    Ok(1)
                } else {
                    Ok(0)
                }
            }
            "ld_lookup" => {
                let id = regions.id("map")?;
                Ok(regions.region(id).words()[args[0] as usize])
            }
            "ld_stat" => Ok(match args[0] {
                0 => self.nextp,
                1 => self.flushes,
                _ => self.dead,
            }),
            other => Err(graft_api::engine::no_such_entry(other)),
        }
    }
}

/// Native time-bomb: [`NativeLogDisk`] behind an `ld_arm` fuse.
#[derive(Debug, Default)]
pub struct NativeLogDiskBomb {
    inner: NativeLogDisk,
    fuse: i64,
}

impl NativeGraft for NativeLogDiskBomb {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        match entry {
            "ld_init" => {
                self.fuse = 0;
                self.inner.call(entry, args, regions)
            }
            "ld_arm" => {
                self.fuse = args[0];
                Ok(0)
            }
            "ld_write" if self.fuse > 0 => {
                self.fuse -= 1;
                if self.fuse == 0 {
                    // The same fault the Grail body raises: a division
                    // by zero before any region write.
                    return Err(GraftError::Trap(graft_api::Trap::DivByZero));
                }
                self.inner.call(entry, args, regions)
            }
            other => self.inner.call(other, args, regions),
        }
    }
}

/// The portable graft package (map sized for the paper's 1 GB disk).
pub fn spec() -> GraftSpec {
    spec_sized(BLOCKS)
}

/// A package with a custom disk size (tests and quick runs).
pub fn spec_sized(blocks: usize) -> GraftSpec {
    GraftSpec::new("logical-disk", GraftClass::BlackBox, Motivation::Performance)
        .region(RegionSpec::data("map", blocks))
        .entry("ld_init", 0)
        .entry("ld_write", 1)
        .entry("ld_lookup", 1)
        .entry("ld_stat", 1)
        .with_grail(GRAIL)
        .with_native(Box::new(|| Box::<NativeLogDisk>::default()))
}

/// The time-bomb package: the same bookkeeping ABI plus `ld_arm(n)`
/// (see [`GRAIL_BOMB`]). Like the plain spec it ships no Tickle.
pub fn spec_bomb_sized(blocks: usize) -> GraftSpec {
    GraftSpec::new("logical-disk-bomb", GraftClass::BlackBox, Motivation::Performance)
        .region(RegionSpec::data("map", blocks))
        .entry("ld_init", 0)
        .entry("ld_arm", 1)
        .entry("ld_write", 1)
        .entry("ld_lookup", 1)
        .entry("ld_stat", 1)
        .with_grail(GRAIL_BOMB)
        .with_native(Box::new(|| Box::<NativeLogDiskBomb>::default()))
}

/// Marshals the initial "all unmapped" state into an engine.
pub fn init_map(engine: &mut dyn ExtensionEngine, blocks: usize) -> Result<(), GraftError> {
    let unmapped = vec![-1i64; blocks];
    // Two-phase ABI: one bind each, then the bulk load and init call go
    // through handles (one upcall apiece under the user-level row).
    let map = engine.bind_region("map")?;
    let init = engine.bind_entry("ld_init")?;
    engine.load_region_id(map, 0, &unmapped)?;
    engine.invoke_id(init, &[]).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_bytecode::BytecodeEngine;
    use engine_native::{load_grail, SafetyMode};
    use logdisk::{LdConfig, LogicalDisk};

    const SMALL: usize = 1024;

    fn engines() -> Vec<Box<dyn ExtensionEngine>> {
        let spec = spec_sized(SMALL);
        let grail = spec.grail.as_ref().unwrap();
        vec![
            Box::new(load_grail(grail, &spec.regions, SafetyMode::Unchecked).unwrap()),
            Box::new(
                load_grail(grail, &spec.regions, SafetyMode::Safe { nil_checks: true }).unwrap(),
            ),
            Box::new(
                load_grail(grail, &spec.regions, SafetyMode::Sfi { read_protect: false })
                    .unwrap(),
            ),
            Box::new(BytecodeEngine::load_grail(grail, &spec.regions).unwrap()),
            Box::new(
                graft_api::NativeEngine::new(&spec.regions, (spec.native.as_ref().unwrap())())
                    .unwrap(),
            ),
        ]
    }

    /// Every technology's bookkeeping must agree with the `logdisk`
    /// crate's reference facility on the paper's skewed workload.
    #[test]
    fn graft_agrees_with_reference_facility() {
        let config = LdConfig {
            blocks: SMALL,
            segment_blocks: 16,
        };
        let writes: Vec<u64> =
            logdisk::workload::skewed(SMALL, SMALL as u64, 11).collect();
        for engine in engines().iter_mut() {
            init_map(engine.as_mut(), SMALL).unwrap();
            let mut oracle = LogicalDisk::new(config);
            let mut flushes = 0i64;
            for &w in &writes {
                let flushed = engine.invoke("ld_write", &[w as i64]).unwrap();
                let oracle_flush = oracle.write(w).is_some();
                assert_eq!(flushed == 1, oracle_flush);
                flushes += flushed;
            }
            // Maps agree block for block.
            for b in 0..SMALL as u64 {
                let got = engine.invoke("ld_lookup", &[b as i64]).unwrap();
                let want = oracle.read(b).map(|p| p as i64).unwrap_or(-1);
                assert_eq!(got, want, "block {b} on {:?}", engine.technology());
            }
            assert_eq!(
                engine.invoke("ld_stat", &[1]).unwrap(),
                flushes,
                "flush count"
            );
            assert_eq!(
                engine.invoke("ld_stat", &[2]).unwrap() as u64,
                oracle.stats().dead_blocks
            );
        }
    }

    #[test]
    fn tickle_is_unavailable_like_the_paper() {
        assert!(spec().tickle.is_none());
        assert!(spec_bomb_sized(SMALL).tickle.is_none());
    }

    fn bomb_engines() -> Vec<Box<dyn ExtensionEngine>> {
        let spec = spec_bomb_sized(SMALL);
        let grail = spec.grail.as_ref().unwrap();
        vec![
            Box::new(load_grail(grail, &spec.regions, SafetyMode::Unchecked).unwrap()),
            Box::new(
                load_grail(grail, &spec.regions, SafetyMode::Safe { nil_checks: true }).unwrap(),
            ),
            Box::new(
                load_grail(grail, &spec.regions, SafetyMode::Sfi { read_protect: false })
                    .unwrap(),
            ),
            Box::new(BytecodeEngine::load_grail(grail, &spec.regions).unwrap()),
            Box::new(
                graft_api::NativeEngine::new(&spec.regions, (spec.native.as_ref().unwrap())())
                    .unwrap(),
            ),
        ]
    }

    /// The bomb behaves exactly like the plain graft until armed; then
    /// the fused write divides by zero with the map untouched.
    #[test]
    fn bomb_bookkeeps_normally_then_traps_cleanly_when_armed() {
        for engine in bomb_engines().iter_mut() {
            let tech = engine.technology();
            init_map(engine.as_mut(), SMALL).unwrap();
            for w in 0..20 {
                engine.invoke("ld_write", &[w]).unwrap();
            }
            assert_eq!(engine.invoke("ld_lookup", &[7]).unwrap(), 7, "{tech:?}");
            engine.invoke("ld_arm", &[3]).unwrap();
            engine.invoke("ld_write", &[30]).unwrap();
            engine.invoke("ld_write", &[31]).unwrap();
            let err = engine.invoke("ld_write", &[32]).unwrap_err();
            assert!(
                matches!(err, GraftError::Trap(_)),
                "{tech:?}: expected a trap, got {err:?}"
            );
            // The trap fired before any bookkeeping: block 32 is
            // unmapped and the cursor still shows 22 allocations.
            assert_eq!(engine.invoke("ld_lookup", &[32]).unwrap(), -1, "{tech:?}");
            assert_eq!(engine.invoke("ld_stat", &[0]).unwrap(), 22, "{tech:?}");
        }
    }

    #[test]
    fn lookup_before_write_is_unmapped() {
        for engine in engines().iter_mut() {
            init_map(engine.as_mut(), SMALL).unwrap();
            assert_eq!(engine.invoke("ld_lookup", &[7]).unwrap(), -1);
        }
    }

    #[test]
    fn init_resets_state() {
        for engine in engines().iter_mut() {
            init_map(engine.as_mut(), SMALL).unwrap();
            for w in 0..20 {
                engine.invoke("ld_write", &[w]).unwrap();
            }
            init_map(engine.as_mut(), SMALL).unwrap();
            assert_eq!(engine.invoke("ld_stat", &[0]).unwrap(), 0);
            assert_eq!(engine.invoke("ld_lookup", &[0]).unwrap(), -1);
        }
    }
}
