//! A file read-ahead graft (Black box; the §3.3 read-ahead example).
//!
//! "If the application knows ahead of time the order in which blocks of
//! a file will be read, the kernel can use this information to make
//! read-ahead decisions. In some cases, an application will read a
//! subset of the blocks of a file in order, and then skip to another
//! region of the file." The application publishes its planned access
//! order into a region; after a miss on block *b* the kernel asks the
//! graft which block to prefetch next, and the graft answers from the
//! plan instead of guessing sequentially.

use graft_api::{
    ExtensionEngine, GraftClass, GraftError, GraftSpec, Motivation, NativeGraft, RegionSpec,
    RegionStore,
};

/// Maximum planned accesses.
pub const MAX_PLAN: usize = 4096;

/// Grail source for the read-ahead graft.
pub const GRAIL: &str = r#"
// plan[0] = length; plan[1..] = the block numbers the application will
// read, in order. Cursor tracks progress; after a miss the kernel asks
// what to prefetch and we answer the next planned block.

var cursor = 0;

fn ra_reset() {
    cursor = 0;
}

fn ra_next(missed: int) -> int {
    let n = plan[0];
    // Resynchronize: advance the cursor to just past the missed block.
    let i = cursor;
    while i < n {
        if plan[1 + i] == missed {
            cursor = i + 1;
            if cursor < n {
                return plan[1 + cursor];
            }
            return -1;
        }
        i = i + 1;
    }
    // The miss was off-plan: no opinion.
    return -1;
}
"#;

/// Native implementation of the same ABI.
#[derive(Debug, Default)]
pub struct NativeReadAhead {
    cursor: i64,
}

impl NativeGraft for NativeReadAhead {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        match entry {
            "ra_reset" => {
                self.cursor = 0;
                Ok(0)
            }
            "ra_next" => {
                let missed = args[0];
                let id = regions.id("plan")?;
                let plan = regions.region(id).words();
                let n = plan[0];
                let mut i = self.cursor;
                while i < n {
                    if plan[1 + i as usize] == missed {
                        self.cursor = i + 1;
                        return Ok(if self.cursor < n {
                            plan[1 + self.cursor as usize]
                        } else {
                            -1
                        });
                    }
                    i += 1;
                }
                Ok(-1)
            }
            other => Err(graft_api::engine::no_such_entry(other)),
        }
    }
}

/// The portable graft package.
pub fn spec() -> GraftSpec {
    GraftSpec::new("file-read-ahead", GraftClass::BlackBox, Motivation::Policy)
        .region(RegionSpec::data("plan", 1 + MAX_PLAN))
        .entry("ra_reset", 0)
        .entry("ra_next", 1)
        .with_grail(GRAIL)
        .with_native(Box::new(|| Box::<NativeReadAhead>::default()))
}

/// Marshals an access plan.
pub fn load_plan(engine: &mut dyn ExtensionEngine, plan: &[i64]) -> Result<(), GraftError> {
    assert!(plan.len() <= MAX_PLAN);
    let mut words = vec![0i64; 1 + plan.len()];
    words[0] = plan.len() as i64;
    words[1..].copy_from_slice(plan);
    engine.load_region("plan", 0, &words)?;
    engine.invoke("ra_reset", &[]).map(|_| ())
}

/// Adapter: plugs a loaded read-ahead graft into
/// [`kernsim::cache::BufferCache`] as its prefetch policy.
///
/// On each miss the kernel asks the graft for the next planned block,
/// then chains the prediction up to `depth` blocks ahead (each answer
/// is fed back as the next query, advancing the graft's cursor).
pub struct GraftReadAhead {
    engine: Box<dyn ExtensionEngine>,
    depth: usize,
}

impl GraftReadAhead {
    /// Wraps a loaded read-ahead graft (plan already marshalled via
    /// [`load_plan`]) with a 4-block prefetch window.
    pub fn new(engine: Box<dyn ExtensionEngine>) -> Self {
        GraftReadAhead { engine, depth: 4 }
    }

    /// Sets the prefetch window.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }
}

impl kernsim::cache::ReadAhead for GraftReadAhead {
    fn prefetch(&mut self, block: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.depth);
        let mut at = block as i64;
        for _ in 0..self.depth {
            // A trapped or wild graft simply yields no prefetch opinion.
            match self.engine.invoke("ra_next", &[at]) {
                Ok(next) if next >= 0 => {
                    out.push(next as u64);
                    at = next;
                }
                _ => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_native::{load_grail, SafetyMode};

    fn engines() -> Vec<Box<dyn ExtensionEngine>> {
        let spec = spec();
        let grail = spec.grail.as_ref().unwrap();
        vec![
            Box::new(
                load_grail(grail, &spec.regions, SafetyMode::Safe { nil_checks: true }).unwrap(),
            ),
            Box::new(
                graft_api::NativeEngine::new(&spec.regions, (spec.native.as_ref().unwrap())())
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn predicts_skips_that_defeat_sequential_heuristics() {
        // Read 0..4 in order, then jump to 100.
        let plan = [0, 1, 2, 3, 100, 101];
        for engine in engines().iter_mut() {
            load_plan(engine.as_mut(), &plan).unwrap();
            assert_eq!(engine.invoke("ra_next", &[0]).unwrap(), 1);
            assert_eq!(engine.invoke("ra_next", &[3]).unwrap(), 100);
            assert_eq!(engine.invoke("ra_next", &[100]).unwrap(), 101);
            assert_eq!(engine.invoke("ra_next", &[101]).unwrap(), -1);
        }
    }

    #[test]
    fn off_plan_misses_yield_no_opinion() {
        for engine in engines().iter_mut() {
            load_plan(engine.as_mut(), &[5, 6, 7]).unwrap();
            assert_eq!(engine.invoke("ra_next", &[999]).unwrap(), -1);
            // The cursor must not have been disturbed.
            assert_eq!(engine.invoke("ra_next", &[5]).unwrap(), 6);
        }
    }

    #[test]
    fn reset_restarts_the_plan() {
        for engine in engines().iter_mut() {
            load_plan(engine.as_mut(), &[5, 6, 7]).unwrap();
            assert_eq!(engine.invoke("ra_next", &[6]).unwrap(), 7);
            engine.invoke("ra_reset", &[]).unwrap();
            assert_eq!(engine.invoke("ra_next", &[5]).unwrap(), 6);
        }
    }

    #[test]
    fn graft_readahead_beats_sequential_heuristic_on_skips() {
        use kernsim::cache::{BufferCache, NoReadAhead, SequentialReadAhead};
        use kernsim::vm::LruPolicy;

        // The application will scan 0..16 and then jump to 1000..1016 —
        // the paper's "read a subset in order, then skip" pattern.
        let plan: Vec<i64> = (0..16).chain(1000..1016).collect();
        let accesses: Vec<u64> = plan.iter().map(|&b| b as u64).collect();

        let spec = spec();
        let mut engine = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        load_plan(&mut engine, &plan).unwrap();

        let mut with_graft = BufferCache::new(64, LruPolicy, GraftReadAhead::new(Box::new(engine)));
        let mut sequential = BufferCache::new(64, LruPolicy, SequentialReadAhead { n: 1 });
        let mut plain = BufferCache::new(64, LruPolicy, NoReadAhead);
        for &b in &accesses {
            with_graft.access(b);
            sequential.access(b);
            plain.access(b);
        }
        // The graft predicts the jump; the heuristic misses it.
        assert!(
            with_graft.stats().misses < sequential.stats().misses,
            "graft {:?} vs heuristic {:?}",
            with_graft.stats(),
            sequential.stats()
        );
        assert_eq!(plain.stats().misses, accesses.len() as u64);
        // With a perfect plan and a 4-block window, roughly one miss
        // per window — and crucially, the jump to block 1000 is
        // prefetched rather than missed.
        assert!(
            with_graft.stats().misses <= accesses.len() as u64 / 4 + 1,
            "{:?}",
            with_graft.stats()
        );
    }
}
