//! The benchmark grafts: the paper's three representative extensions —
//! and several more from its taxonomy — each written once per
//! technology.
//!
//! | Module | Class | Paper section | Technologies |
//! |---|---|---|---|
//! | [`eviction`] | Prioritization | §3.1, §5.4 (Table 2) | Grail, Tickle, native |
//! | [`md5`] | Stream | §3.2, §5.5 (Table 5) | Grail, Tickle, native |
//! | [`logdisk`] | Black box | §3.3, §5.6 (Table 6) | Grail, native (the paper skipped Tcl here too) |
//! | [`acl`] | Black box | §3.3 (ACL example) | Grail, native |
//! | [`readahead`] | Black box | §3.3 (read-ahead example) | Grail, native |
//! | [`schedule`] | Prioritization | §3.1 (client/server scheduling) | Grail, Tickle, native |
//! | [`stream`] | Stream | §3.2 (filter chains) | Grail, native |
//!
//! Each module exports a [`GraftSpec`] (the portable package: region
//! ABI, entry points, and per-technology sources) plus kernel-side
//! helpers for marshalling its workload. The Grail and Tickle sources
//! are checked against the native Rust implementation as an oracle in
//! the differential tests.
//!
//! [`GraftSpec`]: graft_api::GraftSpec

pub mod acl;
pub mod eviction;
pub mod logdisk;
pub mod md5;
pub mod readahead;
pub mod schedule;
pub mod stream;

/// All core benchmark specs, in the paper's order.
pub fn paper_specs() -> Vec<graft_api::GraftSpec> {
    vec![eviction::spec(), md5::spec(), logdisk::spec()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_specs_cover_the_three_classes() {
        use graft_api::GraftClass;
        let specs = super::paper_specs();
        let classes: Vec<GraftClass> = specs.iter().map(|s| s.class).collect();
        assert_eq!(
            classes,
            vec![
                GraftClass::Prioritization,
                GraftClass::Stream,
                GraftClass::BlackBox
            ]
        );
        for spec in &specs {
            assert!(spec.grail.is_some(), "{} needs Grail source", spec.name);
            assert!(spec.native.is_some(), "{} needs a native impl", spec.name);
        }
    }
}
