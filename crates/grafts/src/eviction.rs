//! The VM page-eviction graft (Prioritization; §3.1, Table 2).
//!
//! Protocol, as in the paper: the kernel keeps resident pages on an LRU
//! queue. On a fault it would normally evict the queue head; with this
//! graft installed it instead asks the owning application, which keeps a
//! *hot list* of pages it will need soon. The graft walks the hot list
//! to test the kernel's candidate and, if the candidate is hot, walks
//! down the queue for the first non-hot page.
//!
//! ## Region ABI
//!
//! Both lists are marshalled as index-linked records inside `linked`
//! regions (word 0 is the NIL sentinel): node *p* holds the page id at
//! `region[p]` and the next-node pointer at `region[p + 1]`. This is a
//! real pointer chase — the paper notes the test "is sensitive to the
//! overhead associated with traversing a list of items", and the NIL /
//! bounds checking of the safe technologies lands exactly on these
//! loads.
//!
//! Entry point: `select_victim(lru_head, hot_head) -> page_id`.

use graft_api::{
    ExtensionEngine, GraftClass, GraftError, GraftSpec, Motivation, NativeGraft, RegionSpec,
    RegionStore,
};
use kernsim::btree::BtreeModel;
use graft_rng::{Rng, SliceRandom, SmallRng};

/// Maximum LRU queue nodes the marshalled region can hold.
pub const MAX_QUEUE: usize = 4096;
/// Maximum hot-list nodes.
pub const MAX_HOT: usize = 256;

/// Grail source for the eviction graft.
pub const GRAIL: &str = r#"
// VM page-eviction graft: keep the application's hot pages resident.

fn on_hot_list(page: int, hot_head: int) -> bool {
    let p = hot_head;
    while p != 0 {
        if hot[p] == page {
            return true;
        }
        p = hot[p + 1];
    }
    return false;
}

fn select_victim(lru_head: int, hot_head: int) -> int {
    let q = lru_head;
    while q != 0 {
        let page = lru[q];
        if !on_hot_list(page, hot_head) {
            return page;
        }
        q = lru[q + 1];
    }
    // Everything resident is hot: accept the kernel's candidate.
    return lru[lru_head];
}
"#;

/// Tickle source for the eviction graft.
pub const TICKLE: &str = r#"
proc on_hot_list {page hot_head} {
    set p $hot_head
    while {$p != 0} {
        if {[rload hot $p] == $page} { return 1 }
        set p [rload hot [expr $p + 1]]
    }
    return 0
}

proc select_victim {lru_head hot_head} {
    set q $lru_head
    while {$q != 0} {
        set page [rload lru $q]
        if {![on_hot_list $page $hot_head]} { return $page }
        set q [rload lru [expr $q + 1]]
    }
    return [rload lru $lru_head]
}
"#;

/// The native (Rust) implementation, operating on the same marshalled
/// regions through the same ABI.
#[derive(Debug, Default)]
pub struct NativeEviction;

impl NativeGraft for NativeEviction {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        if entry != "select_victim" {
            return Err(graft_api::engine::no_such_entry(entry));
        }
        let lru = regions.id("lru")?;
        let hot = regions.id("hot")?;
        let (lru_head, hot_head) = (args[0], args[1]);
        let lru_words = regions.region(lru).words();
        let hot_words = regions.region(hot).words();
        let on_hot = |page: i64, hot_words: &[i64]| -> bool {
            let mut p = hot_head;
            while p != 0 {
                if hot_words[p as usize] == page {
                    return true;
                }
                p = hot_words[p as usize + 1];
            }
            false
        };
        let mut q = lru_head;
        while q != 0 {
            let page = lru_words[q as usize];
            if !on_hot(page, hot_words) {
                return Ok(page);
            }
            q = lru_words[q as usize + 1];
        }
        Ok(lru_words[lru_head as usize])
    }
}

/// The portable graft package.
pub fn spec() -> GraftSpec {
    GraftSpec::new("vm-page-eviction", GraftClass::Prioritization, Motivation::Policy)
        .region(RegionSpec::linked("lru", 1 + 2 * MAX_QUEUE))
        .region(RegionSpec::linked("hot", 1 + 2 * MAX_HOT))
        .entry("select_victim", 2)
        .with_grail(GRAIL)
        .with_tickle(TICKLE)
        .with_native(Box::new(|| Box::new(NativeEviction)))
}

/// A marshalled eviction scenario: the kernel's LRU queue snapshot plus
/// the application's hot list.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Resident pages, LRU order (head first).
    pub queue: Vec<u64>,
    /// Hot pages (application will need these soon).
    pub hot: Vec<u64>,
}

impl Scenario {
    /// The paper's model: resident pages are random TPC-B leaves, the
    /// hot list is the (on average half-consumed) set of leaves under
    /// one level-3 B-tree page. The queue head is guaranteed not hot,
    /// the common case whose cost Table 2 reports.
    pub fn from_btree(model: &BtreeModel, resident: usize, hot_len: usize, seed: u64) -> Self {
        assert!((1..=MAX_QUEUE).contains(&resident));
        assert!(hot_len <= MAX_HOT);
        let mut rng = SmallRng::seed_from_u64(seed);
        let l3 = rng.gen_range(0..model.l3_pages);
        let mut hot = model.hot_list(l3);
        hot.shuffle(&mut rng);
        hot.truncate(hot_len);
        let hot_set: std::collections::HashSet<u64> = hot.iter().copied().collect();
        let mut queue = Vec::with_capacity(resident);
        let first = model.first_leaf();
        let leaves = model.leaf_pages() as u64;
        while queue.len() < resident {
            let page = first + rng.gen_range(0..leaves);
            if queue.is_empty() && hot_set.contains(&page) {
                continue; // keep the head non-hot
            }
            queue.push(page);
        }
        Scenario { queue, hot }
    }

    /// The Table 2 configuration: a 64-entry hot list (the average over
    /// the shrinking 128-entry list) in front of a modest resident set.
    pub fn paper_default(seed: u64) -> Self {
        Scenario::from_btree(&BtreeModel::default(), 512, 64, seed)
    }

    /// A small deterministic scenario for examples and doctests.
    pub fn example() -> Self {
        Scenario {
            queue: vec![900, 901, 902, 903],
            hot: vec![50, 51, 52],
        }
    }

    /// A worst-case scenario: the first `hot_prefix` queue entries are
    /// all hot, forcing the graft down the queue.
    pub fn adversarial(hot_prefix: usize, hot_len: usize) -> Self {
        assert!(hot_prefix < MAX_QUEUE && hot_len <= MAX_HOT && hot_prefix <= hot_len);
        let hot: Vec<u64> = (1000..1000 + hot_len as u64).collect();
        let mut queue: Vec<u64> = hot[..hot_prefix].to_vec();
        queue.push(5_000_000);
        Scenario { queue, hot }
    }

    /// Marshals both lists into the engine's regions. Returns the
    /// `(lru_head, hot_head)` argument pair for `select_victim`.
    pub fn marshal(&self, engine: &mut dyn ExtensionEngine) -> Result<(i64, i64), GraftError> {
        let lru = linked_words(&self.queue, MAX_QUEUE);
        let hot = linked_words(&self.hot, MAX_HOT);
        // Two-phase ABI: resolve region names to handles, then bulk-load
        // by id (one upcall each under the user-level technology).
        let lru_id = engine.bind_region("lru")?;
        let hot_id = engine.bind_region("hot")?;
        engine.load_region_id(lru_id, 0, &lru)?;
        engine.load_region_id(hot_id, 0, &hot)?;
        Ok((head_ptr(&self.queue), head_ptr(&self.hot)))
    }

    /// What the graft should answer: the first queue page not on the
    /// hot list, or the head if all are hot (reference oracle).
    pub fn reference_victim(&self) -> u64 {
        let hot: std::collections::HashSet<u64> = self.hot.iter().copied().collect();
        self.queue
            .iter()
            .copied()
            .find(|p| !hot.contains(p))
            .unwrap_or(self.queue[0])
    }
}

fn head_ptr(items: &[u64]) -> i64 {
    if items.is_empty() {
        0
    } else {
        1
    }
}

/// Lays out `items` as linked records: node `i` at pointer `1 + 2i`,
/// `[page, next]`, 0-terminated. Word 0 is the NIL sentinel.
fn linked_words(items: &[u64], capacity: usize) -> Vec<i64> {
    assert!(items.len() <= capacity, "too many items for the region");
    let mut words = vec![0i64; 1 + 2 * items.len()];
    for (i, &page) in items.iter().enumerate() {
        let p = 1 + 2 * i;
        words[p] = page as i64;
        words[p + 1] = if i + 1 < items.len() {
            (1 + 2 * (i + 1)) as i64
        } else {
            0
        };
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_bytecode::BytecodeEngine;
    use engine_native::{load_grail, SafetyMode};
    use engine_script::ScriptEngine;

    fn run(engine: &mut dyn ExtensionEngine, sc: &Scenario) -> i64 {
        let (lru, hot) = sc.marshal(engine).unwrap();
        engine.invoke("select_victim", &[lru, hot]).unwrap()
    }

    fn all_engines() -> Vec<Box<dyn ExtensionEngine>> {
        let spec = spec();
        let regions = &spec.regions;
        let grail = spec.grail.as_ref().unwrap();
        let tickle = spec.tickle.as_ref().unwrap();
        vec![
            Box::new(load_grail(grail, regions, SafetyMode::Unchecked).unwrap()),
            Box::new(load_grail(grail, regions, SafetyMode::Safe { nil_checks: true }).unwrap()),
            Box::new(
                load_grail(grail, regions, SafetyMode::Sfi { read_protect: false }).unwrap(),
            ),
            Box::new(load_grail(grail, regions, SafetyMode::Sfi { read_protect: true }).unwrap()),
            Box::new(BytecodeEngine::load_grail(grail, regions).unwrap()),
            Box::new(ScriptEngine::load(tickle, regions).unwrap()),
            Box::new(
                graft_api::NativeEngine::new(regions, (spec.native.as_ref().unwrap())())
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn every_technology_agrees_with_the_oracle() {
        let scenarios = [
            Scenario::example(),
            Scenario::paper_default(7),
            Scenario::paper_default(8),
            Scenario::adversarial(10, 64),
            Scenario {
                queue: vec![42],
                hot: vec![],
            },
        ];
        for sc in &scenarios {
            let want = sc.reference_victim() as i64;
            for engine in all_engines().iter_mut() {
                let got = run(engine.as_mut(), sc);
                assert_eq!(got, want, "{:?} on {:?}", engine.technology(), sc.hot.len());
            }
        }
    }

    #[test]
    fn all_hot_queue_falls_back_to_kernel_candidate() {
        let sc = Scenario {
            queue: vec![1000, 1001],
            hot: vec![1000, 1001, 1002],
        };
        for engine in all_engines().iter_mut() {
            let got = run(engine.as_mut(), &sc);
            assert_eq!(got, 1000, "{:?}", engine.technology());
        }
    }

    #[test]
    fn paper_default_has_a_non_hot_head() {
        for seed in 0..20 {
            let sc = Scenario::paper_default(seed);
            assert_eq!(sc.hot.len(), 64);
            assert_eq!(sc.queue.len(), 512);
            assert_eq!(sc.reference_victim(), sc.queue[0]);
        }
    }

    #[test]
    fn adversarial_scenario_forces_queue_walk() {
        let sc = Scenario::adversarial(32, 64);
        assert_eq!(sc.reference_victim(), 5_000_000);
    }

    #[test]
    fn linked_layout_is_one_based_and_nil_terminated() {
        let words = linked_words(&[7, 8], 4);
        assert_eq!(words, vec![0, 7, 3, 8, 0]);
    }

    /// Property: on random scenarios, Grail-under-Safe and the native
    /// oracle never disagree.
    #[test]
    fn prop_grail_matches_oracle_on_random_scenarios() {
        let spec = spec();
        let mut engine = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            let qlen = rng.gen_range(1..40);
            let hlen = rng.gen_range(0..30);
            let queue: Vec<u64> = (0..qlen).map(|_| rng.gen_range(0..50)).collect();
            let hot: Vec<u64> = (0..hlen).map(|_| rng.gen_range(0..50)).collect();
            let sc = Scenario { queue, hot };
            let (lru, hotp) = sc.marshal(&mut engine).unwrap();
            let got = engine.invoke("select_victim", &[lru, hotp]).unwrap();
            assert_eq!(got, sc.reference_victim() as i64, "{sc:?}");
        }
    }
}
