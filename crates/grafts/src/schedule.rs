//! A process-scheduling graft (Prioritization; the third §3.1 example).
//!
//! "Processes may wish to be scheduled as a group; a client-server
//! application may not want the server to be scheduled unless there is
//! an outstanding client request, in which case it should be scheduled
//! ahead of any client." This graft implements exactly that policy as
//! downloadable code, so the kernel's scheduler can delegate its pick
//! to the application.
//!
//! ## Region ABI
//!
//! * `cands` — the marshalled run queue: word 0 is the candidate count,
//!   then `(pid, priority, tag)` triples in queue (FIFO) order;
//! * `appst` — application state the graft may read: word 0 holds the
//!   number of outstanding client requests.
//!
//! Entry point: `pick(n) -> index` of the candidate to dispatch.

use graft_api::{
    ExtensionEngine, GraftClass, GraftError, GraftSpec, Motivation, NativeGraft, RegionSpec,
    RegionStore,
};
use kernsim::sched::{Candidate, SchedPolicy};

/// Maximum runnable candidates the region can hold.
pub const MAX_CANDS: usize = 256;

/// Grail source: the paper's client/server policy.
pub const GRAIL: &str = r#"
// Candidates are (pid, priority, tag) triples; tag 1 marks the server.
// With a request outstanding the server runs ahead of any client;
// otherwise the idle server is skipped and clients run FIFO.

fn pick(n: int) -> int {
    let pending = appst[0];
    if pending > 0 {
        let i = 0;
        while i < n {
            if cands[1 + i * 3 + 2] == 1 {
                return i;
            }
            i = i + 1;
        }
    }
    let i = 0;
    while i < n {
        if cands[1 + i * 3 + 2] != 1 {
            return i;
        }
        i = i + 1;
    }
    return 0;
}
"#;

/// Tickle source for the same policy.
pub const TICKLE: &str = r#"
proc pick {n} {
    set pending [rload appst 0]
    if {$pending > 0} {
        for {set i 0} {$i < $n} {incr i} {
            if {[rload cands [expr 1 + $i * 3 + 2]] == 1} { return $i }
        }
    }
    for {set i 0} {$i < $n} {incr i} {
        if {[rload cands [expr 1 + $i * 3 + 2]] != 1} { return $i }
    }
    return 0
}
"#;

/// Native implementation of the same ABI.
#[derive(Debug, Default)]
pub struct NativeClientServer;

impl NativeGraft for NativeClientServer {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        if entry != "pick" {
            return Err(graft_api::engine::no_such_entry(entry));
        }
        let n = args[0] as usize;
        let cands_id = regions.id("cands")?;
        let appst_id = regions.id("appst")?;
        let pending = regions.region(appst_id).words()[0];
        let cands = regions.region(cands_id).words();
        let tag = |i: usize| cands[1 + i * 3 + 2];
        if pending > 0 {
            if let Some(i) = (0..n).find(|&i| tag(i) == 1) {
                return Ok(i as i64);
            }
        }
        Ok((0..n).find(|&i| tag(i) != 1).unwrap_or(0) as i64)
    }
}

/// The portable graft package.
pub fn spec() -> GraftSpec {
    GraftSpec::new(
        "client-server-scheduler",
        GraftClass::Prioritization,
        Motivation::Policy,
    )
    .region(RegionSpec::data("cands", 1 + 3 * MAX_CANDS))
    .region(RegionSpec::data("appst", 4))
    .entry("pick", 1)
    .with_grail(GRAIL)
    .with_tickle(TICKLE)
    .with_native(Box::new(|| Box::new(NativeClientServer)))
}

/// Adapter: plugs any loaded scheduling graft into
/// [`kernsim::sched::Scheduler`] as its policy, marshalling the run
/// queue on every dispatch.
pub struct GraftSchedPolicy {
    engine: Box<dyn ExtensionEngine>,
    /// Outstanding client requests, mirrored into `appst[0]`.
    pub pending_requests: i64,
}

impl GraftSchedPolicy {
    /// Wraps a loaded scheduler graft.
    pub fn new(engine: Box<dyn ExtensionEngine>) -> Self {
        GraftSchedPolicy {
            engine,
            pending_requests: 0,
        }
    }
}

impl SchedPolicy for GraftSchedPolicy {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        let n = candidates.len().min(MAX_CANDS);
        let mut words = vec![0i64; 1 + 3 * n];
        words[0] = n as i64;
        for (i, c) in candidates.iter().take(n).enumerate() {
            words[1 + i * 3] = c.pid as i64;
            words[1 + i * 3 + 1] = c.priority as i64;
            words[1 + i * 3 + 2] = c.tag;
        }
        let marshal = self
            .engine
            .load_region("cands", 0, &words)
            .and_then(|()| self.engine.write_region("appst", 0, self.pending_requests));
        if marshal.is_err() {
            return 0;
        }
        match self.engine.invoke("pick", &[n as i64]) {
            // A buggy or trapped graft falls back to FIFO, the same
            // containment stance the scheduler itself takes.
            Ok(i) if (i as usize) < candidates.len() => i as usize,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_bytecode::BytecodeEngine;
    use engine_native::{load_grail, SafetyMode};
    use engine_script::ScriptEngine;
    use kernsim::sched::Scheduler;

    fn cand(pid: u32, tag: i64) -> Candidate {
        Candidate {
            pid,
            priority: 0,
            vruntime: 0,
            tag,
        }
    }

    fn engines() -> Vec<Box<dyn ExtensionEngine>> {
        let spec = spec();
        let grail = spec.grail.as_ref().unwrap();
        let tickle = spec.tickle.as_ref().unwrap();
        vec![
            Box::new(load_grail(grail, &spec.regions, SafetyMode::Unchecked).unwrap()),
            Box::new(
                load_grail(grail, &spec.regions, SafetyMode::Safe { nil_checks: true }).unwrap(),
            ),
            Box::new(BytecodeEngine::load_grail(grail, &spec.regions).unwrap()),
            Box::new(ScriptEngine::load(tickle, &spec.regions).unwrap()),
            Box::new(
                graft_api::NativeEngine::new(&spec.regions, (spec.native.as_ref().unwrap())())
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn policy_matches_the_paper_description_across_technologies() {
        for engine in engines() {
            let tech = engine.technology();
            let mut sched = Scheduler::new(GraftSchedPolicy::new(engine));
            sched.enqueue(cand(10, 1)); // server
            sched.enqueue(cand(20, 0)); // client A
            sched.enqueue(cand(21, 0)); // client B

            // Idle server: clients run FIFO.
            assert_eq!(sched.dispatch(1).unwrap().pid, 20, "{tech}");
            sched.enqueue(cand(20, 0));

            // Request outstanding: server preempts all clients.
            sched.policy_mut().pending_requests = 1;
            assert_eq!(sched.dispatch(1).unwrap().pid, 10, "{tech}");

            // Request drained: back to clients.
            sched.policy_mut().pending_requests = 0;
            assert_eq!(sched.dispatch(1).unwrap().pid, 21, "{tech}");
        }
    }

    #[test]
    fn all_servers_queue_degenerates_to_fifo() {
        for engine in engines() {
            let mut sched = Scheduler::new(GraftSchedPolicy::new(engine));
            sched.enqueue(cand(1, 1));
            sched.enqueue(cand(2, 1));
            // No pending request and no client: the graft's fallback
            // returns index 0.
            assert_eq!(sched.dispatch(1).unwrap().pid, 1);
        }
    }

    #[test]
    fn graft_decisions_match_kernsim_builtin_policy() {
        // The downloadable policy must agree with the kernel's built-in
        // ClientServerPolicy on random mixes.
        use graft_rng::{Rng, SmallRng};
        use kernsim::sched::ClientServerPolicy;
        let mut rng = SmallRng::seed_from_u64(9);
        let spec = spec();
        let engine = load_grail(
            spec.grail.as_ref().unwrap(),
            &spec.regions,
            SafetyMode::Safe { nil_checks: true },
        )
        .unwrap();
        let mut graft = GraftSchedPolicy::new(Box::new(engine));
        let mut builtin = ClientServerPolicy::default();
        for _ in 0..200 {
            let n = rng.gen_range(1..8);
            let cands: Vec<Candidate> = (0..n)
                .map(|i| cand(i as u32 + 1, rng.gen_range(0..2)))
                .collect();
            let pending = rng.gen_range(0..3u32);
            graft.pending_requests = pending as i64;
            builtin.pending_requests = pending;
            assert_eq!(
                graft.pick(&cands),
                builtin.pick(&cands),
                "mix {cands:?} pending {pending}"
            );
        }
    }
}
