//! Byte-stream filter grafts (Stream; §3.2's filter-chain examples).
//!
//! Beyond MD5, §3.2 motivates stream grafts with transparent
//! compression/encryption and the UNIX Stream I/O system's filter
//! chains. This module provides two more filters in the same ABI —
//! an XOR stream cipher (the encryption stand-in) and a Fletcher-style
//! checksum — plus [`FilterChain`], which composes filter grafts the
//! way the paper's character-I/O chains did.
//!
//! ## Region ABI
//!
//! `data` holds one byte per word; `filter(len, arg) -> out_len`
//! transforms it in place.

use graft_api::{
    ExtensionEngine, GraftClass, GraftError, GraftSpec, Motivation, NativeGraft, RegionSpec,
    RegionStore,
};

/// Bytes per filter invocation.
pub const CHUNK: usize = 4096;

/// Grail source for the XOR stream cipher.
pub const XOR_GRAIL: &str = r#"
// XOR stream cipher with a rolling 8-bit keystream seeded by `arg`.
var ks = 0;

fn filter_init(arg: int) {
    ks = arg & 255;
}

fn filter(len: int, arg: int) -> int {
    let i = 0;
    while i < len {
        data[i] = data[i] ^ ks;
        ks = (ks * 5 + 17) & 255;
        i = i + 1;
    }
    return len;
}
"#;

/// Grail source for the checksum filter (data passes through, a
/// Fletcher-16 accumulates in globals, as MD5's state does).
pub const SUM_GRAIL: &str = r#"
var s1 = 0;
var s2 = 0;

fn filter_init(arg: int) {
    s1 = 0;
    s2 = 0;
}

fn filter(len: int, arg: int) -> int {
    let i = 0;
    while i < len {
        s1 = (s1 + data[i]) % 255;
        s2 = (s2 + s1) % 255;
        i = i + 1;
    }
    return len;
}

fn checksum() -> int {
    return s2 * 256 + s1;
}
"#;

/// Grail source for a run-length compressor (§3.2: "we might want the
/// kernel to transparently compress a file when it is written").
///
/// Output format: `(count, byte)` pairs; `filter` returns the encoded
/// length, which is at most `2 × len` and usually far less on runs.
pub const RLE_GRAIL: &str = r#"
fn filter_init(arg: int) {
}

fn filter(len: int, arg: int) -> int {
    // Encode in place into scratch, then copy back.
    let out = 0;
    let i = 0;
    while i < len {
        let b = data[i];
        let run = 1;
        while i + run < len && data[i + run] == b && run < 255 {
            run = run + 1;
        }
        scratch[out] = run;
        scratch[out + 1] = b;
        out = out + 2;
        i = i + run;
    }
    let j = 0;
    while j < out {
        data[j] = scratch[j];
        j = j + 1;
    }
    return out;
}

fn expand(len: int) -> int {
    // Decode (count, byte) pairs from data into scratch, copy back.
    let out = 0;
    let i = 0;
    while i < len {
        let run = data[i];
        let b = data[i + 1];
        let k = 0;
        while k < run {
            scratch[out] = b;
            out = out + 1;
            k = k + 1;
        }
        i = i + 2;
    }
    let j = 0;
    while j < out {
        data[j] = scratch[j];
        j = j + 1;
    }
    return out;
}
"#;

/// The RLE compressor package. `scratch` is sized 2× the data chunk
/// because incompressible input doubles.
pub fn rle_spec() -> GraftSpec {
    GraftSpec::new("rle-compressor", GraftClass::Stream, Motivation::Functionality)
        .region(RegionSpec::data("data", 2 * CHUNK))
        .region(RegionSpec::data("scratch", 2 * CHUNK))
        .entry("filter_init", 1)
        .entry("filter", 2)
        .entry("expand", 1)
        .with_grail(RLE_GRAIL)
}

/// Native XOR cipher (same keystream).
#[derive(Debug, Default)]
pub struct NativeXor {
    ks: i64,
}

impl NativeGraft for NativeXor {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        match entry {
            "filter_init" => {
                self.ks = args[0] & 255;
                Ok(0)
            }
            "filter" => {
                let len = args[0] as usize;
                let id = regions.id("data")?;
                let data = regions.region_mut(id).words_mut();
                for w in data.iter_mut().take(len) {
                    *w ^= self.ks;
                    self.ks = (self.ks * 5 + 17) & 255;
                }
                Ok(len as i64)
            }
            other => Err(graft_api::engine::no_such_entry(other)),
        }
    }
}

/// The XOR filter package.
pub fn xor_spec() -> GraftSpec {
    GraftSpec::new("xor-stream-cipher", GraftClass::Stream, Motivation::Functionality)
        .region(RegionSpec::data("data", CHUNK))
        .entry("filter_init", 1)
        .entry("filter", 2)
        .with_grail(XOR_GRAIL)
        .with_native(Box::new(|| Box::<NativeXor>::default()))
}

/// The checksum filter package.
pub fn checksum_spec() -> GraftSpec {
    GraftSpec::new("fletcher-checksum", GraftClass::Stream, Motivation::Functionality)
        .region(RegionSpec::data("data", CHUNK))
        .entry("filter_init", 1)
        .entry("filter", 2)
        .entry("checksum", 0)
        .with_grail(SUM_GRAIL)
}

/// A chain of filter grafts applied in order to a byte stream — the
/// Stream I/O System structure from Ritchie as cited in §3.2.
pub struct FilterChain {
    stages: Vec<Box<dyn ExtensionEngine>>,
}

impl FilterChain {
    /// Builds a chain and initializes every stage with `arg`.
    pub fn new(mut stages: Vec<Box<dyn ExtensionEngine>>, arg: i64) -> Result<Self, GraftError> {
        for s in stages.iter_mut() {
            s.invoke("filter_init", &[arg])?;
        }
        Ok(FilterChain { stages })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// A stage, for querying stage-specific entries (e.g. `checksum`).
    pub fn stage_mut(&mut self, i: usize) -> &mut dyn ExtensionEngine {
        self.stages[i].as_mut()
    }

    /// Pushes `bytes` through every stage in order, returning the
    /// transformed bytes.
    pub fn process(&mut self, bytes: &[u8]) -> Result<Vec<u8>, GraftError> {
        let mut out = Vec::with_capacity(bytes.len());
        for chunk in bytes.chunks(CHUNK) {
            let mut words: Vec<i64> = chunk.iter().map(|&b| b as i64).collect();
            for stage in self.stages.iter_mut() {
                stage.load_region("data", 0, &words)?;
                let n = stage.invoke("filter", &[words.len() as i64, 0])? as usize;
                words.resize(n, 0);
                stage.read_region_slice("data", 0, &mut words)?;
            }
            out.extend(words.iter().map(|&w| (w & 0xFF) as u8));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_native::{load_grail, SafetyMode};

    fn xor_engine(mode: SafetyMode) -> Box<dyn ExtensionEngine> {
        let spec = xor_spec();
        Box::new(load_grail(spec.grail.as_ref().unwrap(), &spec.regions, mode).unwrap())
    }

    fn sum_engine() -> Box<dyn ExtensionEngine> {
        let spec = checksum_spec();
        Box::new(
            load_grail(
                spec.grail.as_ref().unwrap(),
                &spec.regions,
                SafetyMode::Safe { nil_checks: true },
            )
            .unwrap(),
        )
    }

    #[test]
    fn xor_cipher_round_trips() {
        let plain: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let mut enc = FilterChain::new(vec![xor_engine(SafetyMode::Unchecked)], 0x5A).unwrap();
        let cipher = enc.process(&plain).unwrap();
        assert_ne!(cipher, plain);
        let mut dec =
            FilterChain::new(vec![xor_engine(SafetyMode::Safe { nil_checks: true })], 0x5A)
                .unwrap();
        assert_eq!(dec.process(&cipher).unwrap(), plain);
    }

    #[test]
    fn grail_xor_matches_native() {
        let plain = vec![7u8; 300];
        let mut grail = FilterChain::new(vec![xor_engine(SafetyMode::Unchecked)], 9).unwrap();
        let spec = xor_spec();
        let native = graft_api::NativeEngine::new(
            &spec.regions,
            (spec.native.as_ref().unwrap())(),
        )
        .unwrap();
        let mut native = FilterChain::new(vec![Box::new(native)], 9).unwrap();
        assert_eq!(
            grail.process(&plain).unwrap(),
            native.process(&plain).unwrap()
        );
    }

    #[test]
    fn checksum_passes_data_through_and_detects_changes() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut chain = FilterChain::new(vec![sum_engine()], 0).unwrap();
        let out = chain.process(&data).unwrap();
        assert_eq!(out, data, "checksum filter must not modify the stream");
        let sum1 = chain.stage_mut(0).invoke("checksum", &[]).unwrap();

        let mut tampered = data.clone();
        tampered[1234] ^= 1;
        let mut chain2 = FilterChain::new(vec![sum_engine()], 0).unwrap();
        chain2.process(&tampered).unwrap();
        let sum2 = chain2.stage_mut(0).invoke("checksum", &[]).unwrap();
        assert_ne!(sum1, sum2);
    }

    fn rle_engine(mode: SafetyMode) -> Box<dyn ExtensionEngine> {
        let spec = rle_spec();
        Box::new(load_grail(spec.grail.as_ref().unwrap(), &spec.regions, mode).unwrap())
    }

    fn rle_round_trip(engine: &mut dyn ExtensionEngine, bytes: &[u8]) -> (usize, Vec<u8>) {
        let words: Vec<i64> = bytes.iter().map(|&b| b as i64).collect();
        engine.load_region("data", 0, &words).unwrap();
        let packed = engine.invoke("filter", &[bytes.len() as i64, 0]).unwrap() as usize;
        let expanded = engine.invoke("expand", &[packed as i64]).unwrap() as usize;
        let mut out = vec![0i64; expanded];
        engine.read_region_slice("data", 0, &mut out).unwrap();
        (packed, out.iter().map(|&w| w as u8).collect())
    }

    #[test]
    fn rle_round_trips_and_compresses_runs() {
        // A run-heavy "file": long zero runs with occasional markers.
        let mut bytes = vec![0u8; 900];
        for i in (0..900).step_by(97) {
            bytes[i] = 0xEE;
        }
        for mode in [SafetyMode::Unchecked, SafetyMode::Safe { nil_checks: true }] {
            let mut e = rle_engine(mode);
            let (packed, restored) = rle_round_trip(e.as_mut(), &bytes);
            assert_eq!(restored, bytes, "{mode:?}");
            assert!(
                packed < bytes.len() / 10,
                "runs must compress well: {packed} of {}",
                bytes.len()
            );
        }
    }

    #[test]
    fn rle_handles_incompressible_and_tiny_inputs() {
        let mut e = rle_engine(SafetyMode::Safe { nil_checks: true });
        // Strictly alternating bytes: worst case, encoded = 2× input.
        let worst: Vec<u8> = (0..300).map(|i| (i % 2) as u8).collect();
        let (packed, restored) = rle_round_trip(e.as_mut(), &worst);
        assert_eq!(restored, worst);
        assert_eq!(packed, 2 * worst.len());
        // Empty and single-byte inputs.
        let (packed, restored) = rle_round_trip(e.as_mut(), &[]);
        assert_eq!((packed, restored.len()), (0, 0));
        let (_, restored) = rle_round_trip(e.as_mut(), &[7]);
        assert_eq!(restored, vec![7]);
    }

    #[test]
    fn rle_runs_longer_than_255_split_correctly() {
        let mut e = rle_engine(SafetyMode::Unchecked);
        let bytes = vec![9u8; 600];
        let (packed, restored) = rle_round_trip(e.as_mut(), &bytes);
        assert_eq!(restored, bytes);
        // 600 = 255 + 255 + 90 → three pairs.
        assert_eq!(packed, 6);
    }

    #[test]
    fn chained_filters_compose_like_stream_io() {
        // encrypt → checksum: the checksum sees ciphertext; output is
        // still the ciphertext (checksum is pass-through).
        let plain = vec![42u8; 1000];
        let mut solo = FilterChain::new(vec![xor_engine(SafetyMode::Unchecked)], 1).unwrap();
        let cipher = solo.process(&plain).unwrap();

        let mut chain = FilterChain::new(
            vec![xor_engine(SafetyMode::Unchecked), sum_engine()],
            1,
        )
        .unwrap();
        let out = chain.process(&plain).unwrap();
        assert_eq!(out, cipher);
        assert_eq!(chain.len(), 2);
    }
}
