//! The MD5 fingerprinting graft (Stream; §3.2, Table 5).
//!
//! The full RFC 1321 algorithm — rounds, padding, length trailer — is
//! implemented in Grail (for the compiled and bytecode technologies)
//! and in Tickle (for the script technology), and checked word for word
//! against the reference implementation in `graft-md5`. As the paper
//! notes, the test "makes heavy use of array access and unsigned 32-bit
//! arithmetic": the Grail and Tickle versions do their 32-bit work in
//! 64-bit integers masked to `0xFFFFFFFF`, exactly the `Word`-package
//! idiom the paper discusses for the 64-bit Alpha.
//!
//! ## Region ABI
//!
//! * `msg` — the kernel marshals file bytes here, one byte per word,
//!   with 128 words of slack for the graft to build its padding blocks;
//! * `mw` — 16-word scratch for the decoded message block.
//!
//! Entry points: `md5_init()`, `md5_blocks(n)` (hash `n` 64-byte blocks
//! from `msg[0..]`), `md5_final(rem)` (pad and finish with `rem` tail
//! bytes in `msg`), `md5_state(i)` (read chaining word *i*).

use graft_api::{
    EntryId, ExtensionEngine, GraftClass, GraftError, GraftSpec, Motivation, NativeGraft,
    RegionId, RegionSpec, RegionStore,
};

/// Bytes marshalled per `md5_blocks` call (must be a multiple of 64).
pub const CHUNK: usize = 16_384;
/// `msg` region length in words: a chunk plus padding slack.
pub const MSG_LEN: usize = CHUNK + 128;

fn table_lines(prefix: &str, values: &[u32], grail: bool) -> String {
    let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    if grail {
        format!("const {prefix}[{}] = {{ {} }};", values.len(), vals.join(", "))
    } else {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| format!("set {prefix}({i}) {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Grail source for the MD5 graft (generated to embed the RFC tables).
pub fn grail_source() -> String {
    let t = table_lines("T", &graft_md5::T, true);
    let s = table_lines("S", &graft_md5::S, true);
    format!(
        r#"
// MD5 (RFC 1321) as a stream graft. 32-bit arithmetic is done in
// 64-bit integers masked to 0xFFFFFFFF (the paper's Alpha idiom).
{t}
{s}

var a0 = 0;
var b0 = 0;
var c0 = 0;
var d0 = 0;
var total = 0;

fn md5_init() {{
    a0 = 0x67452301;
    b0 = 0xefcdab89;
    c0 = 0x98badcfe;
    d0 = 0x10325476;
    total = 0;
}}

fn rotl(x: int, n: int) -> int {{
    return ((x << n) | (x >> (32 - n))) & 0xFFFFFFFF;
}}

fn md5_block(off: int) {{
    let j = 0;
    while j < 16 {{
        let b = off + j * 4;
        mw[j] = msg[b] | (msg[b + 1] << 8) | (msg[b + 2] << 16) | (msg[b + 3] << 24);
        j = j + 1;
    }}
    let a = a0;
    let b = b0;
    let c = c0;
    let d = d0;
    let i = 0;
    while i < 64 {{
        let f = 0;
        let g = 0;
        if i < 16 {{
            f = (b & c) | (~b & d);
            g = i;
        }} else if i < 32 {{
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        }} else if i < 48 {{
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        }} else {{
            f = c ^ (b | (~d & 0xFFFFFFFF));
            g = (7 * i) % 16;
        }}
        f = f & 0xFFFFFFFF;
        let tmp = d;
        d = c;
        c = b;
        let sum = (a + f + T[i] + mw[g]) & 0xFFFFFFFF;
        b = (b + rotl(sum, S[i])) & 0xFFFFFFFF;
        a = tmp;
        i = i + 1;
    }}
    a0 = (a0 + a) & 0xFFFFFFFF;
    b0 = (b0 + b) & 0xFFFFFFFF;
    c0 = (c0 + c) & 0xFFFFFFFF;
    d0 = (d0 + d) & 0xFFFFFFFF;
}}

fn md5_blocks(n: int) {{
    let k = 0;
    while k < n {{
        md5_block(k * 64);
        k = k + 1;
    }}
    total = total + n * 64;
}}

fn md5_final(rem: int) {{
    let bits = (total + rem) * 8;
    msg[rem] = 128;
    let blocks = 1;
    if rem >= 56 {{
        blocks = 2;
    }}
    let len = blocks * 64;
    let i = rem + 1;
    while i < len {{
        msg[i] = 0;
        i = i + 1;
    }}
    let j = 0;
    while j < 8 {{
        msg[len - 8 + j] = (bits >> (j * 8)) & 255;
        j = j + 1;
    }}
    md5_block(0);
    if blocks == 2 {{
        md5_block(64);
    }}
}}

fn md5_state(i: int) -> int {{
    if i == 0 {{ return a0; }}
    if i == 1 {{ return b0; }}
    if i == 2 {{ return c0; }}
    return d0;
}}
"#
    )
}

/// Tickle source for the MD5 graft.
pub fn tickle_source() -> String {
    let t = table_lines("T", &graft_md5::T, false);
    let s = table_lines("S", &graft_md5::S, false);
    format!(
        r#"
{t}
{s}

proc md5_init {{}} {{
    global a0 b0 c0 d0 total
    set a0 1732584193
    set b0 4023233417
    set c0 2562383102
    set d0 271733878
    set total 0
}}

proc rotl {{x n}} {{
    return [expr (($x << $n) | ($x >> (32 - $n))) & 0xFFFFFFFF]
}}

proc md5_block {{off}} {{
    global a0 b0 c0 d0 T S mw
    for {{set j 0}} {{$j < 16}} {{incr j}} {{
        set b [expr $off + $j * 4]
        set mw($j) [expr [rload msg $b] | ([rload msg [expr $b+1]] << 8) | ([rload msg [expr $b+2]] << 16) | ([rload msg [expr $b+3]] << 24)]
    }}
    set a $a0
    set b $b0
    set c $c0
    set d $d0
    for {{set i 0}} {{$i < 64}} {{incr i}} {{
        if {{$i < 16}} {{
            set f [expr ($b & $c) | (~$b & $d)]
            set g $i
        }} elseif {{$i < 32}} {{
            set f [expr ($d & $b) | (~$d & $c)]
            set g [expr (5 * $i + 1) % 16]
        }} elseif {{$i < 48}} {{
            set f [expr $b ^ $c ^ $d]
            set g [expr (3 * $i + 5) % 16]
        }} else {{
            set f [expr $c ^ ($b | (~$d & 0xFFFFFFFF))]
            set g [expr (7 * $i) % 16]
        }}
        set f [expr $f & 0xFFFFFFFF]
        set tmp $d
        set d $c
        set c $b
        set sum [expr ($a + $f + $T($i) + $mw($g)) & 0xFFFFFFFF]
        set b [expr ($b + [rotl $sum $S($i)]) & 0xFFFFFFFF]
        set a $tmp
    }}
    set a0 [expr ($a0 + $a) & 0xFFFFFFFF]
    set b0 [expr ($b0 + $b) & 0xFFFFFFFF]
    set c0 [expr ($c0 + $c) & 0xFFFFFFFF]
    set d0 [expr ($d0 + $d) & 0xFFFFFFFF]
}}

proc md5_blocks {{n}} {{
    global total
    for {{set k 0}} {{$k < $n}} {{incr k}} {{
        md5_block [expr $k * 64]
    }}
    set total [expr $total + $n * 64]
    return 0
}}

proc md5_final {{rem}} {{
    global total
    set bits [expr ($total + $rem) * 8]
    rstore msg $rem 128
    set blocks 1
    if {{$rem >= 56}} {{ set blocks 2 }}
    set len [expr $blocks * 64]
    for {{set i [expr $rem + 1]}} {{$i < $len}} {{incr i}} {{
        rstore msg $i 0
    }}
    for {{set j 0}} {{$j < 8}} {{incr j}} {{
        rstore msg [expr $len - 8 + $j] [expr ($bits >> ($j * 8)) & 255]
    }}
    md5_block 0
    if {{$blocks == 2}} {{ md5_block 64 }}
    return 0
}}

proc md5_state {{i}} {{
    global a0 b0 c0 d0
    if {{$i == 0}} {{ return $a0 }}
    if {{$i == 1}} {{ return $b0 }}
    if {{$i == 2}} {{ return $c0 }}
    return $d0
}}
"#
    )
}

/// Native implementation of the same ABI (regions in, state in fields).
#[derive(Debug, Default)]
pub struct NativeMd5 {
    state: [u64; 4],
    total: u64,
}

impl NativeMd5 {
    fn block(&mut self, msg: &[i64], off: usize) {
        let mut mw = [0u32; 16];
        for (j, w) in mw.iter_mut().enumerate() {
            let b = off + j * 4;
            *w = (msg[b] as u32 & 0xFF)
                | ((msg[b + 1] as u32 & 0xFF) << 8)
                | ((msg[b + 2] as u32 & 0xFF) << 16)
                | ((msg[b + 3] as u32 & 0xFF) << 24);
        }
        let [mut a, mut b, mut c, mut d] =
            [self.state[0] as u32, self.state[1] as u32, self.state[2] as u32, self.state[3] as u32];
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a
                .wrapping_add(f)
                .wrapping_add(graft_md5::T[i])
                .wrapping_add(mw[g]);
            b = b.wrapping_add(sum.rotate_left(graft_md5::S[i]));
            a = tmp;
        }
        self.state[0] = (self.state[0] as u32).wrapping_add(a) as u64;
        self.state[1] = (self.state[1] as u32).wrapping_add(b) as u64;
        self.state[2] = (self.state[2] as u32).wrapping_add(c) as u64;
        self.state[3] = (self.state[3] as u32).wrapping_add(d) as u64;
    }
}

impl NativeGraft for NativeMd5 {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        match entry {
            "md5_init" => {
                self.state = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
                self.total = 0;
                Ok(0)
            }
            "md5_blocks" => {
                let n = args[0] as usize;
                let msg_id = regions.id("msg")?;
                let msg = regions.region(msg_id).words().to_vec();
                for k in 0..n {
                    self.block(&msg, k * 64);
                }
                self.total += (n * 64) as u64;
                Ok(0)
            }
            "md5_final" => {
                let rem = args[0] as usize;
                let bits = (self.total + rem as u64) * 8;
                let msg_id = regions.id("msg")?;
                let msg = regions.region_mut(msg_id).words_mut();
                msg[rem] = 128;
                let blocks = if rem >= 56 { 2 } else { 1 };
                let len = blocks * 64;
                for w in msg.iter_mut().take(len).skip(rem + 1) {
                    *w = 0;
                }
                for j in 0..8 {
                    msg[len - 8 + j] = ((bits >> (j * 8)) & 255) as i64;
                }
                let snapshot = msg.to_vec();
                self.block(&snapshot, 0);
                if blocks == 2 {
                    self.block(&snapshot, 64);
                }
                Ok(0)
            }
            "md5_state" => Ok(self.state[(args[0] as usize).min(3)] as i64),
            other => Err(graft_api::engine::no_such_entry(other)),
        }
    }
}

/// The portable graft package.
pub fn spec() -> GraftSpec {
    GraftSpec::new("md5-fingerprint", GraftClass::Stream, Motivation::Functionality)
        .region(RegionSpec::data("msg", MSG_LEN))
        .region(RegionSpec::data("mw", 16))
        .entry("md5_init", 0)
        .entry("md5_blocks", 1)
        .entry("md5_final", 1)
        .entry("md5_state", 1)
        .with_grail(&grail_source())
        .with_tickle(&tickle_source())
        .with_native(Box::new(|| Box::<NativeMd5>::default()))
}

/// Kernel-side wrapper: drives any engine through the MD5 graft ABI as
/// a byte-stream filter.
pub struct Md5Graft<'e> {
    engine: &'e mut dyn ExtensionEngine,
    /// Tail bytes not yet forming a whole 64-byte block.
    pending: Vec<u8>,
    words: Vec<i64>,
    /// Pre-bound handles (two-phase ABI): names are resolved once in
    /// [`Md5Graft::start`]; the streaming hot path below is entirely
    /// id-based — no string lookup per chunk.
    msg: RegionId,
    e_blocks: EntryId,
    e_final: EntryId,
    e_state: EntryId,
}

impl<'e> Md5Graft<'e> {
    /// Starts a fingerprint on `engine` (which must host the MD5 graft).
    pub fn start(engine: &'e mut dyn ExtensionEngine) -> Result<Self, GraftError> {
        let msg = engine.bind_region("msg")?;
        let e_init = engine.bind_entry("md5_init")?;
        let e_blocks = engine.bind_entry("md5_blocks")?;
        let e_final = engine.bind_entry("md5_final")?;
        let e_state = engine.bind_entry("md5_state")?;
        engine.invoke_id(e_init, &[])?;
        Ok(Md5Graft {
            engine,
            pending: Vec::with_capacity(64),
            words: vec![0i64; CHUNK],
            msg,
            e_blocks,
            e_final,
            e_state,
        })
    }

    /// Streams `data` through the graft.
    pub fn update(&mut self, data: &[u8]) -> Result<(), GraftError> {
        let mut rest = data;
        if !self.pending.is_empty() {
            let need = 64 - self.pending.len();
            let take = need.min(rest.len());
            self.pending.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.pending.len() == 64 {
                let block: Vec<u8> = std::mem::take(&mut self.pending);
                self.feed_blocks(&block)?;
            } else {
                return Ok(());
            }
        }
        let whole = rest.len() - rest.len() % 64;
        let mut at = 0;
        while at < whole {
            let n = (whole - at).min(CHUNK);
            self.feed_blocks(&rest[at..at + n])?;
            at += n;
        }
        self.pending.extend_from_slice(&rest[whole..]);
        Ok(())
    }

    fn feed_blocks(&mut self, bytes: &[u8]) -> Result<(), GraftError> {
        debug_assert!(bytes.len().is_multiple_of(64) && bytes.len() <= CHUNK);
        for (w, &b) in self.words.iter_mut().zip(bytes) {
            *w = b as i64;
        }
        self.engine
            .load_region_id(self.msg, 0, &self.words[..bytes.len()])?;
        self.engine
            .invoke_id(self.e_blocks, &[(bytes.len() / 64) as i64])
            .map(|_| ())
    }

    /// Pads, finishes, and returns the 16-byte fingerprint.
    pub fn finish(self) -> Result<[u8; 16], GraftError> {
        let rem = self.pending.len();
        let tail: Vec<i64> = self.pending.iter().map(|&b| b as i64).collect();
        self.engine.load_region_id(self.msg, 0, &tail)?;
        self.engine.invoke_id(self.e_final, &[rem as i64])?;
        let mut out = [0u8; 16];
        for i in 0..4 {
            let w = self.engine.invoke_id(self.e_state, &[i as i64])? as u32;
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        Ok(out)
    }
}

/// One-shot fingerprint through a graft engine.
pub fn digest_via(engine: &mut dyn ExtensionEngine, data: &[u8]) -> Result<[u8; 16], GraftError> {
    let mut g = Md5Graft::start(engine)?;
    g.update(data)?;
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_bytecode::BytecodeEngine;
    use engine_native::{load_grail, SafetyMode};
    use engine_script::ScriptEngine;

    fn grail_engine(mode: SafetyMode) -> Box<dyn ExtensionEngine> {
        let spec = spec();
        Box::new(load_grail(spec.grail.as_ref().unwrap(), &spec.regions, mode).unwrap())
    }

    #[test]
    fn grail_md5_matches_rfc_vectors() {
        let cases: [&[u8]; 4] = [b"", b"abc", b"message digest", b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"];
        let mut e = grail_engine(SafetyMode::Safe { nil_checks: true });
        for data in cases {
            let got = digest_via(e.as_mut(), data).unwrap();
            assert_eq!(got, graft_md5::digest(data), "input {data:?}");
        }
    }

    #[test]
    fn all_compiled_modes_agree_on_multi_block_input() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 37 % 256) as u8).collect();
        let want = graft_md5::digest(&data);
        for mode in [
            SafetyMode::Unchecked,
            SafetyMode::Safe { nil_checks: true },
            SafetyMode::Sfi { read_protect: false },
            SafetyMode::Sfi { read_protect: true },
        ] {
            let mut e = grail_engine(mode);
            assert_eq!(digest_via(e.as_mut(), &data).unwrap(), want, "{mode:?}");
        }
    }

    #[test]
    fn bytecode_md5_matches_reference() {
        let spec = spec();
        let mut e =
            BytecodeEngine::load_grail(spec.grail.as_ref().unwrap(), &spec.regions).unwrap();
        let data = vec![0x5Au8; 300];
        assert_eq!(digest_via(&mut e, &data).unwrap(), graft_md5::digest(&data));
    }

    #[test]
    fn tickle_md5_matches_reference_on_small_input() {
        let spec = spec();
        let mut e = ScriptEngine::load(spec.tickle.as_ref().unwrap(), &spec.regions).unwrap();
        for data in [&b"abc"[..], &b"0123456789012345678901234567890123456789012345678901234567890123456789"[..]] {
            assert_eq!(
                digest_via(&mut e, data).unwrap(),
                graft_md5::digest(data),
                "input {data:?}"
            );
        }
    }

    #[test]
    fn native_graft_matches_reference() {
        let spec = spec();
        let mut e =
            graft_api::NativeEngine::new(&spec.regions, (spec.native.as_ref().unwrap())())
                .unwrap();
        let data: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(digest_via(&mut e, &data).unwrap(), graft_md5::digest(&data));
    }

    #[test]
    fn streaming_split_points_do_not_matter() {
        let data: Vec<u8> = (0..500u32).map(|i| (i * 13 % 256) as u8).collect();
        let want = graft_md5::digest(&data);
        let mut e = grail_engine(SafetyMode::Unchecked);
        for split in [1usize, 63, 64, 65, 200, 499] {
            let mut g = Md5Graft::start(e.as_mut()).unwrap();
            g.update(&data[..split]).unwrap();
            g.update(&data[split..]).unwrap();
            assert_eq!(g.finish().unwrap(), want, "split {split}");
        }
    }

    #[test]
    fn padding_boundaries_are_correct_in_grail() {
        let mut e = grail_engine(SafetyMode::Safe { nil_checks: true });
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![b'y'; len];
            assert_eq!(
                digest_via(e.as_mut(), &data).unwrap(),
                graft_md5::digest(&data),
                "len {len}"
            );
        }
    }

    #[test]
    fn engine_state_resets_between_digests() {
        let mut e = grail_engine(SafetyMode::Unchecked);
        let first = digest_via(e.as_mut(), b"first").unwrap();
        let _ = digest_via(e.as_mut(), b"second").unwrap();
        let again = digest_via(e.as_mut(), b"first").unwrap();
        assert_eq!(first, again);
    }
}
