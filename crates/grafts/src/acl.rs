//! An access-control-list graft (Black box; the §3.3 ACL example).
//!
//! "At the center of the code that implements Access Control Lists is a
//! small database that accepts a triple containing a file access
//! request, a user ID, and a file ID, and responds yes or no." The
//! graft stores the ACL as `(uid, file, mode-mask)` triples in a region
//! and answers `acl_check(uid, file, mode)`.
//!
//! Modes are a bit mask: 1 = read, 2 = write, 4 = execute. A uid of −1
//! in a rule matches any user (a "world" entry).

use graft_api::{
    ExtensionEngine, GraftClass, GraftError, GraftSpec, Motivation, NativeGraft, RegionSpec,
    RegionStore,
};

/// Maximum ACL entries.
pub const MAX_RULES: usize = 256;

/// Mode bit: read.
pub const READ: i64 = 1;
/// Mode bit: write.
pub const WRITE: i64 = 2;
/// Mode bit: execute.
pub const EXEC: i64 = 4;

/// Grail source for the ACL graft.
pub const GRAIL: &str = r#"
// ACL check: rules are (uid, file, modemask) triples; rules[0] = count.
// uid -1 matches any user. Deny unless some rule grants every bit.

fn acl_check(uid: int, file: int, mode: int) -> int {
    let n = rules[0];
    let i = 0;
    while i < n {
        let base = 1 + i * 3;
        let ruid = rules[base];
        if (ruid == uid || ruid == -1) && rules[base + 1] == file {
            if (rules[base + 2] & mode) == mode {
                return 1;
            }
        }
        i = i + 1;
    }
    return 0;
}
"#;

/// Tickle source for the ACL graft.
pub const TICKLE: &str = r#"
proc acl_check {uid file mode} {
    set n [rload rules 0]
    for {set i 0} {$i < $n} {incr i} {
        set base [expr 1 + $i * 3]
        set ruid [rload rules $base]
        if {($ruid == $uid || $ruid == -1) && [rload rules [expr $base + 1]] == $file} {
            if {([rload rules [expr $base + 2]] & $mode) == $mode} { return 1 }
        }
    }
    return 0
}
"#;

/// Native implementation of the same ABI.
#[derive(Debug, Default)]
pub struct NativeAcl;

impl NativeGraft for NativeAcl {
    fn call(
        &mut self,
        entry: &str,
        args: &[i64],
        regions: &mut RegionStore,
    ) -> Result<i64, GraftError> {
        if entry != "acl_check" {
            return Err(graft_api::engine::no_such_entry(entry));
        }
        let (uid, file, mode) = (args[0], args[1], args[2]);
        let id = regions.id("rules")?;
        let rules = regions.region(id).words();
        let n = rules[0] as usize;
        for i in 0..n {
            let base = 1 + i * 3;
            let ruid = rules[base];
            if (ruid == uid || ruid == -1)
                && rules[base + 1] == file
                && (rules[base + 2] & mode) == mode
            {
                return Ok(1);
            }
        }
        Ok(0)
    }
}

/// One ACL rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// User id, or −1 for any user.
    pub uid: i64,
    /// File id.
    pub file: i64,
    /// Granted mode bits.
    pub modes: i64,
}

/// The portable graft package.
pub fn spec() -> GraftSpec {
    GraftSpec::new("acl-check", GraftClass::BlackBox, Motivation::Functionality)
        .region(RegionSpec::data("rules", 1 + 3 * MAX_RULES))
        .entry("acl_check", 3)
        .with_grail(GRAIL)
        .with_tickle(TICKLE)
        .with_native(Box::new(|| Box::new(NativeAcl)))
}

/// Marshals a rule table into an engine.
pub fn load_rules(engine: &mut dyn ExtensionEngine, rules: &[Rule]) -> Result<(), GraftError> {
    assert!(rules.len() <= MAX_RULES);
    let mut words = vec![0i64; 1 + 3 * rules.len()];
    words[0] = rules.len() as i64;
    for (i, r) in rules.iter().enumerate() {
        let base = 1 + i * 3;
        words[base] = r.uid;
        words[base + 1] = r.file;
        words[base + 2] = r.modes;
    }
    engine.load_region("rules", 0, &words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_bytecode::BytecodeEngine;
    use engine_native::{load_grail, SafetyMode};
    use engine_script::ScriptEngine;

    fn rules() -> Vec<Rule> {
        vec![
            Rule { uid: 100, file: 1, modes: READ | WRITE },
            Rule { uid: -1, file: 2, modes: READ },
            Rule { uid: 200, file: 1, modes: READ },
            Rule { uid: 100, file: 3, modes: EXEC },
        ]
    }

    fn engines() -> Vec<Box<dyn ExtensionEngine>> {
        let spec = spec();
        let grail = spec.grail.as_ref().unwrap();
        let tickle = spec.tickle.as_ref().unwrap();
        vec![
            Box::new(load_grail(grail, &spec.regions, SafetyMode::Unchecked).unwrap()),
            Box::new(
                load_grail(grail, &spec.regions, SafetyMode::Safe { nil_checks: true }).unwrap(),
            ),
            Box::new(BytecodeEngine::load_grail(grail, &spec.regions).unwrap()),
            Box::new(ScriptEngine::load(tickle, &spec.regions).unwrap()),
            Box::new(
                graft_api::NativeEngine::new(&spec.regions, (spec.native.as_ref().unwrap())())
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn decisions_match_across_technologies() {
        // (uid, file, mode) → expected verdict.
        let queries = [
            (100, 1, READ, 1),
            (100, 1, READ | WRITE, 1),
            (100, 1, EXEC, 0),
            (200, 1, READ, 1),
            (200, 1, WRITE, 0),
            (555, 2, READ, 1), // world rule
            (555, 2, WRITE, 0),
            (100, 3, EXEC, 1),
            (100, 9, READ, 0), // no rule for file 9
        ];
        for engine in engines().iter_mut() {
            load_rules(engine.as_mut(), &rules()).unwrap();
            for &(uid, file, mode, want) in &queries {
                let got = engine.invoke("acl_check", &[uid, file, mode]).unwrap();
                assert_eq!(got, want, "{uid}/{file}/{mode} on {:?}", engine.technology());
            }
        }
    }

    #[test]
    fn empty_acl_denies_everything() {
        for engine in engines().iter_mut() {
            load_rules(engine.as_mut(), &[]).unwrap();
            assert_eq!(engine.invoke("acl_check", &[1, 1, READ]).unwrap(), 0);
        }
    }
}
