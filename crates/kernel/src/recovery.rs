//! Crash-consistent graft state: salvage at detach, re-seed on
//! recovery.
//!
//! The paper's hardest taxonomy class is the **black box** graft: the
//! Logical Disk map is critical kernel state that lives *inside* the
//! extension, so a bare quarantine detach throws the logical→physical
//! map away and the kernel keeps serving on a corrupt view of the
//! disk. Rex frames the requirement as *graceful exit with
//! kernel-resource cleanup*; production extension hosts (the eBPF
//! runtime paper) pair runtime traps with recovery paths rather than
//! bare detach. This module is that recovery path for grafts:
//!
//! * A graft is installed with a **salvage plan** — the region names
//!   that hold kernel-critical state (for the Logical Disk graft, the
//!   `map` region).
//! * When the quarantine supervisor detaches the graft, it first lifts
//!   the planned regions out of the trapped engine through the
//!   [`snapshot_region`] seam into a [`SalvagedState`].
//! * The kernel then re-seeds either a **replacement graft** (via
//!   [`SalvagedState::restore_into`]) or the **built-in policy** (by
//!   reading the salvaged words directly) — degraded mode keeps
//!   serving with the salvaged map instead of an empty one.
//!
//! Snapshotting a *trapped* engine is sound for every technology in
//! the comparison: traps unwind before any partially-applied region
//! write (safe-compiled bounds checks and SFI masks fault before the
//! store retires; the interpreter and bytecode VM check before
//! writing; the upcall server survives its client's trap), so the
//! regions hold the last consistent pre-trap state.
//!
//! [`snapshot_region`]: ExtensionEngine::snapshot_region

use graft_api::{ExtensionEngine, GraftError, Technology};

/// Region contents lifted out of a graft's engine by the quarantine
/// supervisor at detach time (or explicitly, for checkpointing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvagedState {
    /// Name of the graft the state was salvaged from.
    pub graft: String,
    /// Technology the graft ran under.
    pub tech: Technology,
    /// `(region name, contents)` pairs, in salvage-plan order.
    pub regions: Vec<(String, Vec<i64>)>,
}

impl SalvagedState {
    /// The salvaged contents of one region, by name.
    pub fn region(&self, name: &str) -> Option<&[i64]> {
        self.regions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, words)| words.as_slice())
    }

    /// Total salvaged words across all regions.
    pub fn words(&self) -> usize {
        self.regions.iter().map(|(_, w)| w.len()).sum()
    }

    /// Re-seeds a replacement engine: binds each salvaged region by
    /// name and restores its contents bit-exact. Fails without partial
    /// effect on the *current* region (`restore_region` rejects length
    /// mismatches before any write), so a replacement whose region
    /// layout diverged is detected, not silently corrupted.
    pub fn restore_into(&self, engine: &mut dyn ExtensionEngine) -> Result<(), GraftError> {
        for (name, words) in &self.regions {
            let id = engine.bind_region(name)?;
            engine.restore_region(id, words)?;
        }
        Ok(())
    }
}

/// Lifts the planned regions out of `engine`. Returns `None` when any
/// region fails to snapshot — a half-salvage is worse than none,
/// because the caller would re-seed a *mixed* state; on `None` the
/// kernel falls back to rebuilding from durable summaries instead.
pub(crate) fn salvage(
    graft: &str,
    tech: Technology,
    engine: &dyn ExtensionEngine,
    plan: &[String],
) -> Option<SalvagedState> {
    let mut regions = Vec::with_capacity(plan.len());
    for name in plan {
        let id = engine.bind_region(name).ok()?;
        let words = engine.snapshot_region(id).ok()?;
        regions.push((name.clone(), words));
    }
    Some(SalvagedState {
        graft: graft.to_string(),
        tech,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::{NativeEngine, RegionSpec, RegionStore};

    fn engine(specs: &[RegionSpec]) -> NativeEngine {
        NativeEngine::new(
            specs,
            Box::new(|_: &str, _: &[i64], _: &mut RegionStore| Ok(0)),
        )
        .unwrap()
    }

    #[test]
    fn salvage_then_restore_round_trips() {
        let specs = [RegionSpec::data("map", 4), RegionSpec::data("aux", 2)];
        let mut donor = engine(&specs);
        donor.load_region("map", 0, &[7, -1, 9, i64::MIN]).unwrap();
        donor.load_region("aux", 0, &[5, 6]).unwrap();
        let plan = vec!["map".to_string(), "aux".to_string()];
        let s = salvage("donor", Technology::RustNative, &donor, &plan).unwrap();
        assert_eq!(s.region("map").unwrap(), &[7, -1, 9, i64::MIN]);
        assert_eq!(s.region("aux").unwrap(), &[5, 6]);
        assert_eq!(s.words(), 6);
        assert!(s.region("nope").is_none());

        let mut replacement = engine(&specs);
        s.restore_into(&mut replacement).unwrap();
        assert_eq!(replacement.read_region("map", 3).unwrap(), i64::MIN);
        assert_eq!(replacement.read_region("aux", 1).unwrap(), 6);
    }

    #[test]
    fn salvage_is_all_or_nothing() {
        let donor = engine(&[RegionSpec::data("map", 4)]);
        let plan = vec!["map".to_string(), "missing".to_string()];
        assert!(salvage("donor", Technology::RustNative, &donor, &plan).is_none());
    }

    #[test]
    fn restore_into_mismatched_layout_fails_cleanly() {
        let donor = engine(&[RegionSpec::data("map", 4)]);
        let plan = vec!["map".to_string()];
        let s = salvage("donor", Technology::RustNative, &donor, &plan).unwrap();
        // Replacement declares a shorter map: rejected before any write.
        let mut replacement = engine(&[RegionSpec::data("map", 2)]);
        assert!(s.restore_into(&mut replacement).is_err());
    }
}
