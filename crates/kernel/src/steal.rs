//! Adaptive sharded dispatch: bounded per-shard run queues with work
//! stealing and graft-affinity placement.
//!
//! [`ShardedHost`](crate::shard::ShardedHost)'s original data plane is
//! statically keyed: whoever drives the shards decides where each
//! dispatch lands, and under the 80/20-skewed workloads that dominate
//! the paper's tables a hash-of-key placement hot-spots one shard
//! (`kernel.shard.imbalance_pct` warns at >= 20%). [`RunQueues`] is the
//! refactored plane: submitters hash work to a *home* shard's bounded
//! queue, and shards pull adaptively sized batches from their own queue
//! — stealing from the deepest victim when theirs runs dry. Placement
//! and theft both prefer shards that are *warm* for the work item's
//! graft (their replica has served it before, so its salvaged /
//! steady-state region writes are resident there — the post-recovery
//! affinity argument), mirroring how per-CPU extension runtimes get
//! their multi-core wins from load-aware placement rather than static
//! partitioning.
//!
//! Three properties make the queues safe to put under the quarantine
//! supervisor:
//!
//! * **Determinism.** Every placement and steal decision is a pure
//!   function of queue contents and the warm set — no clocks, no
//!   randomness — so a seeded [`VirtualShards`] drive replays the exact
//!   same interleaving (the property harness in
//!   `tests/shard_properties.rs` depends on this).
//! * **Epoch-checked handoff.** A submitter stamps each [`WorkItem`]
//!   with the host epoch it observed; the executing shard syncs
//!   membership *before* dispatching a drained batch, so a stolen item
//!   never runs against a staler chain than its submitter saw.
//! * **Exactly-once accounting.** An item is owned by exactly one queue
//!   slot and drained exactly once (pop under the queue mutex), so a
//!   stolen dispatch still counts toward ledgers and the 3-strike
//!   supervisor exactly once, on the shard that executed it.
//!
//! [`VirtualShards`]: crate::shard::VirtualShards

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`RunQueues`] plane.
#[derive(Debug, Clone, Copy)]
pub struct StealPolicy {
    /// Bounded depth of each shard's queue; a full home queue diverts
    /// (stealing on) or pushes back on the submitter (stealing off).
    pub queue_cap: usize,
    /// Most items one steal transfers from a victim's back end. Kept
    /// equal to [`batch_max`] by default: a thief that could only grab
    /// half a batch would systematically fall behind the hot shard's
    /// own full-width drains, re-skewing the very load stealing exists
    /// to flatten.
    ///
    /// [`batch_max`]: StealPolicy::batch_max
    pub steal_batch: usize,
    /// Ceiling on the adaptive take: a shard never executes more than
    /// this many items per drain, however deep its queue grows.
    pub batch_max: usize,
    /// Work stealing + divert-on-full placement. Off = the static
    /// plane: pure hash placement with backpressure, for A/B pricing.
    pub stealing: bool,
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            queue_cap: 256,
            steal_batch: 32,
            batch_max: 32,
            stealing: true,
        }
    }
}

impl StealPolicy {
    /// The static (no-steal) plane with the same bounds.
    pub fn static_plane() -> Self {
        StealPolicy {
            stealing: false,
            ..StealPolicy::default()
        }
    }
}

/// One queued dispatch: a placement key, the graft it targets (0 =
/// none/unknown — no affinity), the submitter's observed host epoch,
/// and an opaque payload the executor marshals into arguments.
#[derive(Debug, Clone)]
pub struct WorkItem<T> {
    /// Placement key (hashed to the home shard).
    pub key: u64,
    /// Raw graft id for affinity (0 when the work targets a whole
    /// chain rather than one graft, or affinity is unwanted).
    pub graft: u64,
    /// Host epoch observed by the submitter; the executing shard syncs
    /// to at least this epoch before dispatching the item.
    pub epoch: u64,
    /// Marshalling payload, interpreted by the drain callback.
    pub payload: T,
}

/// Counters for one plane's lifetime, published as `kernel.shard.*`.
#[derive(Debug, Default)]
struct QueueCounters {
    enqueued: AtomicU64,
    diverted: AtomicU64,
    steals: AtomicU64,
    steal_fail: AtomicU64,
    batches: AtomicU64,
    batched_items: AtomicU64,
}

/// A read-only snapshot of a plane's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted by `submit`.
    pub enqueued: u64,
    /// Items placed away from their home shard (home queue full).
    pub diverted: u64,
    /// Items transferred by steals.
    pub steals: u64,
    /// Drains that found every queue empty (failed steal attempts).
    pub steal_fail: u64,
    /// Batches handed out by `take`.
    pub batches: u64,
    /// Items handed out by `take` (`batched_items / batches` is the
    /// realized adaptive batch width).
    pub batched_items: u64,
}

struct ShardQueue<T> {
    items: Mutex<VecDeque<WorkItem<T>>>,
    /// Mirror of `items.len()`, readable without the lock for victim
    /// selection and load probes.
    depth: AtomicUsize,
}

impl<T> Default for ShardQueue<T> {
    fn default() -> Self {
        ShardQueue {
            items: Mutex::new(VecDeque::new()),
            depth: AtomicUsize::new(0),
        }
    }
}

struct Inner<T> {
    policy: StealPolicy,
    queues: Vec<ShardQueue<T>>,
    /// Per-shard 64-bit warm set: bit `hash(graft) % 64` is set once
    /// the shard's replica has executed that graft. Approximate (hash
    /// collisions only ever *add* affinity), monotone, lock-free.
    warm: Vec<AtomicU64>,
    counters: QueueCounters,
}

/// The adaptive data plane: one bounded run queue per shard, shared by
/// submitters and executors. Cheaply cloneable (an `Arc` handle); all
/// methods take `&self`, so any thread may submit while shard threads
/// drain.
pub struct RunQueues<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for RunQueues<T> {
    fn clone(&self) -> Self {
        RunQueues {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// SplitMix64: the placement hash (also used to pick a graft's warm
/// bit). Avalanches well enough that adjacent keys land on different
/// shards.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn warm_bit(graft: u64) -> u64 {
    1u64 << (mix(graft) & 63)
}

impl<T> RunQueues<T> {
    /// A plane with one bounded queue per shard.
    pub fn new(shards: usize, policy: StealPolicy) -> Self {
        assert!(shards > 0, "a run-queue plane needs at least one shard");
        assert!(policy.queue_cap > 0, "queue_cap must be positive");
        RunQueues {
            inner: Arc::new(Inner {
                policy,
                queues: (0..shards).map(|_| ShardQueue::default()).collect(),
                warm: (0..shards).map(|_| AtomicU64::new(0)).collect(),
                counters: QueueCounters::default(),
            }),
        }
    }

    /// Number of shard queues.
    pub fn shards(&self) -> usize {
        self.inner.queues.len()
    }

    /// The plane's tuning knobs.
    pub fn policy(&self) -> StealPolicy {
        self.inner.policy
    }

    /// The home shard a key hashes to.
    pub fn home(&self, key: u64) -> usize {
        (mix(key) % self.inner.queues.len() as u64) as usize
    }

    /// Current depth of one shard's queue (racy probe).
    pub fn depth(&self, shard: usize) -> usize {
        self.inner.queues[shard].depth.load(Ordering::Acquire)
    }

    /// Total queued items across all shards (racy probe).
    pub fn total_depth(&self) -> usize {
        self.inner
            .queues
            .iter()
            .map(|q| q.depth.load(Ordering::Acquire))
            .sum()
    }

    /// Marks `shard`'s replica warm for `graft`: placement and theft
    /// will prefer it for that graft's future work. Executors call this
    /// as they dispatch.
    pub fn mark_warm(&self, shard: usize, graft: u64) {
        if graft != 0 {
            self.inner.warm[shard].fetch_or(warm_bit(graft), Ordering::AcqRel);
        }
    }

    /// Whether `shard` is warm for `graft`.
    pub fn is_warm(&self, shard: usize, graft: u64) -> bool {
        graft != 0 && self.inner.warm[shard].load(Ordering::Acquire) & warm_bit(graft) != 0
    }

    /// Submits one item to its home shard's bounded queue.
    ///
    /// When the home queue is full: with stealing on, the item is
    /// *diverted* to the least-loaded shard that is warm for its graft
    /// (least-loaded overall when none is), which is what flattens a
    /// skewed key distribution at submit time; with stealing off — the
    /// static plane — or with every queue at capacity, the item comes
    /// back as `Err` and the submitter must drain before retrying
    /// (backpressure, never silent loss). `Ok` carries the shard the
    /// item landed on.
    pub fn submit(&self, item: WorkItem<T>) -> Result<usize, WorkItem<T>> {
        let home = self.home(item.key);
        let item = match self.try_push(home, item) {
            Ok(()) => {
                self.inner.counters.enqueued.fetch_add(1, Ordering::Relaxed);
                return Ok(home);
            }
            Err(item) => item,
        };
        if !self.inner.policy.stealing {
            return Err(item);
        }
        // Divert: least-loaded warm shard for this graft, else
        // least-loaded overall. Ties break to the lowest index, so the
        // choice is deterministic given the queue depths.
        let cap = self.inner.policy.queue_cap;
        let pick = |warm_only: bool| -> Option<usize> {
            (0..self.inner.queues.len())
                .filter(|&s| s != home && (!warm_only || self.is_warm(s, item.graft)))
                .map(|s| (self.depth(s), s))
                .filter(|&(d, _)| d < cap)
                .min()
                .map(|(_, s)| s)
        };
        let Some(target) = pick(true).or_else(|| pick(false)) else {
            return Err(item); // every queue full: backpressure
        };
        match self.try_push(target, item) {
            Ok(()) => {
                self.inner.counters.enqueued.fetch_add(1, Ordering::Relaxed);
                self.inner.counters.diverted.fetch_add(1, Ordering::Relaxed);
                Ok(target)
            }
            // Lost a race to another submitter between the probe and
            // the push; report backpressure rather than looping.
            Err(item) => Err(item),
        }
    }

    /// Pushes onto `shard` unless its queue is at capacity (the item
    /// comes back in `Err`).
    fn try_push(&self, shard: usize, item: WorkItem<T>) -> Result<(), WorkItem<T>> {
        let q = &self.inner.queues[shard];
        let mut items = q.items.lock().expect("queue lock");
        if items.len() >= self.inner.policy.queue_cap {
            return Err(item);
        }
        items.push_back(item);
        q.depth.store(items.len(), Ordering::Release);
        Ok(())
    }

    /// Drains one adaptively sized batch for `shard` into `out`;
    /// returns the number of items appended.
    ///
    /// The shard's own queue is served from the *front* (FIFO). The
    /// batch widens with backlog — `(depth / 2).max(1)`, capped at
    /// [`StealPolicy::batch_max`] — so a loaded shard amortizes chain
    /// setup over more invocations while an idle one stays at
    /// latency-1.
    ///
    /// With stealing on, the selected victim is robbed from the *back*
    /// (its owner keeps the FIFO front) in two situations: the classic
    /// starvation steal (own queue empty), and a *balance* steal —
    /// when the victim's backlog is at least twice this shard's own
    /// depth, the theft preempts the own-queue drain, so a steady
    /// skewed trickle is flattened instead of being served at the hot
    /// shard's pace. Victims whose next-stolen item belongs to a graft
    /// this shard is warm for are preferred; at most
    /// [`StealPolicy::steal_batch`] and never more than half the
    /// victim's backlog (rounded up) move per theft.
    pub fn take(&self, shard: usize, out: &mut Vec<WorkItem<T>>) -> usize {
        let policy = &self.inner.policy;
        let own = self.depth(shard);
        if policy.stealing {
            match self.select_victim(shard) {
                Some(victim) if self.depth(victim) >= own.saturating_mul(2).max(1) => {
                    let n = self.steal_from(victim, out);
                    if n > 0 {
                        return n;
                    }
                    // The victim raced to empty; fall through to the
                    // own queue (steal_from recorded the failure).
                }
                None if own == 0 => {
                    // Every queue on the plane is empty.
                    self.inner.counters.steal_fail.fetch_add(1, Ordering::Relaxed);
                    return 0;
                }
                _ => {}
            }
        }
        let q = &self.inner.queues[shard];
        let mut items = q.items.lock().expect("queue lock");
        if items.is_empty() {
            return 0;
        }
        let n = (items.len() / 2).max(1).min(policy.batch_max);
        out.extend(items.drain(..n));
        q.depth.store(items.len(), Ordering::Release);
        let after = items.len();
        drop(items);
        self.note_batch(n, after);
        n
    }

    /// Victim selection: a victim whose back item belongs to a graft
    /// `shard` is warm for outranks any cold victim; within a warmth
    /// class the deepest queue wins; ties break to the lowest shard
    /// index. Pure function of queue state — deterministic under a
    /// seeded driver. `None` when every other queue is empty.
    fn select_victim(&self, shard: usize) -> Option<usize> {
        let mut best: Option<(bool, usize, std::cmp::Reverse<usize>)> = None;
        for s in 0..self.inner.queues.len() {
            if s == shard {
                continue;
            }
            let depth = self.depth(s);
            if depth == 0 {
                continue;
            }
            let back_graft = self.inner.queues[s]
                .items
                .lock()
                .expect("queue lock")
                .back()
                .map_or(0, |i| i.graft);
            let warm = self.is_warm(shard, back_graft);
            let cand = (warm, depth, std::cmp::Reverse(s));
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
            }
        }
        best.map(|(_, _, std::cmp::Reverse(victim))| victim)
    }

    /// Steals the back half of `victim`'s queue (capped at
    /// [`StealPolicy::steal_batch`]) into `out`, in queue order.
    fn steal_from(&self, victim: usize, out: &mut Vec<WorkItem<T>>) -> usize {
        let q = &self.inner.queues[victim];
        let mut items = q.items.lock().expect("queue lock");
        // Re-check under the lock: the victim may have been drained.
        if items.is_empty() {
            self.inner.counters.steal_fail.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        let n = items.len().div_ceil(2).min(self.inner.policy.steal_batch);
        let split = items.len() - n;
        out.extend(items.drain(split..));
        q.depth.store(items.len(), Ordering::Release);
        drop(items);
        self.inner.counters.steals.fetch_add(n as u64, Ordering::Relaxed);
        self.note_batch(n, 0);
        n
    }

    fn note_batch(&self, n: usize, depth_after: usize) {
        self.inner.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .batched_items
            .fetch_add(n as u64, Ordering::Relaxed);
        if graft_telemetry::enabled() {
            // Depth the drain observed (batch + what it left behind):
            // the backlog signal the adaptive width responds to.
            graft_telemetry::histogram!("kernel.shard.queue_depth")
                .record((n + depth_after) as u64);
        }
    }

    /// Snapshot of the plane's counters.
    pub fn stats(&self) -> QueueStats {
        let c = &self.inner.counters;
        QueueStats {
            enqueued: c.enqueued.load(Ordering::Relaxed),
            diverted: c.diverted.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            steal_fail: c.steal_fail.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_items: c.batched_items.load(Ordering::Relaxed),
        }
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        if !graft_telemetry::enabled() {
            return;
        }
        let c = &self.counters;
        graft_telemetry::counter!("kernel.shard.enqueued")
            .add(c.enqueued.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.diverted")
            .add(c.diverted.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.steals").add(c.steals.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.steal_fail")
            .add(c.steal_fail.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.batches")
            .add(c.batches.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.batch_items")
            .add(c.batched_items.load(Ordering::Relaxed));
        if self.policy.stealing {
            graft_telemetry::counter!("kernel.shard.steal_mode").add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(key: u64, graft: u64) -> WorkItem<u64> {
        WorkItem {
            key,
            graft,
            epoch: 0,
            payload: key,
        }
    }

    #[test]
    fn submit_routes_by_key_hash_and_take_preserves_fifo() {
        // Static plane: with stealing on, a shard whose queue runs
        // shallow balance-steals foreign items mid-drain (covered by
        // `balance_steal_preempts_a_shallow_drain`), which would
        // interleave this test's own-queue FIFO check.
        let q: RunQueues<u64> = RunQueues::new(4, StealPolicy::static_plane());
        let mut homes = vec![];
        for k in 0..32 {
            homes.push(q.submit(item(k, 1)).expect("room"));
        }
        // Same key, same home — placement is deterministic.
        for k in 0..32 {
            assert_eq!(q.home(k), homes[k as usize]);
        }
        assert_eq!(q.total_depth(), 32);
        // Draining a shard's own queue yields its items in submit order.
        let s = homes[0];
        let expected: Vec<u64> = (0..32).filter(|&k| q.home(k) == s).collect();
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while q.depth(s) > 0 {
            buf.clear();
            q.take(s, &mut buf);
            got.extend(buf.iter().map(|w| w.payload));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn adaptive_batch_widens_with_backlog_and_caps() {
        let q: RunQueues<u64> = RunQueues::new(1, StealPolicy::default());
        for k in 0..100 {
            q.submit(item(k, 0)).expect("room");
        }
        let mut buf = Vec::new();
        // depth 100 -> take 32 (batch_max); depth 68 -> 32 again;
        // depth 36 -> 18; the width halves with the backlog.
        assert_eq!(q.take(0, &mut buf), 32);
        buf.clear();
        assert_eq!(q.take(0, &mut buf), 32);
        buf.clear();
        assert_eq!(q.take(0, &mut buf), 18);
        let st = q.stats();
        assert_eq!(st.batches, 3);
        assert_eq!(st.batched_items, 82);
        // A single queued item still drains immediately (latency-1).
        while q.depth(0) > 0 {
            buf.clear();
            q.take(0, &mut buf);
        }
        q.submit(item(0, 0)).expect("room");
        buf.clear();
        assert_eq!(q.take(0, &mut buf), 1);
    }

    #[test]
    fn full_home_queue_diverts_to_least_loaded_and_backpressures_static() {
        let policy = StealPolicy {
            queue_cap: 4,
            ..StealPolicy::default()
        };
        let q: RunQueues<u64> = RunQueues::new(3, policy);
        let hot = 7u64; // one hot key: everything homes to one shard
        let home = q.home(hot);
        for _ in 0..4 {
            assert_eq!(q.submit(item(hot, 0)).expect("room"), home);
        }
        // Queue full: the 5th submit diverts off the home shard.
        let diverted_to = q.submit(item(hot, 0)).expect("diverts");
        assert_ne!(diverted_to, home);
        assert_eq!(q.stats().diverted, 1);
        // The static plane backpressures instead.
        let st: RunQueues<u64> = RunQueues::new(3, StealPolicy {
            queue_cap: 4,
            ..StealPolicy::static_plane()
        });
        for _ in 0..4 {
            st.submit(item(hot, 0)).expect("room");
        }
        let back = st.submit(item(hot, 0));
        assert!(back.is_err(), "static plane must backpressure when full");
        assert_eq!(st.stats().diverted, 0);
    }

    #[test]
    fn divert_prefers_the_warm_shard_for_the_graft() {
        let policy = StealPolicy {
            queue_cap: 2,
            ..StealPolicy::default()
        };
        let q: RunQueues<u64> = RunQueues::new(4, policy);
        let hot = 3u64;
        let home = q.home(hot);
        // Warm a non-home shard for graft 9; load another non-home
        // shard less, so least-loaded-overall would pick differently.
        let warm_shard = (home + 1) % 4;
        q.mark_warm(warm_shard, 9);
        for _ in 0..2 {
            q.submit(item(hot, 9)).expect("fill home");
        }
        let target = q.submit(item(hot, 9)).expect("diverts");
        assert_eq!(target, warm_shard, "divert ignored graft affinity");
    }

    #[test]
    fn steal_takes_from_the_back_of_the_deepest_victim() {
        let q: RunQueues<u64> = RunQueues::new(2, StealPolicy::default());
        // Load only one shard; give keys that hash there.
        let loaded = q.home(0);
        let keys: Vec<u64> = (0..1000).filter(|&k| q.home(k) == loaded).take(10).collect();
        for &k in &keys {
            q.submit(item(k, 0)).expect("room");
        }
        let thief = 1 - loaded;
        let mut buf = Vec::new();
        let n = q.take(thief, &mut buf);
        assert_eq!(n, 5, "steal moves ceil(depth/2) = 5 of 10");
        // Stolen items are the back half, in their original order.
        let stolen: Vec<u64> = buf.iter().map(|w| w.payload).collect();
        assert_eq!(stolen, keys[5..].to_vec());
        assert_eq!(q.stats().steals, 5);
        // The victim still drains its front half in order.
        buf.clear();
        q.take(loaded, &mut buf);
        assert_eq!(buf[0].payload, keys[0]);
        // An all-empty plane records a failed steal.
        while q.total_depth() > 0 {
            buf.clear();
            q.take(loaded, &mut buf);
        }
        buf.clear();
        assert_eq!(q.take(thief, &mut buf), 0);
        assert!(q.stats().steal_fail >= 1);
    }

    #[test]
    fn balance_steal_preempts_a_shallow_drain() {
        let q: RunQueues<u64> = RunQueues::new(2, StealPolicy::default());
        let (hot, cold) = (q.home(0), 1 - q.home(0));
        // 40 items on the hot shard, 2 on the cold one: the cold
        // shard's next drain sees a victim far deeper than itself and steals
        // instead of serving its own trickle at the hot shard's pace.
        let hot_keys: Vec<u64> = (0..4000).filter(|&k| q.home(k) == hot).take(40).collect();
        let cold_keys: Vec<u64> = (0..4000).filter(|&k| q.home(k) == cold).take(2).collect();
        for &k in hot_keys.iter().chain(&cold_keys) {
            q.submit(item(k, 0)).expect("room");
        }
        let mut buf = Vec::new();
        let n = q.take(cold, &mut buf);
        assert_eq!(n, 20, "balance steal moves ceil(40/2) of the hot queue");
        assert!(buf.iter().all(|w| q.home(w.key) == hot));
        assert_eq!(q.depth(cold), 2, "the cold queue was left untouched");
        // Repeated takes keep halving the hot backlog (20 -> 10 -> 5 -> 2)
        // until it drops under 2x the cold depth; only then does the
        // cold shard serve its own queue.
        buf.clear();
        assert_eq!(q.take(cold, &mut buf), 10);
        buf.clear();
        assert_eq!(q.take(cold, &mut buf), 5);
        buf.clear();
        assert_eq!(q.take(cold, &mut buf), 3, "5 >= 2x2 still steals");
        assert_eq!(q.depth(hot), 2);
        buf.clear();
        let n = q.take(cold, &mut buf);
        assert_eq!(n, 1, "next take serves the cold queue");
        assert_eq!(buf[0].payload, cold_keys[0]);
    }

    #[test]
    fn steal_prefers_a_victim_whose_tail_graft_is_warm() {
        let q: RunQueues<u64> = RunQueues::new(3, StealPolicy::default());
        // Find two distinct keys homing to shards 0-like and 1-like,
        // leaving one shard empty to act as the thief.
        let mut by_home = [None; 3];
        for k in 0..10_000u64 {
            let h = q.home(k);
            if by_home[h].is_none() {
                by_home[h] = Some(k);
            }
        }
        let (a, b) = (by_home[0].unwrap(), by_home[1].unwrap());
        // Shard 0 holds graft-5 work (shallow); shard 1 holds graft-6
        // work (deeper). The thief (shard 2) is warm for graft 5, so it
        // robs the *shallower* warm victim over the deeper cold one.
        for _ in 0..3 {
            q.submit(WorkItem {
                key: a,
                graft: 5,
                epoch: 0,
                payload: 0,
            })
            .expect("room");
        }
        for _ in 0..8 {
            q.submit(WorkItem {
                key: b,
                graft: 6,
                epoch: 0,
                payload: 0,
            })
            .expect("room");
        }
        q.mark_warm(2, 5);
        let mut buf = Vec::new();
        let n = q.take(2, &mut buf);
        assert!(n > 0);
        assert!(buf.iter().all(|w| w.graft == 5), "stole from a cold victim");
    }

    #[test]
    fn stats_and_depths_are_exact_under_interleaved_traffic() {
        let q: RunQueues<u64> = RunQueues::new(4, StealPolicy::default());
        let mut submitted = 0u64;
        let mut drained = 0u64;
        let mut buf = Vec::new();
        for k in 0..200u64 {
            if q.submit(item(k, 1 + k % 3)).is_ok() {
                submitted += 1;
            }
            if k % 5 == 4 {
                buf.clear();
                drained += q.take((k % 4) as usize, &mut buf) as u64;
                for w in &buf {
                    q.mark_warm((k % 4) as usize, w.graft);
                }
            }
        }
        for s in 0..4 {
            loop {
                buf.clear();
                let n = q.take(s, &mut buf);
                if n == 0 {
                    break;
                }
                drained += n as u64;
            }
        }
        // Nothing lost, nothing double-drained. (Shard queues may still
        // hold items stolen *to* an earlier-drained shard's buffer —
        // drain until every queue reports empty.)
        while q.total_depth() > 0 {
            for s in 0..4 {
                buf.clear();
                drained += q.take(s, &mut buf) as u64;
            }
        }
        assert_eq!(q.stats().enqueued, submitted);
        assert_eq!(drained, submitted);
        assert_eq!(q.total_depth(), 0);
    }

    #[test]
    fn run_queues_are_send_sync_for_real_threads() {
        fn assert_send_sync<S: Send + Sync>() {}
        assert_send_sync::<RunQueues<Vec<i64>>>();
    }
}
