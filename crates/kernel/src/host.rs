//! The multi-tenant graft host: chains, ledgers, and the quarantine
//! supervisor.

use std::collections::BTreeMap;
use std::time::Instant;

use graft_api::{
    EntryId, ExtensionEngine, GraftError, GraftLedger, Technology, Trap, TrapKind, Verdict,
};
use graft_telemetry::{TraceBuffer, TraceEvent, TraceId, TRACE_SHARD_SCALAR};

use crate::point::AttachPoint;
use crate::postmortem::{PostmortemReport, POSTMORTEM_TAIL};
use crate::recovery::{self, SalvagedState};

/// Chain depths recorded in the `kernel.chain_depth` histogram are
/// clamped to this many slots (depth 16+ shares the last slot).
pub(crate) const DEPTH_SLOTS: usize = 17;

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostConfig {
    /// Trapped invocations before a graft is quarantined (the paper's
    /// "unload the extension" containment response). A single
    /// [`Trap::FuelExhausted`] quarantines immediately regardless.
    pub trap_threshold: u32,
    /// Execution budget applied to every installed engine that meters
    /// fuel (`None` leaves engines unmetered).
    pub fuel_budget: Option<u64>,
    /// Clean invocations a re-admitted graft must complete on probation
    /// before returning to full `Active` standing. Any trap while on
    /// probation re-quarantines instantly.
    pub probation_clean: u64,
    /// Exponential-backoff re-admission: after its first quarantine a
    /// graft is automatically re-admitted (on probation) once this many
    /// dispatches have been served *without* it — the clean built-in
    /// window. The window doubles on each re-quarantine. `0` disables
    /// automatic re-admission entirely (the default): detach is final
    /// until an explicit [`GraftHost::readmit`].
    pub backoff_base: u64,
    /// Quarantine trips after which a graft on the backoff ladder is
    /// permanently banned instead of re-admitted. Only consulted when
    /// `backoff_base > 0`.
    pub ban_ceiling: u32,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            trap_threshold: 3,
            fuel_budget: Some(4_000_000),
            probation_clean: 8,
            backoff_base: 0,
            ban_ceiling: 5,
        }
    }
}

/// Lifecycle state of one installed graft.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraftState {
    /// In the chain, dispatching normally.
    Active,
    /// Re-admitted after quarantine; dispatching, but one more trap
    /// detaches it immediately.
    Probation {
        /// Clean invocations still required to regain `Active`.
        remaining_clean: u64,
    },
    /// Detached by the supervisor; skipped by dispatch, and direct
    /// invocation returns a deterministic [`GraftError::Unavailable`].
    Quarantined {
        /// The kind of trap that tripped the supervisor.
        by: TrapKind,
    },
    /// Hit the backoff ladder's permanent-ban ceiling: detached for
    /// good — never auto-readmitted, and [`GraftHost::readmit`]
    /// refuses it.
    Banned,
}

/// Handle to one installed graft.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraftId(pub u64);

/// Aggregate host statistics (flushed to `kernel.*` telemetry counters
/// by [`GraftHost::flush`], and on drop for whatever remains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Chain dispatches requested by substrates.
    pub dispatches: u64,
    /// Graft invocations performed (successful or trapped).
    pub invocations: u64,
    /// Invocations that ended in a trap.
    pub traps: u64,
    /// Dispatches decided by a graft's `Override`.
    pub overrides: u64,
    /// Per-graft `Continue` verdicts (the chain kept walking).
    pub continues: u64,
    /// Dispatches that fell through to the built-in kernel policy.
    pub defaults: u64,
    /// Quarantine trips.
    pub quarantine_trips: u64,
    /// Grafts installed.
    pub installs: u64,
    /// Grafts uninstalled.
    pub uninstalls: u64,
    /// Quarantined grafts re-admitted on probation.
    pub readmits: u64,
    /// Marshalling or non-trap framework failures skipped over.
    pub marshal_failures: u64,
    /// Detaches at which the supervisor salvaged the graft's planned
    /// regions into a [`SalvagedState`](crate::recovery::SalvagedState).
    pub salvages: u64,
    /// Total words lifted out of trapped grafts by salvage.
    pub salvaged_words: u64,
    /// Re-admissions performed by the backoff ladder (a subset of
    /// `readmits`).
    pub auto_readmits: u64,
    /// Grafts permanently banned at the backoff ceiling.
    pub bans: u64,
}

impl HostStats {
    /// Field-by-field saturating difference (`self - prev`), used to
    /// publish only the counts not yet flushed to telemetry.
    pub fn delta_since(&self, prev: &HostStats) -> HostStats {
        HostStats {
            dispatches: self.dispatches.saturating_sub(prev.dispatches),
            invocations: self.invocations.saturating_sub(prev.invocations),
            traps: self.traps.saturating_sub(prev.traps),
            overrides: self.overrides.saturating_sub(prev.overrides),
            continues: self.continues.saturating_sub(prev.continues),
            defaults: self.defaults.saturating_sub(prev.defaults),
            quarantine_trips: self.quarantine_trips.saturating_sub(prev.quarantine_trips),
            installs: self.installs.saturating_sub(prev.installs),
            uninstalls: self.uninstalls.saturating_sub(prev.uninstalls),
            readmits: self.readmits.saturating_sub(prev.readmits),
            marshal_failures: self.marshal_failures.saturating_sub(prev.marshal_failures),
            salvages: self.salvages.saturating_sub(prev.salvages),
            salvaged_words: self.salvaged_words.saturating_sub(prev.salvaged_words),
            auto_readmits: self.auto_readmits.saturating_sub(prev.auto_readmits),
            bans: self.bans.saturating_sub(prev.bans),
        }
    }

    /// Field-by-field accumulation.
    pub fn merge(&mut self, other: &HostStats) {
        self.dispatches += other.dispatches;
        self.invocations += other.invocations;
        self.traps += other.traps;
        self.overrides += other.overrides;
        self.continues += other.continues;
        self.defaults += other.defaults;
        self.quarantine_trips += other.quarantine_trips;
        self.installs += other.installs;
        self.uninstalls += other.uninstalls;
        self.readmits += other.readmits;
        self.marshal_failures += other.marshal_failures;
        self.salvages += other.salvages;
        self.salvaged_words += other.salvaged_words;
        self.auto_readmits += other.auto_readmits;
        self.bans += other.bans;
    }
}

struct InstalledGraft {
    name: String,
    tech: Technology,
    engine: Box<dyn ExtensionEngine>,
    entry: EntryId,
    ledger: GraftLedger,
    state: GraftState,
    /// Trapped invocations since the last (re-)admission.
    strikes: u32,
    /// Region names the supervisor must salvage at detach time.
    salvage_plan: Vec<String>,
    /// State salvaged at the most recent detach, if any.
    salvage: Option<SalvagedState>,
    /// Lifetime quarantine trips (the backoff ladder's rung).
    quarantines: u32,
    /// Dispatches still to be served without this graft before the
    /// backoff ladder re-admits it (0 = not armed).
    backoff_remaining: u64,
}

impl InstalledGraft {
    fn dispatchable(&self) -> bool {
        !matches!(
            self.state,
            GraftState::Quarantined { .. } | GraftState::Banned
        )
    }

    fn note_clean(&mut self) {
        if let GraftState::Probation { remaining_clean } = &mut self.state {
            *remaining_clean = remaining_clean.saturating_sub(1);
            if *remaining_clean == 0 {
                self.state = GraftState::Active;
            }
        }
    }

    /// Accounts one trap against this graft; returns `true` when it
    /// trips the quarantine supervisor.
    fn note_trap(&mut self, trap: &Trap, threshold: u32) -> bool {
        self.strikes += 1;
        let instant = trap.kind() == TrapKind::FuelExhausted
            || matches!(self.state, GraftState::Probation { .. });
        if instant || self.strikes >= threshold {
            self.state = GraftState::Quarantined { by: trap.kind() };
            true
        } else {
            false
        }
    }
}

/// Post-detach bookkeeping shared by `dispatch` and `invoke`: salvage
/// the planned regions out of the still-reachable engine, then arm the
/// backoff ladder (or ban at the ceiling). A free function because the
/// callers hold a mutable borrow of the graft alongside the host's
/// stats field.
/// Builds a [`PostmortemReport`] for a graft the supervisor just
/// detached: ledger, backoff position, salvage outcome, and the tail of
/// the graft's events from `recorder` (empty unless recording).
fn capture_postmortem(
    id: u64,
    g: &InstalledGraft,
    reason: TrapKind,
    recorder: &TraceBuffer,
    shard: Option<u32>,
) -> PostmortemReport {
    let mut events: Vec<TraceEvent> = recorder
        .events()
        .into_iter()
        .filter(|e| e.graft == id)
        .collect();
    if events.len() > POSTMORTEM_TAIL {
        events.drain(..events.len() - POSTMORTEM_TAIL);
    }
    PostmortemReport {
        graft: g.name.clone(),
        graft_id: id,
        tech: g.tech,
        reason,
        state: g.state,
        ledger: g.ledger,
        strikes: g.strikes,
        quarantines: g.quarantines,
        backoff_remaining: g.backoff_remaining,
        salvaged_words: g.salvage.as_ref().map(SalvagedState::words),
        events,
        detached_at_ns: graft_telemetry::now_ns(),
        shard,
    }
}

fn on_quarantine_trip(config: &HostConfig, stats: &mut HostStats, g: &mut InstalledGraft) {
    stats.quarantine_trips += 1;
    g.quarantines = g.quarantines.saturating_add(1);
    if !g.salvage_plan.is_empty() {
        if let Some(s) = recovery::salvage(&g.name, g.tech, g.engine.as_ref(), &g.salvage_plan) {
            stats.salvages += 1;
            stats.salvaged_words += s.words() as u64;
            g.salvage = Some(s);
        }
    }
    if config.backoff_base > 0 {
        if g.quarantines >= config.ban_ceiling.max(1) {
            g.state = GraftState::Banned;
            stats.bans += 1;
        } else {
            // Window doubles with each trip: base << (trips - 1).
            g.backoff_remaining = config
                .backoff_base
                .saturating_mul(1u64 << u64::from(g.quarantines - 1).min(62));
        }
    }
}

/// The extension kernel: a registry of attach-point chains over
/// installed, individually-accounted grafts.
///
/// Dispatch walks a point's chain in install order. Each graft is
/// marshalled and invoked through its pre-bound [`EntryId`]; the first
/// `Override` wins, traps are charged to the offending graft's ledger
/// (and only that graft), and a chain that declines entirely yields
/// [`Verdict::Continue`] so the substrate's built-in policy applies.
pub struct GraftHost {
    config: HostConfig,
    grafts: BTreeMap<u64, InstalledGraft>,
    chains: [Vec<u64>; AttachPoint::COUNT],
    next_id: u64,
    stats: HostStats,
    depth_counts: [u64; DEPTH_SLOTS],
    /// Counts already pushed to telemetry by [`GraftHost::flush`];
    /// subtracted on the next flush so nothing is double-counted.
    published: HostStats,
    published_depth: [u64; DEPTH_SLOTS],
    /// The host's flight recorder: one [`TraceEvent`] per consulted
    /// graft when recording is armed (`graft_telemetry::set_tracing`).
    /// Thread-confined, lock-free; flushed to the global trace ring by
    /// [`GraftHost::flush`].
    recorder: TraceBuffer,
    /// Dispatches traced so far — the per-source sequence
    /// [`TraceId::mint`] consumes.
    trace_seq: u64,
    /// Postmortems captured at quarantine trips, oldest first.
    postmortems: Vec<PostmortemReport>,
}

impl Default for GraftHost {
    fn default() -> Self {
        Self::new()
    }
}

impl GraftHost {
    /// A host with the default supervisor policy (3-trap threshold).
    pub fn new() -> Self {
        Self::with_config(HostConfig::default())
    }

    /// A host with an explicit supervisor policy.
    pub fn with_config(config: HostConfig) -> Self {
        GraftHost {
            config,
            grafts: BTreeMap::new(),
            chains: std::array::from_fn(|_| Vec::new()),
            next_id: 1,
            stats: HostStats::default(),
            depth_counts: [0; DEPTH_SLOTS],
            published: HostStats::default(),
            published_depth: [0; DEPTH_SLOTS],
            recorder: TraceBuffer::new(graft_telemetry::TRACE_BUFFER_CAPACITY),
            trace_seq: 0,
            postmortems: Vec::new(),
        }
    }

    /// The supervisor policy in force.
    pub fn config(&self) -> HostConfig {
        self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Installs `engine` at the end of `point`'s chain, binding the
    /// point's entry and applying the fuel budget. The engine's regions
    /// should already be marshalled with any install-time state (access
    /// plans, logical-disk maps, ...).
    pub fn install(
        &mut self,
        point: AttachPoint,
        name: &str,
        engine: Box<dyn ExtensionEngine>,
    ) -> Result<GraftId, GraftError> {
        self.install_at(point, name, engine, usize::MAX)
    }

    /// Installs at the *front* of the chain — the hot-install path a
    /// hostile tenant would take to shadow everyone else.
    pub fn install_front(
        &mut self,
        point: AttachPoint,
        name: &str,
        engine: Box<dyn ExtensionEngine>,
    ) -> Result<GraftId, GraftError> {
        self.install_at(point, name, engine, 0)
    }

    fn install_at(
        &mut self,
        point: AttachPoint,
        name: &str,
        mut engine: Box<dyn ExtensionEngine>,
        at: usize,
    ) -> Result<GraftId, GraftError> {
        // Bind once, up front: dispatch never does a string lookup.
        let entry = engine.bind_entry(point.entry())?;
        engine.set_fuel(self.config.fuel_budget);
        let id = self.next_id;
        self.next_id += 1;
        self.grafts.insert(
            id,
            InstalledGraft {
                name: name.to_string(),
                tech: engine.technology(),
                engine,
                entry,
                ledger: GraftLedger::default(),
                state: GraftState::Active,
                strikes: 0,
                salvage_plan: Vec::new(),
                salvage: None,
                quarantines: 0,
                backoff_remaining: 0,
            },
        );
        let chain = &mut self.chains[point as usize];
        chain.insert(at.min(chain.len()), id);
        self.stats.installs += 1;
        Ok(GraftId(id))
    }

    /// Removes a graft from its chain and drops its engine. Returns
    /// `false` for an unknown id.
    pub fn uninstall(&mut self, id: GraftId) -> bool {
        if self.grafts.remove(&id.0).is_none() {
            return false;
        }
        for chain in &mut self.chains {
            chain.retain(|&g| g != id.0);
        }
        self.stats.uninstalls += 1;
        true
    }

    /// Re-admits a quarantined graft on probation. Returns `false`
    /// unless the graft exists and is currently quarantined.
    pub fn readmit(&mut self, id: GraftId) -> bool {
        let Some(g) = self.grafts.get_mut(&id.0) else {
            return false;
        };
        if !matches!(g.state, GraftState::Quarantined { .. }) {
            return false;
        }
        g.strikes = 0;
        g.backoff_remaining = 0;
        g.state = GraftState::Probation {
            remaining_clean: self.config.probation_clean.max(1),
        };
        self.stats.readmits += 1;
        true
    }

    /// Registers the regions the supervisor must salvage out of this
    /// graft when it detaches it (the Logical Disk graft's `map`, for
    /// example). Each name is validated against the engine now, so a
    /// typo fails at configure time, not at detach time.
    pub fn set_salvage_plan(&mut self, id: GraftId, regions: &[&str]) -> Result<(), GraftError> {
        let Some(g) = self.grafts.get_mut(&id.0) else {
            return Err(GraftError::Unavailable {
                graft: format!("graft#{}", id.0),
                missing: "installation (no such graft)".into(),
            });
        };
        for name in regions {
            g.engine.bind_region(name)?;
        }
        g.salvage_plan = regions.iter().map(|s| s.to_string()).collect();
        Ok(())
    }

    /// The state salvaged at this graft's most recent detach, if the
    /// supervisor managed to lift it out.
    pub fn salvage_ref(&self, id: GraftId) -> Option<&SalvagedState> {
        self.grafts.get(&id.0).and_then(|g| g.salvage.as_ref())
    }

    /// Takes ownership of the salvaged state (e.g. to re-seed a
    /// replacement graft or the built-in policy).
    pub fn take_salvage(&mut self, id: GraftId) -> Option<SalvagedState> {
        self.grafts.get_mut(&id.0).and_then(|g| g.salvage.take())
    }

    /// Snapshots the graft's salvage plan from its *live* engine right
    /// now, without detaching — an explicit checkpoint.
    pub fn salvage_now(&mut self, id: GraftId) -> Option<SalvagedState> {
        let g = self.grafts.get(&id.0)?;
        if g.salvage_plan.is_empty() {
            return None;
        }
        let s = recovery::salvage(&g.name, g.tech, g.engine.as_ref(), &g.salvage_plan)?;
        self.stats.salvages += 1;
        self.stats.salvaged_words += s.words() as u64;
        Some(s)
    }

    /// Lifetime quarantine trips for one graft (the backoff rung).
    pub fn quarantine_count(&self, id: GraftId) -> Option<u32> {
        self.grafts.get(&id.0).map(|g| g.quarantines)
    }

    /// The ledger of one graft.
    pub fn ledger(&self, id: GraftId) -> Option<&GraftLedger> {
        self.grafts.get(&id.0).map(|g| &g.ledger)
    }

    /// The lifecycle state of one graft.
    pub fn state(&self, id: GraftId) -> Option<GraftState> {
        self.grafts.get(&id.0).map(|g| g.state)
    }

    /// Whether the supervisor has detached this graft.
    pub fn is_quarantined(&self, id: GraftId) -> bool {
        matches!(self.state(id), Some(GraftState::Quarantined { .. }))
    }

    /// The technology a graft was installed under.
    pub fn technology(&self, id: GraftId) -> Option<Technology> {
        self.grafts.get(&id.0).map(|g| g.tech)
    }

    /// The name a graft was installed under.
    pub fn name(&self, id: GraftId) -> Option<&str> {
        self.grafts.get(&id.0).map(|g| g.name.as_str())
    }

    /// Direct engine access, e.g. to re-marshal state after re-admission.
    pub fn engine_mut(&mut self, id: GraftId) -> Option<&mut (dyn ExtensionEngine + '_)> {
        self.grafts.get_mut(&id.0).map(|g| g.engine.as_mut() as _)
    }

    /// The chain installed at `point`, in dispatch order.
    pub fn chain(&self, point: AttachPoint) -> Vec<GraftId> {
        self.chains[point as usize].iter().map(|&id| GraftId(id)).collect()
    }

    /// Grafts at `point` that dispatch would actually consult.
    pub fn active_len(&self, point: AttachPoint) -> usize {
        self.chains[point as usize]
            .iter()
            .filter(|id| self.grafts[id].dispatchable())
            .count()
    }

    /// Walks `point`'s chain: marshals each non-quarantined graft with
    /// `marshal` (which loads the graft's regions and returns the
    /// argument vector), invokes it through the pre-bound handle, and
    /// returns the first `Override`. Traps and marshalling failures are
    /// charged to the offending graft and the walk continues — one bad
    /// tenant never takes the attach point down.
    pub fn dispatch<F>(&mut self, point: AttachPoint, mut marshal: F) -> Verdict
    where
        F: FnMut(&mut dyn ExtensionEngine) -> Result<Vec<i64>, GraftError>,
    {
        let p = point as usize;
        self.stats.dispatches += 1;
        let depth = self.active_len(point);
        self.depth_counts[depth.min(DEPTH_SLOTS - 1)] += 1;
        // One causal id per dispatch, threaded through every invocation
        // it causes (including across the upcall wire). Minting and
        // recording happen only in recording mode: gated mode costs two
        // relaxed loads, off mode one.
        let tracing = graft_telemetry::tracing();
        let trace = if tracing {
            self.trace_seq += 1;
            TraceId::mint(0, self.trace_seq)
        } else {
            TraceId::NONE
        };
        let mut chain_seq: u32 = 0;
        for i in 0..self.chains[p].len() {
            let id = self.chains[p][i];
            let Some(g) = self.grafts.get_mut(&id) else {
                continue;
            };
            if !g.dispatchable() {
                // Backoff re-admission: every dispatch the chain serves
                // *without* this graft counts toward its clean built-in
                // window; at zero the ladder re-admits it on probation.
                if g.backoff_remaining > 0
                    && matches!(g.state, GraftState::Quarantined { .. })
                {
                    g.backoff_remaining -= 1;
                    if g.backoff_remaining == 0 {
                        g.strikes = 0;
                        g.state = GraftState::Probation {
                            remaining_clean: self.config.probation_clean.max(1),
                        };
                        self.stats.readmits += 1;
                        self.stats.auto_readmits += 1;
                    }
                }
                continue;
            }
            let started = Instant::now();
            let args = match marshal(g.engine.as_mut()) {
                Ok(args) => args,
                Err(_) => {
                    // Kernel-side marshalling failed for this tenant
                    // (e.g. a dead upcall transport). Skip it; do not
                    // charge its ledger for a fault that is not its
                    // code's.
                    self.stats.marshal_failures += 1;
                    if tracing {
                        self.recorder.record(TraceEvent {
                            ts_ns: graft_telemetry::since_epoch_ns(started),
                            trace,
                            seq: chain_seq,
                            graft: id,
                            shard: TRACE_SHARD_SCALAR,
                            point: p as u8,
                            tech: g.tech as u8,
                            verdict: graft_telemetry::TRACE_VERDICT_MARSHAL_FAIL,
                            value: 0,
                            duration_ns: started.elapsed().as_nanos().min(u64::MAX as u128)
                                as u64,
                            fuel: 0,
                        });
                    }
                    chain_seq += 1;
                    continue;
                }
            };
            let result = if tracing {
                g.engine.invoke_id_traced(g.entry, &args, trace)
            } else {
                g.engine.invoke_id(g.entry, &args)
            };
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let fuel = g.engine.fuel_used();
            match result {
                Ok(ret) => {
                    g.ledger.record_ok(ns, fuel);
                    g.note_clean();
                    self.stats.invocations += 1;
                    let verdict = point.decode(ret);
                    if tracing {
                        let (code, value) = match verdict {
                            Verdict::Override(v) => (graft_telemetry::TRACE_VERDICT_OVERRIDE, v),
                            Verdict::Continue => (graft_telemetry::TRACE_VERDICT_CONTINUE, 0),
                        };
                        self.recorder.record(TraceEvent {
                            ts_ns: graft_telemetry::since_epoch_ns(started),
                            trace,
                            seq: chain_seq,
                            graft: id,
                            shard: TRACE_SHARD_SCALAR,
                            point: p as u8,
                            tech: g.tech as u8,
                            verdict: code,
                            value,
                            duration_ns: ns,
                            fuel: fuel.unwrap_or(0),
                        });
                    }
                    match verdict {
                        v @ Verdict::Override(_) => {
                            self.stats.overrides += 1;
                            return v;
                        }
                        Verdict::Continue => self.stats.continues += 1,
                    }
                }
                Err(GraftError::Trap(trap)) => {
                    g.ledger.record_trap(ns, fuel, &trap);
                    self.stats.invocations += 1;
                    self.stats.traps += 1;
                    if tracing {
                        self.recorder.record(TraceEvent {
                            ts_ns: graft_telemetry::since_epoch_ns(started),
                            trace,
                            seq: chain_seq,
                            graft: id,
                            shard: TRACE_SHARD_SCALAR,
                            point: p as u8,
                            tech: g.tech as u8,
                            verdict: graft_telemetry::TRACE_VERDICT_TRAP,
                            value: trap.kind() as usize as i64,
                            duration_ns: ns,
                            fuel: fuel.unwrap_or(0),
                        });
                    }
                    if g.note_trap(&trap, self.config.trap_threshold) {
                        on_quarantine_trip(&self.config, &mut self.stats, g);
                        self.postmortems.push(capture_postmortem(
                            id,
                            g,
                            trap.kind(),
                            &self.recorder,
                            None,
                        ));
                    }
                }
                Err(_) => {
                    // Non-trap framework error: skip, keep serving.
                    self.stats.marshal_failures += 1;
                }
            }
            chain_seq += 1;
        }
        self.stats.defaults += 1;
        Verdict::Continue
    }

    /// Invokes one graft directly through the host, with full ledger
    /// accounting and the quarantine gate: a detached graft returns a
    /// deterministic [`GraftError::Unavailable`], never a panic.
    pub fn invoke(&mut self, id: GraftId, args: &[i64]) -> Result<i64, GraftError> {
        let Some(g) = self.grafts.get_mut(&id.0) else {
            return Err(GraftError::Unavailable {
                graft: format!("graft#{}", id.0),
                missing: "installation (no such graft)".into(),
            });
        };
        match g.state {
            GraftState::Quarantined { .. } => {
                return Err(GraftError::Unavailable {
                    graft: g.name.clone(),
                    missing: "detached by quarantine supervisor".into(),
                });
            }
            GraftState::Banned => {
                return Err(GraftError::Unavailable {
                    graft: g.name.clone(),
                    missing: "permanently banned at the backoff ceiling".into(),
                });
            }
            _ => {}
        }
        let tracing = graft_telemetry::tracing();
        let trace = if tracing {
            self.trace_seq += 1;
            TraceId::mint(0, self.trace_seq)
        } else {
            TraceId::NONE
        };
        let started = Instant::now();
        let result = if tracing {
            g.engine.invoke_id_traced(g.entry, args, trace)
        } else {
            g.engine.invoke_id(g.entry, args)
        };
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let fuel = g.engine.fuel_used();
        self.stats.invocations += 1;
        if tracing {
            // Direct invocations have no attach point (`u8::MAX`); an
            // `Ok` records the return value under the override verdict.
            let (verdict, value) = match &result {
                Ok(ret) => (graft_telemetry::TRACE_VERDICT_OVERRIDE, *ret),
                Err(GraftError::Trap(trap)) => (
                    graft_telemetry::TRACE_VERDICT_TRAP,
                    trap.kind() as usize as i64,
                ),
                Err(_) => (graft_telemetry::TRACE_VERDICT_MARSHAL_FAIL, 0),
            };
            self.recorder.record(TraceEvent {
                ts_ns: graft_telemetry::since_epoch_ns(started),
                trace,
                seq: 0,
                graft: id.0,
                shard: TRACE_SHARD_SCALAR,
                point: u8::MAX,
                tech: g.tech as u8,
                verdict,
                value,
                duration_ns: ns,
                fuel: fuel.unwrap_or(0),
            });
        }
        match &result {
            Ok(_) => {
                g.ledger.record_ok(ns, fuel);
                g.note_clean();
            }
            Err(GraftError::Trap(trap)) => {
                g.ledger.record_trap(ns, fuel, trap);
                self.stats.traps += 1;
                if g.note_trap(trap, self.config.trap_threshold) {
                    on_quarantine_trip(&self.config, &mut self.stats, g);
                    self.postmortems.push(capture_postmortem(
                        id.0,
                        g,
                        trap.kind(),
                        &self.recorder,
                        None,
                    ));
                }
            }
            Err(_) => self.stats.marshal_failures += 1,
        }
        result
    }

    /// Flushes statistics accumulated since the last flush into the
    /// global telemetry counters.
    ///
    /// Dispatch — the measured path — never touches an atomic; counts
    /// accumulate in plain fields and reach telemetry only here.
    /// Historically this ran *only* from `Drop`, which silently lost
    /// every count when a host was leaked (`std::mem::forget`, an
    /// `Rc` cycle) — and left nothing persisted if a run aborted after
    /// hours of dispatching. `flush` is idempotent (it publishes only
    /// the delta since the previous flush, and `Drop` publishes only
    /// what an explicit flush has not already pushed), so callers can
    /// checkpoint at will: call it before a risky section, before
    /// snapshotting telemetry, or never — `Drop` still covers the
    /// normal teardown *and* unwinding out of a panicking dispatch.
    pub fn flush(&mut self) {
        let s = self.stats.delta_since(&self.published);
        self.published = self.stats;
        let depth_prev = self.published_depth;
        self.published_depth = self.depth_counts;
        // Publishes only events not yet flushed, and accounts every
        // overwritten-unpublished event to `telemetry.trace.dropped`.
        self.recorder.flush();
        if !graft_telemetry::enabled() {
            return;
        }
        graft_telemetry::counter!("kernel.dispatches").add(s.dispatches);
        graft_telemetry::counter!("kernel.invocations").add(s.invocations);
        graft_telemetry::counter!("kernel.traps").add(s.traps);
        graft_telemetry::counter!("kernel.verdict_override").add(s.overrides);
        graft_telemetry::counter!("kernel.verdict_continue").add(s.continues);
        graft_telemetry::counter!("kernel.verdict_default").add(s.defaults);
        graft_telemetry::counter!("kernel.quarantine_trips").add(s.quarantine_trips);
        graft_telemetry::counter!("kernel.installs").add(s.installs);
        graft_telemetry::counter!("kernel.uninstalls").add(s.uninstalls);
        graft_telemetry::counter!("kernel.readmits").add(s.readmits);
        graft_telemetry::counter!("kernel.marshal_failures").add(s.marshal_failures);
        graft_telemetry::counter!("kernel.recovery.salvages").add(s.salvages);
        graft_telemetry::counter!("kernel.recovery.salvaged_words").add(s.salvaged_words);
        graft_telemetry::counter!("kernel.recovery.auto_readmits").add(s.auto_readmits);
        graft_telemetry::counter!("kernel.recovery.bans").add(s.bans);
        let depth = graft_telemetry::histogram!("kernel.chain_depth");
        for (d, (&n, &p)) in self.depth_counts.iter().zip(depth_prev.iter()).enumerate() {
            depth.record_n(d as u64, n.saturating_sub(p));
        }
    }

    /// Every trace event still retained by this host's flight recorder,
    /// oldest first (empty unless recording was armed).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.recorder.events()
    }

    /// Postmortem reports captured at quarantine trips, oldest first.
    pub fn postmortems(&self) -> &[PostmortemReport] {
        &self.postmortems
    }

    /// Takes ownership of the captured postmortems (e.g. to embed them
    /// in a run artifact).
    pub fn take_postmortems(&mut self) -> Vec<PostmortemReport> {
        std::mem::take(&mut self.postmortems)
    }
}

impl Drop for GraftHost {
    fn drop(&mut self) {
        // Publishes only what explicit flushes have not already pushed;
        // this also runs while unwinding out of a panicking dispatch,
        // so counts up to the fault survive into telemetry.
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::{EntryPoint, NativeEngine, RegionSpec, RegionStore};

    /// A tiny native engine exporting `select_victim/2` whose body is
    /// the given closure.
    fn victim_engine<F>(body: F) -> Box<dyn ExtensionEngine>
    where
        F: FnMut(&str, &[i64], &mut RegionStore) -> Result<i64, GraftError> + Send + 'static,
    {
        let specs = [RegionSpec::data("scratch", 8)];
        let entries = [EntryPoint {
            name: "select_victim".into(),
            arity: 2,
        }];
        Box::new(NativeEngine::with_entries(&specs, &entries, Box::new(body)).unwrap())
    }

    fn constant(v: i64) -> Box<dyn ExtensionEngine> {
        victim_engine(move |_, _, _| Ok(v))
    }

    fn declining() -> Box<dyn ExtensionEngine> {
        victim_engine(|_, _, _| Ok(-1))
    }

    fn trapping() -> Box<dyn ExtensionEngine> {
        victim_engine(|_, _, _| Err(Trap::DivByZero.into()))
    }

    fn dispatch_once(host: &mut GraftHost) -> Verdict {
        host.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]))
    }

    #[test]
    fn empty_chain_yields_continue() {
        let mut host = GraftHost::new();
        assert_eq!(dispatch_once(&mut host), Verdict::Continue);
        assert_eq!(host.stats().defaults, 1);
        assert_eq!(host.active_len(AttachPoint::VmEvict), 0);
    }

    #[test]
    fn first_override_wins_in_chain_order() {
        let mut host = GraftHost::new();
        let a = host.install(AttachPoint::VmEvict, "decline", declining()).unwrap();
        let b = host.install(AttachPoint::VmEvict, "forty-two", constant(42)).unwrap();
        let c = host.install(AttachPoint::VmEvict, "seven", constant(7)).unwrap();
        assert_eq!(host.chain(AttachPoint::VmEvict), vec![a, b, c]);
        assert_eq!(dispatch_once(&mut host), Verdict::Override(42));
        // The decliner was consulted, the shadowed graft was not.
        assert_eq!(host.ledger(a).unwrap().invocations, 1);
        assert_eq!(host.ledger(b).unwrap().invocations, 1);
        assert_eq!(host.ledger(c).unwrap().invocations, 0);
        assert_eq!(host.stats().overrides, 1);
        assert_eq!(host.stats().continues, 1);
    }

    #[test]
    fn install_front_shadows_and_uninstall_restores() {
        let mut host = GraftHost::new();
        let back = host.install(AttachPoint::VmEvict, "back", constant(1)).unwrap();
        let front = host.install_front(AttachPoint::VmEvict, "front", constant(2)).unwrap();
        assert_eq!(host.chain(AttachPoint::VmEvict), vec![front, back]);
        assert_eq!(dispatch_once(&mut host), Verdict::Override(2));
        assert!(host.uninstall(front));
        assert!(!host.uninstall(front));
        assert_eq!(dispatch_once(&mut host), Verdict::Override(1));
    }

    #[test]
    fn supervisor_quarantines_after_threshold_traps() {
        let mut host = GraftHost::new();
        let bad = host.install(AttachPoint::VmEvict, "hostile", trapping()).unwrap();
        let good = host.install(AttachPoint::VmEvict, "good", constant(9)).unwrap();
        for _ in 0..5 {
            // The hostile front graft traps, the chain still serves.
            assert_eq!(dispatch_once(&mut host), Verdict::Override(9));
        }
        assert!(host.is_quarantined(bad));
        assert_eq!(
            host.state(bad),
            Some(GraftState::Quarantined {
                by: TrapKind::DivByZero
            })
        );
        // Exactly trap_threshold trapped invocations before detach.
        assert_eq!(host.ledger(bad).unwrap().traps, 3);
        assert_eq!(host.ledger(bad).unwrap().invocations, 3);
        assert_eq!(host.stats().quarantine_trips, 1);
        // The well-behaved tenant is untouched.
        assert_eq!(host.state(good), Some(GraftState::Active));
        assert_eq!(host.ledger(good).unwrap().invocations, 5);
    }

    #[test]
    fn quarantined_graft_invoked_directly_is_a_deterministic_error() {
        let mut host = GraftHost::new();
        let bad = host.install(AttachPoint::VmEvict, "hostile", trapping()).unwrap();
        for _ in 0..3 {
            let _ = host.invoke(bad, &[0, 0]);
        }
        assert!(host.is_quarantined(bad));
        let err = host.invoke(bad, &[0, 0]).unwrap_err();
        match err {
            GraftError::Unavailable { graft, missing } => {
                assert_eq!(graft, "hostile");
                assert!(missing.contains("quarantine"));
            }
            other => panic!("expected Unavailable, got {other}"),
        }
        // The gate holds on repeat.
        assert!(matches!(
            host.invoke(bad, &[0, 0]),
            Err(GraftError::Unavailable { .. })
        ));
    }

    #[test]
    fn fuel_exhaustion_quarantines_immediately() {
        let mut host = GraftHost::new();
        let bad = host
            .install(
                AttachPoint::VmEvict,
                "spinner",
                victim_engine(|_, _, _| Err(Trap::FuelExhausted.into())),
            )
            .unwrap();
        assert_eq!(dispatch_once(&mut host), Verdict::Continue);
        assert!(host.is_quarantined(bad), "one FuelExhausted must detach");
        assert_eq!(host.ledger(bad).unwrap().traps, 1);
        assert_eq!(
            host.ledger(bad)
                .unwrap()
                .trap_counts
                .get(TrapKind::FuelExhausted),
            1
        );
    }

    #[test]
    fn probation_readmits_and_one_more_trap_detaches() {
        let mut host = GraftHost::new();
        // Trap twice, then behave — below threshold, never quarantined.
        let mut calls = 0;
        let flaky = victim_engine(move |_, _, _| {
            calls += 1;
            if calls <= 3 {
                Err(Trap::DivByZero.into())
            } else {
                Ok(5)
            }
        });
        let id = host.install(AttachPoint::VmEvict, "flaky", flaky).unwrap();
        for _ in 0..3 {
            dispatch_once(&mut host);
        }
        assert!(host.is_quarantined(id));
        assert!(!host.readmit(GraftId(999)), "unknown id");
        assert!(host.readmit(id));
        assert!(!host.readmit(id), "only quarantined grafts re-admit");
        assert_eq!(
            host.state(id),
            Some(GraftState::Probation { remaining_clean: 8 })
        );
        // Clean invocations walk it back to Active.
        for _ in 0..8 {
            assert_eq!(dispatch_once(&mut host), Verdict::Override(5));
        }
        assert_eq!(host.state(id), Some(GraftState::Active));
    }

    #[test]
    fn trap_on_probation_requarantines_instantly() {
        let mut host = GraftHost::new();
        let id = host.install(AttachPoint::VmEvict, "hostile", trapping()).unwrap();
        for _ in 0..3 {
            dispatch_once(&mut host);
        }
        assert!(host.is_quarantined(id));
        assert!(host.readmit(id));
        dispatch_once(&mut host);
        assert!(host.is_quarantined(id), "probation tolerates zero traps");
        assert_eq!(host.stats().quarantine_trips, 2);
        assert_eq!(host.stats().readmits, 1);
    }

    #[test]
    fn chains_are_per_attach_point() {
        let mut host = GraftHost::new();
        host.install(AttachPoint::VmEvict, "evict", constant(1)).unwrap();
        assert_eq!(host.active_len(AttachPoint::VmEvict), 1);
        assert_eq!(host.active_len(AttachPoint::SchedPick), 0);
        assert_eq!(
            host.dispatch(AttachPoint::SchedPick, |_| Ok(vec![1])),
            Verdict::Continue
        );
    }

    #[test]
    fn install_rejects_missing_entry_at_bind_time() {
        let mut host = GraftHost::new();
        let specs = [RegionSpec::data("scratch", 8)];
        let entries = [EntryPoint {
            name: "something_else".into(),
            arity: 0,
        }];
        let engine: Box<dyn ExtensionEngine> = Box::new(
            NativeEngine::with_entries(&specs, &entries, Box::new(|_: &str, _: &[i64], _: &mut RegionStore| Ok(0)))
                .unwrap(),
        );
        let err = host.install(AttachPoint::VmEvict, "bad", engine);
        assert!(err.is_err(), "binding select_victim must fail");
        assert_eq!(host.active_len(AttachPoint::VmEvict), 0);
    }

    #[test]
    fn marshal_failure_skips_tenant_without_charging_it() {
        let mut host = GraftHost::new();
        let a = host.install(AttachPoint::VmEvict, "a", constant(3)).unwrap();
        let mut first = true;
        let verdict = host.dispatch(AttachPoint::VmEvict, move |_| {
            if first {
                first = false;
                Err(GraftError::UpcallFailed("dead transport".into()))
            } else {
                Ok(vec![0, 0])
            }
        });
        assert_eq!(verdict, Verdict::Continue);
        assert_eq!(host.ledger(a).unwrap().invocations, 0);
        assert_eq!(host.stats().marshal_failures, 1);
    }

    #[test]
    fn detach_salvages_the_planned_regions() {
        let mut host = GraftHost::new();
        // The saboteur maintains state in `scratch`, then starts
        // trapping: the supervisor must lift the pre-trap state out.
        let mut calls = 0;
        let engine = victim_engine(move |_, _, regions: &mut RegionStore| {
            calls += 1;
            if calls <= 2 {
                let id = regions.id("scratch").unwrap();
                regions.write_id(id, 0, 40 + calls)?;
                Ok(-1)
            } else {
                Err(Trap::DivByZero.into())
            }
        });
        let id = host.install(AttachPoint::VmEvict, "stateful", engine).unwrap();
        assert!(host.set_salvage_plan(id, &["nope"]).is_err(), "typo fails early");
        host.set_salvage_plan(id, &["scratch"]).unwrap();
        for _ in 0..5 {
            dispatch_once(&mut host);
        }
        assert!(host.is_quarantined(id));
        let s = host.salvage_ref(id).expect("salvaged at detach");
        assert_eq!(s.graft, "stateful");
        assert_eq!(s.region("scratch").unwrap()[0], 42, "last pre-trap state");
        assert_eq!(host.stats().salvages, 1);
        assert_eq!(host.stats().salvaged_words, 8);
        let taken = host.take_salvage(id).unwrap();
        assert_eq!(taken.region("scratch").unwrap()[0], 42);
        assert!(host.take_salvage(id).is_none(), "taken once");
    }

    #[test]
    fn salvage_now_checkpoints_without_detaching() {
        let mut host = GraftHost::new();
        let engine = victim_engine(|_, _, regions: &mut RegionStore| {
            let id = regions.id("scratch").unwrap();
            regions.write_id(id, 1, 7)?;
            Ok(-1)
        });
        let id = host.install(AttachPoint::VmEvict, "live", engine).unwrap();
        assert!(host.salvage_now(id).is_none(), "no plan, no checkpoint");
        host.set_salvage_plan(id, &["scratch"]).unwrap();
        dispatch_once(&mut host);
        let s = host.salvage_now(id).unwrap();
        assert_eq!(s.region("scratch").unwrap()[1], 7);
        assert_eq!(host.state(id), Some(GraftState::Active));
    }

    #[test]
    fn backoff_ladder_readmits_after_clean_window_and_doubles() {
        let mut host = GraftHost::with_config(HostConfig {
            backoff_base: 4,
            ban_ceiling: 3,
            probation_clean: 1,
            ..HostConfig::default()
        });
        // Traps on its first three calls after each re-admission, then
        // behaves — so every incarnation is re-quarantined until the
        // ladder runs out.
        let id = host.install(AttachPoint::VmEvict, "flaky", trapping()).unwrap();
        host.install(AttachPoint::VmEvict, "good", constant(1)).unwrap();
        for _ in 0..3 {
            dispatch_once(&mut host);
        }
        assert!(host.is_quarantined(id));
        assert_eq!(host.quarantine_count(id), Some(1));
        // First window: 4 dispatches served without it, then probation.
        for _ in 0..3 {
            dispatch_once(&mut host);
            assert!(host.is_quarantined(id));
        }
        dispatch_once(&mut host);
        assert!(matches!(
            host.state(id),
            Some(GraftState::Probation { .. })
        ));
        assert_eq!(host.stats().auto_readmits, 1);
        // Second strike: probation tolerates zero traps → trip #2,
        // window doubles to 8.
        dispatch_once(&mut host);
        assert!(host.is_quarantined(id));
        assert_eq!(host.quarantine_count(id), Some(2));
        for _ in 0..7 {
            dispatch_once(&mut host);
            assert!(host.is_quarantined(id));
        }
        dispatch_once(&mut host);
        assert!(matches!(
            host.state(id),
            Some(GraftState::Probation { .. })
        ));
        assert_eq!(host.stats().auto_readmits, 2);
        // Third strike hits the ceiling: permanent ban.
        dispatch_once(&mut host);
        assert_eq!(host.state(id), Some(GraftState::Banned));
        assert_eq!(host.stats().bans, 1);
        assert!(!host.readmit(id), "banned grafts never re-admit");
        for _ in 0..64 {
            dispatch_once(&mut host);
        }
        assert_eq!(host.state(id), Some(GraftState::Banned));
        let err = host.invoke(id, &[0, 0]).unwrap_err();
        match err {
            GraftError::Unavailable { missing, .. } => {
                assert!(missing.contains("banned"), "{missing}");
            }
            other => panic!("expected Unavailable, got {other}"),
        }
    }

    #[test]
    fn backoff_disabled_by_default_keeps_detach_final() {
        let mut host = GraftHost::new();
        let id = host.install(AttachPoint::VmEvict, "hostile", trapping()).unwrap();
        for _ in 0..3 {
            dispatch_once(&mut host);
        }
        assert!(host.is_quarantined(id));
        for _ in 0..200 {
            dispatch_once(&mut host);
        }
        assert!(host.is_quarantined(id), "no ladder unless configured");
        assert_eq!(host.stats().auto_readmits, 0);
    }

    #[test]
    fn flush_is_idempotent_and_survives_mem_forget() {
        // The regression this guards: telemetry used to publish *only*
        // from `Drop`, so a leaked host (`std::mem::forget`, an `Rc`
        // cycle) silently lost every count. An explicit `flush()`
        // checkpoints the counts; a later flush or drop publishes only
        // the delta, never double-counting.
        let before = graft_telemetry::snapshot().counter("kernel.dispatches");
        let mut host = GraftHost::new();
        host.install(AttachPoint::VmEvict, "c", constant(4)).unwrap();
        for _ in 0..5 {
            dispatch_once(&mut host);
        }
        host.flush();
        // Everything accumulated so far is now published: the pending
        // delta is zero, so a second flush (or Drop) adds nothing.
        assert_eq!(host.stats.delta_since(&host.published), HostStats::default());
        host.flush();
        assert_eq!(host.published.dispatches, 5);
        // Leak the host. Without the explicit flush above these five
        // dispatches would never reach telemetry.
        std::mem::forget(host);
        if graft_telemetry::enabled() {
            let after = graft_telemetry::snapshot().counter("kernel.dispatches");
            // Other tests run in parallel and also publish, so the
            // global counter is only monotonically bounded below.
            assert!(after >= before + 5, "flushed counts lost: {before} -> {after}");
        }
    }

    #[test]
    fn drop_during_panic_unwind_publishes_counts() {
        let before = graft_telemetry::snapshot().counter("kernel.dispatches");
        let result = std::panic::catch_unwind(|| {
            let mut host = GraftHost::new();
            host.install(AttachPoint::VmEvict, "c", constant(4)).unwrap();
            for _ in 0..7 {
                dispatch_once(&mut host);
            }
            // The eighth dispatch faults in kernel-side marshalling
            // code; the host unwinds out of `dispatch` and its Drop
            // impl must still publish all eight dispatch counts.
            host.dispatch(AttachPoint::VmEvict, |_| -> Result<Vec<i64>, GraftError> {
                panic!("marshal bug")
            });
        });
        assert!(result.is_err(), "the marshal closure must have panicked");
        if graft_telemetry::enabled() {
            let after = graft_telemetry::snapshot().counter("kernel.dispatches");
            assert!(after >= before + 8, "counts lost on unwind: {before} -> {after}");
        }
    }
}
