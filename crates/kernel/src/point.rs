//! Typed attach points: where the kernel consults its extension chains.

use graft_api::Verdict;
use std::fmt;

/// A kernel seam at which grafts may be installed.
///
/// Each point fixes the entry-point name and arity a graft must export
/// to attach there, and how a raw return value is decoded into a
/// [`Verdict`]. The five points cover the substrates the paper's
/// experiments exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum AttachPoint {
    /// VM pager eviction: `select_victim(lru_head, hot_head) -> page`.
    VmEvict = 0,
    /// Buffer-cache eviction: same entry ABI as [`AttachPoint::VmEvict`].
    CacheEvict = 1,
    /// Buffer-cache read-ahead: `ra_next(missed) -> block | -1`.
    CacheReadAhead = 2,
    /// Scheduler candidate pick: `pick(n) -> index`.
    SchedPick = 3,
    /// Logical-disk write path: `ld_write(logical) -> flushed(0/1)`.
    DiskWrite = 4,
}

impl AttachPoint {
    /// Number of attach points (the host's chain-array length).
    pub const COUNT: usize = 5;

    /// All points, in `repr` order.
    pub const ALL: [AttachPoint; AttachPoint::COUNT] = [
        AttachPoint::VmEvict,
        AttachPoint::CacheEvict,
        AttachPoint::CacheReadAhead,
        AttachPoint::SchedPick,
        AttachPoint::DiskWrite,
    ];

    /// The entry-point name a graft must export to attach here.
    pub fn entry(&self) -> &'static str {
        match self {
            AttachPoint::VmEvict | AttachPoint::CacheEvict => "select_victim",
            AttachPoint::CacheReadAhead => "ra_next",
            AttachPoint::SchedPick => "pick",
            AttachPoint::DiskWrite => "ld_write",
        }
    }

    /// The arity of that entry point.
    pub fn arity(&self) -> usize {
        match self {
            AttachPoint::VmEvict | AttachPoint::CacheEvict => 2,
            AttachPoint::CacheReadAhead | AttachPoint::SchedPick | AttachPoint::DiskWrite => 1,
        }
    }

    /// A short stable name, used as a telemetry/report label.
    pub fn name(&self) -> &'static str {
        match self {
            AttachPoint::VmEvict => "vm_evict",
            AttachPoint::CacheEvict => "cache_evict",
            AttachPoint::CacheReadAhead => "cache_read_ahead",
            AttachPoint::SchedPick => "sched_pick",
            AttachPoint::DiskWrite => "disk_write",
        }
    }

    /// Decodes a graft's raw return value into a chain verdict.
    ///
    /// The policy points (eviction, read-ahead, scheduling) treat a
    /// negative value as "no opinion" — the graft ABIs use −1 for it —
    /// while the disk write path is a bookkeeping call whose every
    /// successful return is a decision (the flush indication).
    pub fn decode(&self, ret: i64) -> Verdict {
        match self {
            AttachPoint::VmEvict
            | AttachPoint::CacheEvict
            | AttachPoint::CacheReadAhead
            | AttachPoint::SchedPick => {
                if ret >= 0 {
                    Verdict::Override(ret)
                } else {
                    Verdict::Continue
                }
            }
            AttachPoint::DiskWrite => Verdict::Override(ret),
        }
    }
}

impl fmt::Display for AttachPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repr_order_matches_all() {
        for (i, p) in AttachPoint::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
        let mut names: Vec<&str> = AttachPoint::ALL.iter().map(AttachPoint::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AttachPoint::COUNT);
    }

    #[test]
    fn policy_points_decode_negative_as_continue() {
        for p in [
            AttachPoint::VmEvict,
            AttachPoint::CacheEvict,
            AttachPoint::CacheReadAhead,
            AttachPoint::SchedPick,
        ] {
            assert_eq!(p.decode(-1), Verdict::Continue);
            assert_eq!(p.decode(7), Verdict::Override(7));
            assert_eq!(p.decode(0), Verdict::Override(0));
        }
        // The write path's 0 ("no flush") is still a decision.
        assert_eq!(AttachPoint::DiskWrite.decode(0), Verdict::Override(0));
        assert_eq!(AttachPoint::DiskWrite.decode(1), Verdict::Override(1));
    }

    #[test]
    fn entries_match_the_graft_specs() {
        assert_eq!(AttachPoint::VmEvict.entry(), "select_victim");
        assert_eq!(AttachPoint::VmEvict.arity(), 2);
        assert_eq!(AttachPoint::CacheReadAhead.entry(), "ra_next");
        assert_eq!(AttachPoint::SchedPick.entry(), "pick");
        assert_eq!(AttachPoint::DiskWrite.entry(), "ld_write");
    }
}
