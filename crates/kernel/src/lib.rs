//! graft-host: a multi-tenant extension kernel.
//!
//! The paper (Small & Seltzer, USENIX 1996) measures one graft at a
//! time, but its premise — §2's downloadable kernel extensions, §4's
//! safety requirements — is a kernel that *hosts* many untrusted
//! extensions concurrently and survives the bad ones. This crate is
//! that runtime layer, built on the two-phase bind/invoke ABI:
//!
//! * **Attach points** ([`AttachPoint`]) are the typed seams where the
//!   kernsim substrates consult extensions: VM pager eviction, buffer
//!   cache eviction and read-ahead, scheduler candidate pick, and the
//!   logical-disk write path.
//! * **Chains**: each attach point hosts an ordered chain of installed
//!   grafts (any [`graft_api::Technology`], pre-bound to an `EntryId`
//!   at install time). Dispatch walks the chain with Continue/Override
//!   verdict semantics ([`graft_api::Verdict`]): the first graft to
//!   decide wins; if every graft declines, the built-in kernel policy
//!   applies. Grafts can be installed and uninstalled while the
//!   substrate is under load.
//! * **Per-graft ledgers** ([`graft_api::GraftLedger`]): invocations,
//!   cumulative nanoseconds, fuel, and traps by kind, maintained by the
//!   host on every dispatch.
//! * **The quarantine supervisor**: a graft that traps
//!   [`HostConfig::trap_threshold`] times — or exhausts its fuel budget
//!   even once — is atomically detached; the substrate falls back to
//!   the built-in policy and the kernel keeps serving. A quarantined
//!   graft can be re-admitted on probation, where a single further trap
//!   detaches it again.
//! * **Recovery** ([`recovery`]): grafts that carry kernel-critical
//!   state (the paper's *black box* class) register a salvage plan; at
//!   detach the supervisor lifts those regions into a
//!   [`SalvagedState`] and the kernel re-seeds a replacement graft or
//!   its built-in policy. An optional exponential-backoff ladder
//!   ([`HostConfig::backoff_base`]) re-admits detached grafts after a
//!   clean built-in window that doubles per re-quarantine, up to a
//!   permanent-ban ceiling.
//!
//! * **Adaptive sharded dispatch** ([`steal`]): bounded per-shard run
//!   queues with work stealing and graft-affinity placement feed the
//!   sharded host's data plane; executors drain adaptively sized
//!   batches that widen with backlog and dispatch through the fused
//!   `invoke_batch` path when accounting-safe.
//!
//! The [`adapters`] module plugs a shared host into the kernsim
//! substrates (`Pager`, `BufferCache`, `Scheduler`, and the
//! logical-disk write path) through their policy traits.

pub mod adapters;
pub mod host;
pub mod point;
pub mod postmortem;
pub mod recovery;
pub mod shard;
pub mod steal;

pub use adapters::{shared, HostedEviction, HostedReadAhead, HostedSched, HostedWritePath, SharedHost};
pub use host::{GraftHost, GraftId, GraftState, HostConfig, HostStats};
pub use point::AttachPoint;
pub use postmortem::PostmortemReport;
pub use recovery::SalvagedState;
pub use shard::{
    AtomicLedger, BatchMarshalFn, ChainDispatch, MarshalFn, ShardHandle, ShardedHost,
    VirtualShards,
};
pub use steal::{QueueStats, RunQueues, StealPolicy, WorkItem};
