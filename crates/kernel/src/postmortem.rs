//! Quarantine postmortems: what the supervisor knew when it detached.
//!
//! Every quarantine trip (including the re-quarantine of a probationer
//! and the final trip that bans a graft at the backoff ceiling) captures
//! a [`PostmortemReport`]: the graft's identity and technology, the
//! trap that tripped the supervisor, the full [`GraftLedger`] with its
//! per-kind trap counts, the backoff-ladder position, the salvage
//! outcome, and — when the flight recorder is armed — the tail of the
//! graft's most recent [`TraceEvent`]s, so the exact invocations that
//! led to the detach can be replayed from the artifact alone.
//!
//! Reports are host state, not telemetry: they are captured even when
//! recording is off (their event tail is then empty), survive
//! `--no-telemetry`, and are embedded in the run artifact next to the
//! metrics snapshot. `graftstat postmortem` renders them.

use graft_api::{GraftLedger, Technology, TrapKind};
use graft_telemetry::json::Json;
use graft_telemetry::TraceEvent;

use crate::host::GraftState;
use crate::point::AttachPoint;

/// How many of the graft's most recent trace events a report retains.
pub const POSTMORTEM_TAIL: usize = 32;

/// Everything the supervisor knew about a graft at the moment it
/// detached (or banned) it.
#[derive(Debug, Clone)]
pub struct PostmortemReport {
    /// The name the graft was installed under.
    pub graft: String,
    /// Host-assigned graft id (`GraftId.0` / the sharded host's id).
    pub graft_id: u64,
    /// The technology the graft ran under.
    pub tech: Technology,
    /// The trap kind that tripped the supervisor.
    pub reason: TrapKind,
    /// Lifecycle state immediately after the trip (`Quarantined` or
    /// `Banned`).
    pub state: GraftState,
    /// The graft's full resource ledger at detach time.
    pub ledger: GraftLedger,
    /// Trapped invocations since the last (re-)admission.
    pub strikes: u32,
    /// Lifetime quarantine trips including this one.
    pub quarantines: u32,
    /// Dispatches the backoff ladder will serve without this graft
    /// before re-admitting it (0 when the ladder is disarmed).
    pub backoff_remaining: u64,
    /// Words the supervisor salvaged out of the detached engine, or
    /// `None` when there was no salvage plan or salvage failed.
    pub salvaged_words: Option<usize>,
    /// The graft's most recent trace events, oldest first — at most
    /// [`POSTMORTEM_TAIL`], empty unless the flight recorder was
    /// recording.
    pub events: Vec<TraceEvent>,
    /// Monotonic capture timestamp (ns since the telemetry epoch); 0
    /// when telemetry is compiled out.
    pub detached_at_ns: u64,
    /// Worker shard that won the detach race, `None` on the scalar
    /// host.
    pub shard: Option<u32>,
}

impl PostmortemReport {
    /// Replaces the event tail with this graft's events from a merged
    /// (cross-shard) timeline: a shard-local report only sees the
    /// winner's buffer, while traps may have landed on other shards.
    pub fn adopt_tail(&mut self, timeline: &[TraceEvent]) {
        let id = self.graft_id;
        let mut tail: Vec<TraceEvent> = timeline.iter().filter(|e| e.graft == id).copied().collect();
        if tail.len() > POSTMORTEM_TAIL {
            tail.drain(..tail.len() - POSTMORTEM_TAIL);
        }
        self.events = tail;
    }

    /// Replaces the ledger with a fresher snapshot: a shard-local
    /// report only sees what the winning shard had flushed at detach
    /// time, while the other shards' local ledgers merge into the
    /// shared totals at their next flush.
    pub fn adopt_ledger(&mut self, ledger: GraftLedger) {
        self.ledger = ledger;
    }

    /// The trapped invocations in the event tail, oldest first — the
    /// acceptance check for "the tail reconstructs the detach".
    pub fn trapped_events(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.verdict == graft_telemetry::TRACE_VERDICT_TRAP)
            .copied()
            .collect()
    }

    /// Serializes the report for the run artifact.
    pub fn to_json(&self) -> Json {
        let mut ledger = Json::object();
        ledger
            .set("invocations", self.ledger.invocations)
            .set("traps", self.ledger.traps)
            .set("cum_ns", self.ledger.cum_ns)
            .set("fuel_used", self.ledger.fuel_used);
        let mut trap_counts = Json::object();
        for (kind, n) in self.ledger.trap_counts.nonzero() {
            trap_counts.set(kind.name(), n);
        }
        ledger.set("trap_counts", trap_counts);

        let mut doc = Json::object();
        doc.set("graft", self.graft.as_str())
            .set("graft_id", self.graft_id)
            .set("tech", self.tech.paper_name())
            .set("reason", self.reason.name())
            .set("state", state_name(self.state))
            .set("ledger", ledger)
            .set("strikes", u64::from(self.strikes))
            .set("quarantines", u64::from(self.quarantines))
            .set("backoff_remaining", self.backoff_remaining)
            .set(
                "salvaged_words",
                match self.salvaged_words {
                    Some(w) => Json::Num(w as f64),
                    None => Json::Null,
                },
            )
            .set(
                "events",
                Json::Arr(self.events.iter().map(trace_event_json).collect()),
            )
            .set("detached_at_ns", self.detached_at_ns)
            .set(
                "shard",
                match self.shard {
                    Some(s) => Json::Num(f64::from(s)),
                    None => Json::Null,
                },
            );
        doc
    }
}

fn state_name(state: GraftState) -> &'static str {
    match state {
        GraftState::Active => "active",
        GraftState::Probation { .. } => "probation",
        GraftState::Quarantined { .. } => "quarantined",
        GraftState::Banned => "banned",
    }
}

/// Serializes one flight-recorder event (shared by the artifact's
/// `metrics.traces` array and postmortem tails).
pub fn trace_event_json(e: &TraceEvent) -> Json {
    let mut doc = Json::object();
    doc.set("ts_ns", e.ts_ns)
        .set("trace", e.trace.0)
        .set("seq", u64::from(e.seq))
        .set("graft", e.graft)
        .set(
            "shard",
            match e.shard {
                graft_telemetry::TRACE_SHARD_SCALAR => Json::Str("scalar".into()),
                graft_telemetry::TRACE_SHARD_UPCALL => Json::Str("upcall-server".into()),
                s => Json::Num(f64::from(s)),
            },
        )
        .set("point", point_name(e.point))
        .set(
            "tech",
            Technology::ALL
                .get(e.tech as usize)
                .map(|t| Json::Str(t.paper_name().into()))
                .unwrap_or(Json::Null),
        )
        .set("verdict", verdict_name(e.verdict))
        .set("value", Json::Num(e.value as f64))
        .set("duration_ns", e.duration_ns)
        .set("fuel", e.fuel);
    doc
}

fn point_name(point: u8) -> Json {
    AttachPoint::ALL
        .get(point as usize)
        .map(|p| Json::Str(p.name().into()))
        .unwrap_or(Json::Null)
}

fn verdict_name(verdict: u8) -> Json {
    Json::Str(
        match verdict {
            graft_telemetry::TRACE_VERDICT_CONTINUE => "continue",
            graft_telemetry::TRACE_VERDICT_OVERRIDE => "override",
            graft_telemetry::TRACE_VERDICT_TRAP => "trap",
            graft_telemetry::TRACE_VERDICT_MARSHAL_FAIL => "marshal_fail",
            graft_telemetry::TRACE_VERDICT_SERVER => "server",
            _ => "unknown",
        }
        .into(),
    )
}
