//! Substrate adapters: plugging a graft host into the kernsim policy
//! seams.
//!
//! Each adapter implements the substrate's policy trait (or, for the
//! disk write path, wraps the reference facility) and forwards every
//! decision through [`ChainDispatch::dispatch_chain`] at the matching
//! [`AttachPoint`]. A `Continue` verdict — empty chain, every graft
//! declining, or every graft quarantined — falls back to the built-in
//! kernel policy, which is exactly the supervisor's containment story:
//! detaching a hostile graft restores stock kernel behaviour without
//! restarting the substrate.
//!
//! The adapters are generic over the [`ChainDispatch`] seam, defaulting
//! to the single-threaded [`SharedHost`]; handing them a
//! [`ShardHandle`](crate::shard::ShardHandle) (or an
//! `Rc<RefCell<ShardHandle>>`) instead puts the same substrate on one
//! shard of a [`ShardedHost`](crate::shard::ShardedHost), dispatching
//! through that shard's thread-confined engine replicas.

use std::cell::RefCell;
use std::rc::Rc;

use graft_api::Verdict;
use grafts::eviction::{Scenario, MAX_HOT, MAX_QUEUE};
use grafts::schedule::MAX_CANDS;
use kernsim::cache::ReadAhead;
use kernsim::sched::{Candidate, SchedPolicy};
use kernsim::vm::{EvictionPolicy, LruQueue, PageId};
use logdisk::{LdConfig, LogicalDisk};

use crate::host::GraftHost;
use crate::point::AttachPoint;
use crate::shard::ChainDispatch;

/// A host shared between several substrate adapters (and the control
/// plane that injects or quarantines tenants mid-run).
pub type SharedHost = Rc<RefCell<GraftHost>>;

/// Wraps a host for sharing across adapters.
pub fn shared(host: GraftHost) -> SharedHost {
    Rc::new(RefCell::new(host))
}

/// [`AttachPoint::VmEvict`] (and [`AttachPoint::CacheEvict`]) adapter:
/// an [`EvictionPolicy`] that marshals the resident queue plus the
/// application's hot list into each chained graft and asks for a
/// victim.
pub struct HostedEviction<D: ChainDispatch = SharedHost> {
    host: D,
    point: AttachPoint,
    hot: Vec<u64>,
}

impl<D: ChainDispatch> HostedEviction<D> {
    /// An adapter for the VM pager eviction point.
    pub fn new(host: D) -> Self {
        Self::at(host, AttachPoint::VmEvict)
    }

    /// An adapter for an explicit eviction-shaped point
    /// (`VmEvict` or `CacheEvict`).
    pub fn at(host: D, point: AttachPoint) -> Self {
        assert_eq!(point.entry(), "select_victim", "not an eviction point");
        HostedEviction {
            host,
            point,
            hot: Vec::new(),
        }
    }

    /// Publishes the application's hot list (pages it will need soon).
    pub fn set_hot(&mut self, mut hot: Vec<u64>) {
        hot.truncate(MAX_HOT);
        self.hot = hot;
    }
}

impl<D: ChainDispatch> EvictionPolicy for HostedEviction<D> {
    fn select_victim(&mut self, queue: &LruQueue) -> Option<PageId> {
        let resident: Vec<u64> = queue.iter_lru().take(MAX_QUEUE).collect();
        if resident.is_empty() {
            return None;
        }
        let sc = Scenario {
            queue: resident,
            hot: self.hot.clone(),
        };
        match self.host.dispatch_chain(self.point, &mut |engine| {
            let (lru, hot) = sc.marshal(engine)?;
            Ok(vec![lru, hot])
        }) {
            // The substrate validates the victim is resident and falls
            // back to the LRU head otherwise — a wild page id cannot
            // corrupt the pager.
            Verdict::Override(page) => Some(page as u64),
            Verdict::Continue => None,
        }
    }
}

/// [`AttachPoint::CacheReadAhead`] adapter: a [`ReadAhead`] strategy
/// that chains the graft's prediction up to `depth` blocks, falling
/// back to a sequential window of `fallback` blocks when no graft has
/// an opinion.
pub struct HostedReadAhead<D: ChainDispatch = SharedHost> {
    host: D,
    depth: usize,
    fallback: usize,
}

impl<D: ChainDispatch> HostedReadAhead<D> {
    /// An adapter with a 4-block window and no heuristic fallback.
    pub fn new(host: D) -> Self {
        HostedReadAhead {
            host,
            depth: 4,
            fallback: 0,
        }
    }

    /// Sets the prefetch window.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// Sets the built-in sequential fallback used when the chain
    /// declines (0 = no prefetch, the kernel's conservative default).
    pub fn with_fallback(mut self, n: usize) -> Self {
        self.fallback = n;
        self
    }
}

impl<D: ChainDispatch> ReadAhead for HostedReadAhead<D> {
    fn prefetch(&mut self, block: PageId) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.depth);
        let mut at = block as i64;
        for _ in 0..self.depth {
            match self
                .host
                .dispatch_chain(AttachPoint::CacheReadAhead, &mut |_| Ok(vec![at]))
            {
                Verdict::Override(next) => {
                    out.push(next as u64);
                    at = next;
                }
                Verdict::Continue => break,
            }
        }
        if out.is_empty() {
            // Built-in kernel policy: a sequential window (possibly
            // empty) — the state the substrate returns to after a
            // quarantine.
            return (1..=self.fallback as u64).map(|i| block + i).collect();
        }
        out
    }
}

/// [`AttachPoint::SchedPick`] adapter: a [`SchedPolicy`] that marshals
/// the run queue and application state into each chained graft. A
/// declining (or empty, or quarantined) chain falls back to FIFO —
/// round-robin, the kernel default.
pub struct HostedSched<D: ChainDispatch = SharedHost> {
    host: D,
    /// Outstanding client requests, mirrored into `appst[0]`.
    pub pending_requests: i64,
}

impl<D: ChainDispatch> HostedSched<D> {
    /// A scheduling adapter over `host`.
    pub fn new(host: D) -> Self {
        HostedSched {
            host,
            pending_requests: 0,
        }
    }
}

impl<D: ChainDispatch> SchedPolicy for HostedSched<D> {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        let n = candidates.len().min(MAX_CANDS);
        let mut words = vec![0i64; 1 + 3 * n];
        words[0] = n as i64;
        for (i, c) in candidates.iter().take(n).enumerate() {
            words[1 + i * 3] = c.pid as i64;
            words[1 + i * 3 + 1] = c.priority as i64;
            words[1 + i * 3 + 2] = c.tag;
        }
        let pending = self.pending_requests;
        match self.host.dispatch_chain(AttachPoint::SchedPick, &mut |engine| {
            let cands = engine.bind_region("cands")?;
            let appst = engine.bind_region("appst")?;
            engine.load_region_id(cands, 0, &words)?;
            engine.write_region_id(appst, 0, pending)?;
            Ok(vec![n as i64])
        }) {
            Verdict::Override(i) if (i as usize) < candidates.len() => i as usize,
            // Wild index or no opinion: FIFO, the kernel default.
            _ => 0,
        }
    }
}

/// [`AttachPoint::DiskWrite`] adapter: the logical-disk write path.
///
/// Every block write is offered to the chain (`ld_write(logical)`,
/// whose return value says whether a segment just filled and must be
/// flushed). With no graft deciding — including after a quarantine —
/// the write is handled by the in-kernel reference facility, so the
/// disk keeps absorbing writes no matter what the tenants do.
pub struct HostedWritePath<D: ChainDispatch = SharedHost> {
    host: D,
    fallback: LogicalDisk,
    /// Writes decided by a graft.
    pub graft_writes: u64,
    /// Writes handled by the in-kernel fallback facility.
    pub fallback_writes: u64,
}

impl<D: ChainDispatch> HostedWritePath<D> {
    /// A write path over `host` with an in-kernel facility sized for
    /// `blocks` logical blocks.
    pub fn new(host: D, blocks: usize) -> Self {
        HostedWritePath {
            host,
            fallback: LogicalDisk::new(LdConfig {
                blocks,
                segment_blocks: grafts::logdisk::SEGMENT_BLOCKS as usize,
            }),
            graft_writes: 0,
            fallback_writes: 0,
        }
    }

    /// Writes one logical block; returns whether a segment flushed.
    pub fn write(&mut self, logical: u64) -> bool {
        match self
            .host
            .dispatch_chain(AttachPoint::DiskWrite, &mut |_| Ok(vec![logical as i64]))
        {
            Verdict::Override(flushed) => {
                self.graft_writes += 1;
                flushed == 1
            }
            Verdict::Continue => {
                self.fallback_writes += 1;
                self.fallback.write(logical).is_some()
            }
        }
    }

    /// Writes a run of logical blocks as one batch; returns the
    /// per-block flush outcomes, in order.
    ///
    /// The write-path marshal is argument-only (no region loads), so it
    /// satisfies the purity contract of
    /// [`ChainDispatch::dispatch_batch`] and a [`ShardHandle`] host can
    /// fuse the whole run through the engine's `invoke_batch`. Counters
    /// and fallback state advance exactly as per-block [`Self::write`]
    /// calls would.
    ///
    /// [`ShardHandle`]: crate::ShardHandle
    pub fn write_batch(&mut self, logicals: &[u64]) -> Vec<bool> {
        let verdicts = self.host.dispatch_batch(
            AttachPoint::DiskWrite,
            logicals.len(),
            &mut |i, _| Ok(vec![logicals[i] as i64]),
        );
        verdicts
            .into_iter()
            .zip(logicals)
            .map(|(verdict, &logical)| match verdict {
                Verdict::Override(flushed) => {
                    self.graft_writes += 1;
                    flushed == 1
                }
                Verdict::Continue => {
                    self.fallback_writes += 1;
                    self.fallback.write(logical).is_some()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{GraftId, HostConfig};
    use engine_native::{load_grail, SafetyMode};
    use graft_api::{ExtensionEngine, GraftError, Technology, Trap};
    use kernsim::cache::BufferCache;
    use kernsim::sched::Scheduler;
    use kernsim::vm::{LruPolicy, Pager};

    fn eviction_engine() -> Box<dyn ExtensionEngine> {
        let spec = grafts::eviction::spec();
        Box::new(
            load_grail(
                spec.grail.as_ref().unwrap(),
                &spec.regions,
                SafetyMode::Safe { nil_checks: true },
            )
            .unwrap(),
        )
    }

    /// A hostile eviction graft: same region/entry ABI, but its body
    /// divides by zero — the one trap every safe technology raises.
    fn hostile_eviction_engine() -> Box<dyn ExtensionEngine> {
        let spec = grafts::eviction::spec();
        let grail = "fn select_victim(a: int, b: int) -> int { return a / (b - b); }";
        Box::new(
            load_grail(grail, &spec.regions, SafetyMode::Safe { nil_checks: true }).unwrap(),
        )
    }

    #[test]
    fn hosted_eviction_keeps_hot_pages_resident() {
        let host = shared(GraftHost::new());
        host.borrow_mut()
            .install(AttachPoint::VmEvict, "eviction", eviction_engine())
            .unwrap();
        let mut policy = HostedEviction::new(host.clone());
        policy.set_hot(vec![0, 1, 2, 3]);
        let mut pager = Pager::new(8, policy);
        // Touch the hot set once, then stream cold pages through.
        for p in 0..4u64 {
            pager.access(p);
        }
        for p in 100..140u64 {
            pager.access(p);
        }
        // Hot pages survived the cold stream.
        for p in 0..4u64 {
            assert!(pager.queue().contains(p), "hot page {p} was evicted");
        }
        assert!(host.borrow().stats().overrides > 0);
    }

    #[test]
    fn quarantine_mid_run_falls_back_to_lru_and_keeps_serving() {
        let host = shared(GraftHost::new());
        let bad = host
            .borrow_mut()
            .install(AttachPoint::VmEvict, "hostile", hostile_eviction_engine())
            .unwrap();
        let mut pager = Pager::new(4, HostedEviction::new(host.clone()));
        for p in 0..32u64 {
            pager.access(p);
        }
        // The hostile graft tripped the supervisor after 3 traps...
        assert!(host.borrow().is_quarantined(bad));
        assert_eq!(host.borrow().ledger(bad).unwrap().traps, 3);
        // ...and the pager behaved exactly like stock LRU throughout
        // (every dispatch fell back to the queue head).
        assert_eq!(pager.stats().faults, 32);
        assert_eq!(pager.stats().evictions, 28);
    }

    #[test]
    fn hosted_sched_matches_builtin_client_server_policy() {
        use graft_rng::{Rng, SmallRng};
        use kernsim::sched::ClientServerPolicy;
        let spec = grafts::schedule::spec();
        let host = shared(GraftHost::new());
        host.borrow_mut()
            .install(
                AttachPoint::SchedPick,
                "client-server",
                Box::new(
                    load_grail(
                        spec.grail.as_ref().unwrap(),
                        &spec.regions,
                        SafetyMode::Safe { nil_checks: true },
                    )
                    .unwrap(),
                ),
            )
            .unwrap();
        let mut hosted = HostedSched::new(host);
        let mut builtin = ClientServerPolicy::default();
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..100 {
            let n = rng.gen_range(1..8);
            let cands: Vec<Candidate> = (0..n)
                .map(|i| Candidate {
                    pid: i as u32 + 1,
                    priority: 0,
                    vruntime: 0,
                    tag: rng.gen_range(0..2),
                })
                .collect();
            let pending = rng.gen_range(0..3u32);
            hosted.pending_requests = pending as i64;
            builtin.pending_requests = pending;
            assert_eq!(hosted.pick(&cands), builtin.pick(&cands));
        }
    }

    #[test]
    fn hosted_sched_empty_chain_is_fifo() {
        let host = shared(GraftHost::new());
        let mut sched = Scheduler::new(HostedSched::new(host));
        for pid in [1, 2, 3] {
            sched.enqueue(Candidate {
                pid,
                priority: 0,
                vruntime: 0,
                tag: 0,
            });
        }
        let order: Vec<u32> = (0..3).map(|_| sched.dispatch(1).unwrap().pid).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn hosted_read_ahead_follows_the_plan_and_falls_back() {
        let spec = grafts::readahead::spec();
        let mut engine: Box<dyn ExtensionEngine> = Box::new(
            load_grail(
                spec.grail.as_ref().unwrap(),
                &spec.regions,
                SafetyMode::Safe { nil_checks: true },
            )
            .unwrap(),
        );
        let plan: Vec<i64> = (0..8).chain(1000..1008).collect();
        grafts::readahead::load_plan(engine.as_mut(), &plan).unwrap();
        let host = shared(GraftHost::new());
        let id = host
            .borrow_mut()
            .install(AttachPoint::CacheReadAhead, "plan", engine)
            .unwrap();
        let ra = HostedReadAhead::new(host.clone()).with_depth(2).with_fallback(1);
        let mut cache = BufferCache::new(64, LruPolicy, ra);
        for &b in plan.iter() {
            cache.access(b as u64);
        }
        // The graft predicted the jump to 1000.
        assert!(cache.stats().prefetch_hits > 0);
        assert!(cache.stats().misses < plan.len() as u64);
        host.borrow_mut().uninstall(id);
        // Chain now empty: the sequential fallback still prefetches.
        let mut ra2 = HostedReadAhead::new(host).with_fallback(2);
        assert_eq!(ra2.prefetch(10), vec![11, 12]);
    }

    #[test]
    fn hosted_write_path_survives_quarantine_with_fallback_facility() {
        let blocks = 256usize;
        let spec = grafts::logdisk::spec_sized(blocks);
        // A hostile tenant on the write path: `ld_write` spins forever,
        // so its very first invocation exhausts the fuel budget — the
        // supervisor's instant-detach trigger.
        let grail = "fn ld_write(logical: int) -> int { let i = 0; while true { i = i + 1; } return i; }";
        let engine: Box<dyn ExtensionEngine> = Box::new(
            load_grail(grail, &spec.regions, SafetyMode::Safe { nil_checks: true }).unwrap(),
        );
        let host = shared(GraftHost::with_config(HostConfig {
            trap_threshold: 3,
            fuel_budget: Some(10_000),
            probation_clean: 4,
            ..HostConfig::default()
        }));
        let id = host
            .borrow_mut()
            .install(AttachPoint::DiskWrite, "spinner", engine)
            .unwrap();
        let mut path = HostedWritePath::new(host.clone(), blocks);
        let mut flushes = 0u64;
        for w in 0..64u64 {
            if path.write(w % blocks as u64) {
                flushes += 1;
            }
        }
        // The graft burned out on write #1; the facility kept the disk
        // going and flushed every full segment.
        assert!(host.borrow().is_quarantined(id));
        assert_eq!(
            host.borrow().state(id),
            Some(crate::host::GraftState::Quarantined {
                by: graft_api::TrapKind::FuelExhausted
            })
        );
        assert_eq!(host.borrow().ledger(id).unwrap().traps, 1);
        assert!(host.borrow().ledger(id).unwrap().fuel_used >= 10_000);
        assert_eq!(path.fallback_writes, 64);
        assert_eq!(path.graft_writes, 0, "the trapped write decided nothing");
        assert_eq!(flushes, 4, "64 fallback writes fill exactly 4 segments");
    }

    #[test]
    fn sharded_handles_drive_the_same_adapters() {
        use crate::shard::ShardedHost;
        use graft_api::spec::SharedNativeFactory;
        use graft_api::{EntryPoint, NativeEngine, RegionSpec, RegionStore};
        use std::sync::Arc;

        // A forkable native eviction graft that always nominates the
        // LRU head (arg 0 is the marshalled lru handle, which the
        // closure ignores; it returns a fixed resident page).
        let specs = [
            RegionSpec::linked("lru", 1 + 2 * MAX_QUEUE),
            RegionSpec::linked("hot", 1 + 2 * MAX_HOT),
        ];
        let entries = [EntryPoint {
            name: "select_victim".into(),
            arity: 2,
        }];
        let factory: SharedNativeFactory = Arc::new(|| {
            Box::new(|_: &str, _: &[i64], _: &mut RegionStore| Ok(7))
        });
        let engine: Box<dyn graft_api::ExtensionEngine> =
            Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap());

        let mut host = ShardedHost::new(2);
        let id = host.install(AttachPoint::VmEvict, "head", engine).unwrap();
        // Each shard handle runs its own pager through the *same*
        // adapter type the single-threaded host uses.
        for handle in host.take_handles() {
            let handle = Rc::new(RefCell::new(handle));
            let policy = HostedEviction::new(handle.clone());
            let mut pager = Pager::new(4, policy);
            for p in 0..12u64 {
                pager.access(p);
            }
            // Page 7 was nominated whenever resident; the pager
            // validated it and fell back to LRU otherwise.
            assert!(pager.stats().evictions > 0);
            drop(pager);
            // Last Rc drops here → the handle flushes its ledgers.
        }
        assert!(host.ledger(id).unwrap().invocations > 0);
        assert_eq!(host.stats().overrides + host.stats().defaults, host.stats().dispatches);
    }

    #[test]
    fn write_batch_matches_per_block_writes_exactly() {
        use crate::shard::ShardedHost;
        use graft_api::spec::SharedNativeFactory;
        use graft_api::{EntryPoint, NativeEngine, RegionStore};
        use std::sync::Arc;

        let entries = [EntryPoint {
            name: "ld_write".into(),
            arity: 1,
        }];
        let factory: SharedNativeFactory = Arc::new(|| {
            // Flush-decide every seventh block, absorb the rest.
            Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
                Ok(i64::from(args[0] % 7 == 0))
            })
        });

        let blocks = 256usize;
        let run: Vec<u64> = (0..96u64).map(|w| (w * 3) % blocks as u64).collect();

        // Drives the same run through a fresh sharded write path, either
        // per block or as one batch, with or without a graft installed
        // (no graft → every write takes the fallback facility).
        let drive = |batched: bool, with_graft: bool| {
            let mut host = ShardedHost::new(1);
            if with_graft {
                let engine: Box<dyn ExtensionEngine> = Box::new(
                    NativeEngine::from_factory(&[], &entries, factory.clone()).unwrap(),
                );
                host.install(AttachPoint::DiskWrite, "every7", engine).unwrap();
            }
            let handle = Rc::new(RefCell::new(host.take_handles().remove(0)));
            let mut path = HostedWritePath::new(handle, blocks);
            let outcomes: Vec<bool> = if batched {
                path.write_batch(&run)
            } else {
                run.iter().map(|&w| path.write(w)).collect()
            };
            (outcomes, path.graft_writes, path.fallback_writes)
        };

        // Graft path: the single-graft native chain takes the fused
        // `invoke_batch` route, and must decide identically.
        let (per, g1, f1) = drive(false, true);
        let (bat, g2, f2) = drive(true, true);
        assert_eq!(per, bat);
        assert_eq!((g1, f1), (g2, f2));
        assert_eq!(f1, 0, "a DiskWrite graft always decides");
        assert!(per.iter().any(|&f| f) && per.iter().any(|&f| !f));

        // Fallback path: an empty chain drops every block into the
        // in-kernel facility, whose segment flushes must line up too.
        let (per, g1, f1) = drive(false, false);
        let (bat, g2, f2) = drive(true, false);
        assert_eq!(per, bat);
        assert_eq!((g1, f1), (g2, f2));
        assert_eq!(g1, 0);
        assert!(per.iter().any(|&f| f), "96 writes fill whole segments");
    }

    #[test]
    fn technologies_report_through_host_accessors() {
        let host = shared(GraftHost::new());
        let id = host
            .borrow_mut()
            .install(AttachPoint::VmEvict, "eviction", eviction_engine())
            .unwrap();
        let h = host.borrow();
        assert_eq!(h.technology(id), Some(Technology::SafeCompiled));
        assert_eq!(h.name(id), Some("eviction"));
        assert_eq!(h.technology(GraftId(999)), None);
        drop(h);
        // Direct invoke through the host still traps deterministically
        // on bad arguments (a NIL chase via head pointer 0 is the
        // fallback-to-head branch, so use a wild pointer instead).
        let err = host.borrow_mut().invoke(id, &[9_999_999, 0]);
        assert!(matches!(err, Err(GraftError::Trap(Trap::OutOfBounds { .. }))));
    }
}
