//! Sharded multi-core graft dispatch: per-shard engine replicas, a
//! cross-shard quarantine supervisor, and lock-free ledger merging.
//!
//! The single-threaded [`GraftHost`] serializes every dispatch through
//! one set of engines. Production extension runtimes don't: eBPF scales
//! by giving every CPU its own program state and per-CPU maps, so the
//! hot path never takes a cross-CPU lock. [`ShardedHost`] applies the
//! same shape to grafts:
//!
//! * **Thread-confined replicas.** `install` binds the attach point's
//!   entry once, then clones the engine per worker shard via
//!   [`ExtensionEngine::fork_for_shard`]. Each shard owns its replicas
//!   outright — dispatch touches no lock, ever.
//! * **Shard handles.** Workers receive a [`ShardHandle`] (it is
//!   `Send`; move it into a `std::thread`) and dispatch inline on their
//!   own thread, exactly like per-CPU program invocation.
//! * **Hot install/uninstall.** The control plane stays usable while
//!   shards dispatch: membership ops are queued to per-shard mailboxes
//!   and stamped with a bumped *epoch*. A dispatching shard pays one
//!   relaxed epoch load when nothing changed, and drains its mailbox
//!   only when the epoch moved.
//! * **One supervisor, all shards.** Strikes are a single shared atomic
//!   per graft, so "3 traps or one `FuelExhausted`" means three traps
//!   *anywhere*, same as the single-shard host. The losing CAS never
//!   double-detaches; the winning shard stamps the graft's detach
//!   epoch, and every shard's next dispatch observes the quarantine
//!   before invoking — a detached graft never runs again.
//! * **Lock-free ledger merge.** Each shard accounts into a private,
//!   plain-field [`GraftLedger`]; [`ShardHandle::flush`] folds it into
//!   the graft's shared [`AtomicLedger`] with `fetch_add` — no mutex on
//!   either side, and totals equal the single-shard host's exactly.
//!
//! * **Adaptive dispatch plane.** Work routed through [`RunQueues`]
//!   lands on a bounded per-shard queue keyed by hash, with
//!   graft-affinity diversion when a home queue is full and work
//!   stealing when a shard runs dry ([`crate::steal`]). Shards drain
//!   batches that widen with backlog ([`ShardHandle::drain_queue`]) and
//!   fuse single-graft chains through the engine's `invoke_batch` when
//!   that is accounting-safe ([`ShardHandle::dispatch_batch`]). A
//!   stolen dispatch still counts toward the 3-strike supervisor
//!   exactly once: the handoff carries the enqueue-time epoch, and the
//!   draining shard syncs its mailbox past it before invoking.
//!
//! For deterministic concurrency testing there is a *virtual scheduler*
//! ([`VirtualShards`]): all shard handles held on one thread and
//! stepped in a seeded, reshuffled round-robin, so cross-shard
//! quarantine races replay exactly from a seed in CI.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use graft_api::{
    EntryId, ExtensionEngine, GraftError, GraftLedger, Technology, TrapKind, Verdict,
};
use graft_rng::{SliceRandom, SmallRng};
use graft_telemetry::{TraceBuffer, TraceEvent, TraceId};

use crate::host::{GraftHost, GraftId, GraftState, HostConfig, HostStats, DEPTH_SLOTS};
use crate::point::AttachPoint;
use crate::postmortem::{PostmortemReport, POSTMORTEM_TAIL};
use crate::recovery::{self, SalvagedState};
use crate::steal::{RunQueues, StealPolicy, WorkItem};

const STATE_ACTIVE: u32 = 0;
const STATE_PROBATION: u32 = 1;
const STATE_QUARANTINED: u32 = 2;
const STATE_BANNED: u32 = 3;

/// A [`GraftLedger`] whose fields are atomics: the merge target shared
/// by every shard's private ledger. `fetch_add`-only, so merging is
/// lock-free and totals are exact.
#[derive(Debug, Default)]
pub struct AtomicLedger {
    invocations: AtomicU64,
    traps: AtomicU64,
    cum_ns: AtomicU64,
    fuel_used: AtomicU64,
    trap_counts: [AtomicU64; TrapKind::COUNT],
}

impl AtomicLedger {
    /// Folds one shard's private ledger into the shared totals.
    pub fn merge(&self, local: &GraftLedger) {
        if local.invocations == 0 && local.traps == 0 {
            return;
        }
        self.invocations.fetch_add(local.invocations, Ordering::Relaxed);
        self.traps.fetch_add(local.traps, Ordering::Relaxed);
        self.cum_ns.fetch_add(local.cum_ns, Ordering::Relaxed);
        self.fuel_used.fetch_add(local.fuel_used, Ordering::Relaxed);
        for kind in TrapKind::ALL {
            let n = local.trap_counts.get(kind);
            if n > 0 {
                self.trap_counts[kind as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// A plain-field snapshot of the merged totals.
    pub fn snapshot(&self) -> GraftLedger {
        let mut ledger = GraftLedger {
            invocations: self.invocations.load(Ordering::Relaxed),
            traps: self.traps.load(Ordering::Relaxed),
            cum_ns: self.cum_ns.load(Ordering::Relaxed),
            fuel_used: self.fuel_used.load(Ordering::Relaxed),
            ..GraftLedger::default()
        };
        for kind in TrapKind::ALL {
            let n = self.trap_counts[kind as usize].load(Ordering::Relaxed);
            if n > 0 {
                ledger.trap_counts.add(kind, n);
            }
        }
        ledger
    }
}

/// The cross-shard face of one installed graft: supervisor state and
/// merged accounting. Everything here is atomic; nothing on the
/// dispatch path takes a lock.
struct SharedGraft {
    id: u64,
    name: String,
    tech: Technology,
    /// Install generation: the global epoch when this graft was
    /// (re-)admitted. A detach stamps the epoch *at detach time*, so
    /// `detach_epoch > generation` always identifies the incarnation
    /// that was detached — a stale observation of a previous
    /// incarnation can never quarantine a re-admitted graft.
    generation: AtomicU64,
    /// Trapped invocations since (re-)admission, summed over shards.
    strikes: AtomicU32,
    state: AtomicU32,
    /// Clean invocations still required while on probation.
    remaining_clean: AtomicU64,
    /// `TrapKind as u32` of the trap that tripped the supervisor.
    quarantined_by: AtomicU32,
    /// Global epoch stamped by the winning detach.
    detach_epoch: AtomicU64,
    ledger: AtomicLedger,
    /// Region names the winning detach shard must salvage out of its
    /// replica (fixed at install; empty = nothing to salvage).
    salvage_plan: Vec<String>,
    /// State salvaged by the most recent winning detach. Mutex, not an
    /// atomic: only the winning shard writes it, only the control plane
    /// reads it — strictly off the dispatch path.
    salvage: Mutex<Option<SalvagedState>>,
    /// Lifetime quarantine trips (the backoff ladder's rung).
    quarantines: AtomicU32,
    /// Dispatches still to be served without this graft before the
    /// ladder re-admits it (0 = not armed). Shards CAS-decrement; the
    /// shard that moves 1 → 0 performs the atomic re-admission.
    backoff_remaining: AtomicU64,
    /// Postmortems captured by winning detaches, oldest first. Mutex,
    /// not an atomic: only the winning shard appends, only the control
    /// plane drains — strictly off the dispatch path.
    postmortems: Mutex<Vec<PostmortemReport>>,
}

impl SharedGraft {
    fn new(
        id: u64,
        name: &str,
        tech: Technology,
        generation: u64,
        salvage_plan: Vec<String>,
    ) -> Self {
        SharedGraft {
            id,
            name: name.to_string(),
            tech,
            generation: AtomicU64::new(generation),
            strikes: AtomicU32::new(0),
            state: AtomicU32::new(STATE_ACTIVE),
            remaining_clean: AtomicU64::new(0),
            quarantined_by: AtomicU32::new(0),
            detach_epoch: AtomicU64::new(0),
            ledger: AtomicLedger::default(),
            salvage_plan,
            salvage: Mutex::new(None),
            quarantines: AtomicU32::new(0),
            backoff_remaining: AtomicU64::new(0),
            postmortems: Mutex::new(Vec::new()),
        }
    }

    /// Detached for any reason (quarantined or banned): the dispatch
    /// gate, one Acquire load.
    fn is_detached(&self) -> bool {
        self.state.load(Ordering::Acquire) >= STATE_QUARANTINED
    }

    fn state(&self) -> GraftState {
        match self.state.load(Ordering::Acquire) {
            STATE_ACTIVE => GraftState::Active,
            STATE_PROBATION => GraftState::Probation {
                remaining_clean: self.remaining_clean.load(Ordering::Acquire),
            },
            STATE_BANNED => GraftState::Banned,
            _ => GraftState::Quarantined {
                by: TrapKind::ALL[self.quarantined_by.load(Ordering::Acquire) as usize
                    % TrapKind::COUNT],
            },
        }
    }

    /// One clean invocation: walk probation back toward `Active`.
    fn note_clean(&self) {
        if self.state.load(Ordering::Acquire) != STATE_PROBATION {
            return;
        }
        // Decrement-if-positive, so concurrent clean invocations from
        // several shards never wrap below zero.
        let mut left = self.remaining_clean.load(Ordering::Acquire);
        while left > 0 {
            match self.remaining_clean.compare_exchange_weak(
                left,
                left - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if left == 1 {
                        // Last required clean call: back to full standing.
                        let _ = self.state.compare_exchange(
                            STATE_PROBATION,
                            STATE_ACTIVE,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                    }
                    return;
                }
                Err(now) => left = now,
            }
        }
    }

    /// Accounts one trap; returns `true` when *this* call wins the
    /// detach (exactly one caller across all shards does).
    fn note_trap(&self, kind: TrapKind, threshold: u32, epoch: &AtomicU64) -> bool {
        let strikes = self.strikes.fetch_add(1, Ordering::AcqRel) + 1;
        let instant = kind == TrapKind::FuelExhausted
            || self.state.load(Ordering::Acquire) == STATE_PROBATION;
        if instant || strikes >= threshold {
            self.detach(kind, epoch)
        } else {
            false
        }
    }

    /// Atomically quarantines the graft across all shards. The single
    /// winning transition stamps a freshly bumped global epoch, so the
    /// detach is totally ordered against install/uninstall traffic.
    /// A CAS loop (not a bare swap) so a late trap racing a permanent
    /// ban can never demote `Banned` back to `Quarantined`.
    fn detach(&self, kind: TrapKind, epoch: &AtomicU64) -> bool {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            if cur >= STATE_QUARANTINED {
                return false; // another shard already won (or banned)
            }
            match self.state.compare_exchange_weak(
                cur,
                STATE_QUARANTINED,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.quarantined_by.store(kind as u32, Ordering::Release);
        self.detach_epoch
            .store(epoch.fetch_add(1, Ordering::AcqRel) + 1, Ordering::Release);
        true
    }
}

/// Membership traffic from the control plane to one shard.
enum ShardOp {
    Install {
        shared: Arc<SharedGraft>,
        engine: Box<dyn ExtensionEngine>,
        entry: EntryId,
        point: AttachPoint,
        at: usize,
    },
    Uninstall(u64),
}

/// `HostStats`' dispatch-path fields as shared atomics, merged into by
/// shard flushes.
#[derive(Default)]
struct AtomicStats {
    dispatches: AtomicU64,
    invocations: AtomicU64,
    traps: AtomicU64,
    overrides: AtomicU64,
    continues: AtomicU64,
    defaults: AtomicU64,
    quarantine_trips: AtomicU64,
    marshal_failures: AtomicU64,
    salvages: AtomicU64,
    salvaged_words: AtomicU64,
    auto_readmits: AtomicU64,
    bans: AtomicU64,
}

impl AtomicStats {
    fn merge(&self, s: &HostStats) {
        self.dispatches.fetch_add(s.dispatches, Ordering::Relaxed);
        self.invocations.fetch_add(s.invocations, Ordering::Relaxed);
        self.traps.fetch_add(s.traps, Ordering::Relaxed);
        self.overrides.fetch_add(s.overrides, Ordering::Relaxed);
        self.continues.fetch_add(s.continues, Ordering::Relaxed);
        self.defaults.fetch_add(s.defaults, Ordering::Relaxed);
        self.quarantine_trips.fetch_add(s.quarantine_trips, Ordering::Relaxed);
        self.marshal_failures.fetch_add(s.marshal_failures, Ordering::Relaxed);
        self.salvages.fetch_add(s.salvages, Ordering::Relaxed);
        self.salvaged_words.fetch_add(s.salvaged_words, Ordering::Relaxed);
        self.auto_readmits.fetch_add(s.auto_readmits, Ordering::Relaxed);
        self.bans.fetch_add(s.bans, Ordering::Relaxed);
    }
}

/// Control-plane state shared by the [`ShardedHost`] and every
/// [`ShardHandle`].
struct Control {
    config: HostConfig,
    shards: usize,
    /// Membership epoch: bumped after every install/uninstall/readmit
    /// and by every winning detach. The only thing a dispatching shard
    /// reads when nothing changed.
    epoch: AtomicU64,
    next_id: AtomicU64,
    registry: Mutex<BTreeMap<u64, Arc<SharedGraft>>>,
    mailboxes: Mutex<Vec<Sender<ShardOp>>>,
    stats: AtomicStats,
    /// Per-shard dispatch totals (merged on flush), for the
    /// shard-imbalance histogram.
    shard_dispatches: Vec<AtomicU64>,
    installs: AtomicU64,
    uninstalls: AtomicU64,
    readmits: AtomicU64,
}

/// The sharded extension kernel: the [`GraftHost`] chains replicated
/// over N worker shards.
///
/// `ShardedHost` is the control plane: install, uninstall, readmit,
/// and observe. Dispatch happens on [`ShardHandle`]s, taken once with
/// [`take_handles`](ShardedHost::take_handles) and moved onto worker
/// threads (or driven cooperatively through [`VirtualShards`]).
/// Control-plane calls take `&self` and stay fully usable while every
/// shard is dispatching.
pub struct ShardedHost {
    inner: Arc<Control>,
    handles: Vec<Option<ShardHandle>>,
    published: bool,
}

impl ShardedHost {
    /// A host with `shards` worker shards and the default supervisor
    /// policy.
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, HostConfig::default())
    }

    /// A host with `shards` worker shards and an explicit policy.
    pub fn with_config(shards: usize, config: HostConfig) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let inner = Arc::new(Control {
            config,
            shards,
            epoch: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            registry: Mutex::new(BTreeMap::new()),
            mailboxes: Mutex::new(senders),
            stats: AtomicStats::default(),
            shard_dispatches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            installs: AtomicU64::new(0),
            uninstalls: AtomicU64::new(0),
            readmits: AtomicU64::new(0),
        });
        let handles = receivers
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                Some(ShardHandle {
                    shard,
                    control: Arc::clone(&inner),
                    rx,
                    seen_epoch: 0,
                    grafts: BTreeMap::new(),
                    chains: std::array::from_fn(|_| Vec::new()),
                    stats: HostStats::default(),
                    published: HostStats::default(),
                    depth_counts: [0; DEPTH_SLOTS],
                    published_depth: [0; DEPTH_SLOTS],
                    epoch_syncs: 0,
                    mailbox_ops: 0,
                    flushes: 0,
                    recorder: TraceBuffer::new(graft_telemetry::TRACE_BUFFER_CAPACITY),
                    trace_seq: 0,
                })
            })
            .collect();
        ShardedHost {
            inner,
            handles,
            published: false,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.inner.shards
    }

    /// The supervisor policy in force.
    pub fn config(&self) -> HostConfig {
        self.inner.config
    }

    /// Takes ownership of one shard's handle (at most once per shard).
    pub fn take_handle(&mut self, shard: usize) -> Option<ShardHandle> {
        self.handles.get_mut(shard).and_then(Option::take)
    }

    /// Takes every remaining handle, in shard order.
    pub fn take_handles(&mut self) -> Vec<ShardHandle> {
        self.handles.iter_mut().filter_map(Option::take).collect()
    }

    /// Installs `engine` at the end of `point`'s chain on every shard.
    ///
    /// Binds the point's entry once on the source engine, forks one
    /// thread-confined replica per additional shard (shard 0 receives
    /// the source itself), and queues the install to every shard's
    /// mailbox under a bumped epoch. Shards pick it up at their next
    /// dispatch — the chain stays hot throughout. Fails atomically: if
    /// any fork fails, nothing is installed anywhere.
    pub fn install(
        &self,
        point: AttachPoint,
        name: &str,
        engine: Box<dyn ExtensionEngine>,
    ) -> Result<GraftId, GraftError> {
        self.install_at(point, name, engine, usize::MAX)
    }

    /// Installs at the *front* of every shard's chain.
    pub fn install_front(
        &self,
        point: AttachPoint,
        name: &str,
        engine: Box<dyn ExtensionEngine>,
    ) -> Result<GraftId, GraftError> {
        self.install_at(point, name, engine, 0)
    }

    /// Installs with a salvage plan: when the supervisor detaches this
    /// graft, the winning shard lifts the named regions out of *its*
    /// replica into a [`SalvagedState`] (readable via
    /// [`take_salvage`](Self::take_salvage)). Region names are
    /// validated against the engine before anything is forked.
    pub fn install_with_salvage(
        &self,
        point: AttachPoint,
        name: &str,
        engine: Box<dyn ExtensionEngine>,
        salvage_regions: &[&str],
    ) -> Result<GraftId, GraftError> {
        for region in salvage_regions {
            engine.bind_region(region)?;
        }
        self.install_full(point, name, engine, usize::MAX, salvage_regions)
    }

    fn install_at(
        &self,
        point: AttachPoint,
        name: &str,
        engine: Box<dyn ExtensionEngine>,
        at: usize,
    ) -> Result<GraftId, GraftError> {
        self.install_full(point, name, engine, at, &[])
    }

    fn install_full(
        &self,
        point: AttachPoint,
        name: &str,
        mut engine: Box<dyn ExtensionEngine>,
        at: usize,
        salvage_regions: &[&str],
    ) -> Result<GraftId, GraftError> {
        let entry = engine.bind_entry(point.entry())?;
        // Fork all replicas *before* registering anything, so a
        // non-forkable engine fails the install cleanly on every shard.
        let mut engines: Vec<Box<dyn ExtensionEngine>> = Vec::with_capacity(self.inner.shards);
        for shard in 1..self.inner.shards {
            engines.push(engine.fork_for_shard(shard)?);
        }
        engine.set_fuel(self.inner.config.fuel_budget);
        for replica in &mut engines {
            replica.set_fuel(self.inner.config.fuel_budget);
        }
        engines.insert(0, engine);

        let id = self.inner.next_id.fetch_add(1, Ordering::AcqRel);
        let generation = self.inner.epoch.load(Ordering::Acquire);
        let shared = Arc::new(SharedGraft::new(
            id,
            name,
            engines[0].technology(),
            generation,
            salvage_regions.iter().map(|s| s.to_string()).collect(),
        ));
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .insert(id, Arc::clone(&shared));
        {
            let mailboxes = self.inner.mailboxes.lock().expect("mailbox lock");
            for (tx, replica) in mailboxes.iter().zip(engines) {
                // A send only fails when the shard handle is gone; the
                // remaining shards still serve.
                let _ = tx.send(ShardOp::Install {
                    shared: Arc::clone(&shared),
                    engine: replica,
                    entry,
                    point,
                    at,
                });
            }
        }
        self.inner.installs.fetch_add(1, Ordering::Relaxed);
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(GraftId(id))
    }

    /// Uninstalls a graft from every shard. Returns `false` for an
    /// unknown id. Shards drop their replicas (merging any unflushed
    /// ledger counts) at their next dispatch.
    pub fn uninstall(&self, id: GraftId) -> bool {
        if self
            .inner
            .registry
            .lock()
            .expect("registry lock")
            .remove(&id.0)
            .is_none()
        {
            return false;
        }
        {
            let mailboxes = self.inner.mailboxes.lock().expect("mailbox lock");
            for tx in mailboxes.iter() {
                let _ = tx.send(ShardOp::Uninstall(id.0));
            }
        }
        self.inner.uninstalls.fetch_add(1, Ordering::Relaxed);
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Re-admits a quarantined graft on probation, across all shards at
    /// once (shards read the shared supervisor state inline, so the
    /// re-admission is visible at every shard's very next dispatch).
    pub fn readmit(&self, id: GraftId) -> bool {
        let registry = self.inner.registry.lock().expect("registry lock");
        let Some(g) = registry.get(&id.0) else {
            return false;
        };
        if g.state.load(Ordering::Acquire) != STATE_QUARANTINED {
            return false; // active, on probation, or permanently banned
        }
        g.strikes.store(0, Ordering::Release);
        g.backoff_remaining.store(0, Ordering::Release);
        g.remaining_clean
            .store(self.inner.config.probation_clean.max(1), Ordering::Release);
        // New incarnation: a detach observed after this point must have
        // been won against the probation state, not the old one.
        g.generation
            .store(self.inner.epoch.load(Ordering::Acquire), Ordering::Release);
        g.state.store(STATE_PROBATION, Ordering::Release);
        drop(registry);
        self.inner.readmits.fetch_add(1, Ordering::Relaxed);
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Merged cross-shard ledger of one graft. Complete once shards
    /// have flushed (a [`ShardHandle`] flushes explicitly or on drop).
    pub fn ledger(&self, id: GraftId) -> Option<GraftLedger> {
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .get(&id.0)
            .map(|g| g.ledger.snapshot())
    }

    /// The lifecycle state of one graft.
    pub fn state(&self, id: GraftId) -> Option<GraftState> {
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .get(&id.0)
            .map(|g| g.state())
    }

    /// Whether the supervisor has detached this graft (on all shards —
    /// detach is global by construction).
    pub fn is_quarantined(&self, id: GraftId) -> bool {
        matches!(self.state(id), Some(GraftState::Quarantined { .. }))
    }

    /// Takes ownership of the state the winning detach shard salvaged
    /// out of its replica (e.g. to re-seed a replacement graft or the
    /// built-in policy).
    pub fn take_salvage(&self, id: GraftId) -> Option<SalvagedState> {
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .get(&id.0)
            .and_then(|g| g.salvage.lock().expect("salvage lock").take())
    }

    /// Lifetime quarantine trips for one graft (the backoff rung).
    pub fn quarantine_count(&self, id: GraftId) -> Option<u32> {
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .get(&id.0)
            .map(|g| g.quarantines.load(Ordering::Acquire))
    }

    /// The epoch stamped by the supervisor when it detached this graft
    /// (0 if never detached). Strictly greater than the graft's install
    /// generation, and totally ordered against membership changes.
    pub fn detach_epoch(&self, id: GraftId) -> Option<u64> {
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .get(&id.0)
            .map(|g| g.detach_epoch.load(Ordering::Acquire))
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Drains every postmortem captured by winning detaches so far,
    /// oldest first per graft. A shard-local report's event tail only
    /// covers the winning shard's recorder; re-attach a merged timeline
    /// with [`PostmortemReport::adopt_tail`] for the cross-shard view.
    pub fn take_postmortems(&self) -> Vec<PostmortemReport> {
        let registry = self.inner.registry.lock().expect("registry lock");
        let mut out = Vec::new();
        for g in registry.values() {
            out.append(&mut g.postmortems.lock().expect("postmortem lock"));
        }
        out
    }

    /// The technology a graft was installed under.
    pub fn technology(&self, id: GraftId) -> Option<Technology> {
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .get(&id.0)
            .map(|g| g.tech)
    }

    /// The name a graft was installed under.
    pub fn name(&self, id: GraftId) -> Option<String> {
        self.inner
            .registry
            .lock()
            .expect("registry lock")
            .get(&id.0)
            .map(|g| g.name.clone())
    }

    /// Aggregate statistics: control-plane counts plus everything the
    /// shards have flushed so far.
    pub fn stats(&self) -> HostStats {
        let s = &self.inner.stats;
        HostStats {
            dispatches: s.dispatches.load(Ordering::Relaxed),
            invocations: s.invocations.load(Ordering::Relaxed),
            traps: s.traps.load(Ordering::Relaxed),
            overrides: s.overrides.load(Ordering::Relaxed),
            continues: s.continues.load(Ordering::Relaxed),
            defaults: s.defaults.load(Ordering::Relaxed),
            quarantine_trips: s.quarantine_trips.load(Ordering::Relaxed),
            installs: self.inner.installs.load(Ordering::Relaxed),
            uninstalls: self.inner.uninstalls.load(Ordering::Relaxed),
            readmits: self.inner.readmits.load(Ordering::Relaxed),
            marshal_failures: s.marshal_failures.load(Ordering::Relaxed),
            salvages: s.salvages.load(Ordering::Relaxed),
            salvaged_words: s.salvaged_words.load(Ordering::Relaxed),
            auto_readmits: s.auto_readmits.load(Ordering::Relaxed),
            bans: s.bans.load(Ordering::Relaxed),
        }
    }

    /// Per-shard dispatch totals flushed so far, in shard order.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.inner
            .shard_dispatches
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }

    /// A run-queue plane sized for this host's shards — the adaptive
    /// data plane ([`crate::steal`]). Submitters feed it through
    /// [`enqueue`]; each [`ShardHandle`] drains it with
    /// [`ShardHandle::drain_queue_with`].
    ///
    /// [`enqueue`]: ShardedHost::enqueue
    pub fn run_queues<T>(&self, policy: StealPolicy) -> RunQueues<T> {
        RunQueues::new(self.inner.shards, policy)
    }

    /// Stamps one work item with the current host epoch and submits it
    /// to the plane (see [`RunQueues::submit`]). `graft` steers
    /// affinity placement; `Err` returns the payload on backpressure.
    pub fn enqueue<T>(
        &self,
        queues: &RunQueues<T>,
        key: u64,
        graft: Option<GraftId>,
        payload: T,
    ) -> Result<usize, T> {
        queues
            .submit(WorkItem {
                key,
                graft: graft.map_or(0, |g| g.0),
                epoch: self.epoch(),
                payload,
            })
            .map_err(|w| w.payload)
    }

    /// Publishes control-plane telemetry: `kernel.shard.*` counters and
    /// the shard-imbalance histogram. Idempotent-by-construction only
    /// for the imbalance snapshot; called once from `Drop`.
    fn publish_telemetry(&mut self) {
        if self.published || !graft_telemetry::enabled() {
            return;
        }
        self.published = true;
        graft_telemetry::counter!("kernel.shard.count").add(self.inner.shards as u64);
        graft_telemetry::counter!("kernel.shard.installs")
            .add(self.inner.installs.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.uninstalls")
            .add(self.inner.uninstalls.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.readmits")
            .add(self.inner.readmits.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.shard.epoch")
            .add(self.inner.epoch.load(Ordering::Acquire));
        let s = &self.inner.stats;
        graft_telemetry::counter!("kernel.recovery.salvages")
            .add(s.salvages.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.recovery.salvaged_words")
            .add(s.salvaged_words.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.recovery.auto_readmits")
            .add(s.auto_readmits.load(Ordering::Relaxed));
        graft_telemetry::counter!("kernel.recovery.bans")
            .add(s.bans.load(Ordering::Relaxed));
        let loads = self.shard_loads();
        let total: u64 = loads.iter().sum();
        if total > 0 && loads.len() > 1 {
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            let mean = total as f64 / loads.len() as f64;
            // Spread of per-shard load around the mean, in percent:
            // 0 = perfectly balanced, 100 = the busiest shard saw one
            // mean-load more than the idlest.
            let imbalance = ((max - min) as f64 / mean * 100.0).round() as u64;
            graft_telemetry::histogram!("kernel.shard.imbalance_pct").record(imbalance);
        }
    }
}

impl Drop for ShardedHost {
    fn drop(&mut self) {
        // Drop any never-taken handles first so their ledgers and
        // shard counters flush before the imbalance snapshot.
        for h in &mut self.handles {
            h.take();
        }
        self.publish_telemetry();
    }
}

/// One worker shard's thread-confined half of a [`ShardedHost`].
///
/// `Send` but not `Sync`: move it into the worker thread that owns the
/// shard, then dispatch inline. All engines reached through a handle
/// are private to it; the only shared traffic is the per-graft atomic
/// supervisor state, one epoch load per dispatch, and the mailbox drain
/// when membership changed.
pub struct ShardHandle {
    shard: usize,
    control: Arc<Control>,
    rx: Receiver<ShardOp>,
    seen_epoch: u64,
    grafts: BTreeMap<u64, ShardGraft>,
    chains: [Vec<u64>; AttachPoint::COUNT],
    stats: HostStats,
    published: HostStats,
    depth_counts: [u64; DEPTH_SLOTS],
    published_depth: [u64; DEPTH_SLOTS],
    epoch_syncs: u64,
    mailbox_ops: u64,
    flushes: u64,
    /// This shard's flight recorder: thread-confined like the engines,
    /// merged across shards by [`VirtualShards::merged_timeline`] (or by
    /// collecting [`ShardHandle::trace_events`] from worker threads).
    recorder: TraceBuffer,
    /// Dispatches traced by this shard — the per-source sequence
    /// [`TraceId::mint`] consumes (the shard index is the source, so
    /// ids are globally unique without a shared atomic).
    trace_seq: u64,
}

struct ShardGraft {
    shared: Arc<SharedGraft>,
    engine: Box<dyn ExtensionEngine>,
    entry: EntryId,
    /// Private per-shard accounting, merged on flush.
    local: GraftLedger,
}

/// Post-detach bookkeeping on the shard that *won* the detach CAS
/// (exactly one across all shards): salvage the planned regions out of
/// this shard's replica, then arm the backoff ladder or ban at the
/// ceiling. Cold path — the locks here are never touched by a
/// dispatch that doesn't detach.
fn win_detach(
    config: &HostConfig,
    stats: &mut HostStats,
    g: &mut ShardGraft,
    reason: TrapKind,
    recorder: &TraceBuffer,
    shard: u32,
) {
    stats.quarantine_trips += 1;
    let trips = g.shared.quarantines.fetch_add(1, Ordering::AcqRel) + 1;
    let mut salvaged_words = None;
    if !g.shared.salvage_plan.is_empty() {
        if let Some(s) = recovery::salvage(
            &g.shared.name,
            g.shared.tech,
            g.engine.as_ref(),
            &g.shared.salvage_plan,
        ) {
            stats.salvages += 1;
            stats.salvaged_words += s.words() as u64;
            salvaged_words = Some(s.words());
            *g.shared.salvage.lock().expect("salvage lock") = Some(s);
        }
    }
    if config.backoff_base > 0 {
        if trips >= config.ban_ceiling.max(1) {
            g.shared.state.store(STATE_BANNED, Ordering::Release);
            stats.bans += 1;
        } else {
            g.shared.backoff_remaining.store(
                config
                    .backoff_base
                    .saturating_mul(1u64 << u64::from(trips - 1).min(62)),
                Ordering::Release,
            );
        }
    }
    // Postmortem: merge the winner's unflushed ledger into the shared
    // totals first so the report's ledger covers every invocation this
    // shard accounted, then snapshot supervisor state. The event tail
    // only sees the winner's recorder; traps that landed on other
    // shards are re-attached later via `PostmortemReport::adopt_tail`
    // over a merged timeline.
    g.shared.ledger.merge(&g.local);
    g.local = GraftLedger::default();
    let id = g.shared.id;
    let mut events: Vec<TraceEvent> = recorder
        .events()
        .into_iter()
        .filter(|e| e.graft == id)
        .collect();
    if events.len() > POSTMORTEM_TAIL {
        events.drain(..events.len() - POSTMORTEM_TAIL);
    }
    let report = PostmortemReport {
        graft: g.shared.name.clone(),
        graft_id: id,
        tech: g.shared.tech,
        reason,
        state: g.shared.state(),
        ledger: g.shared.ledger.snapshot(),
        strikes: g.shared.strikes.load(Ordering::Acquire),
        quarantines: trips,
        backoff_remaining: g.shared.backoff_remaining.load(Ordering::Acquire),
        salvaged_words,
        events,
        detached_at_ns: graft_telemetry::now_ns(),
        shard: Some(shard),
    };
    g.shared
        .postmortems
        .lock()
        .expect("postmortem lock")
        .push(report);
}

/// One dispatch served while `shared` sat quarantined: CAS-decrement
/// its backoff window; the shard that moves 1 → 0 wins the atomic
/// re-admission (mirroring [`ShardedHost::readmit`], but initiated by
/// the ladder). Composes with any number of shards: the window counts
/// dispatches *globally*, and exactly one shard re-admits.
fn note_backoff_dispatch(control: &Control, stats: &mut HostStats, shared: &SharedGraft) {
    if control.config.backoff_base == 0
        || shared.state.load(Ordering::Acquire) != STATE_QUARANTINED
    {
        return;
    }
    let mut left = shared.backoff_remaining.load(Ordering::Acquire);
    while left > 0 {
        match shared.backoff_remaining.compare_exchange_weak(
            left,
            left - 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                if left == 1 {
                    shared.strikes.store(0, Ordering::Release);
                    shared
                        .remaining_clean
                        .store(control.config.probation_clean.max(1), Ordering::Release);
                    shared
                        .generation
                        .store(control.epoch.load(Ordering::Acquire), Ordering::Release);
                    if shared
                        .state
                        .compare_exchange(
                            STATE_QUARANTINED,
                            STATE_PROBATION,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        stats.auto_readmits += 1;
                        control.readmits.fetch_add(1, Ordering::Relaxed);
                        control.epoch.fetch_add(1, Ordering::AcqRel);
                    }
                }
                return;
            }
            Err(now) => left = now,
        }
    }
}

impl ShardHandle {
    /// This handle's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Catches up with membership: one epoch load when nothing
    /// changed; otherwise drain the mailbox.
    fn sync(&mut self) {
        let epoch = self.control.epoch.load(Ordering::Acquire);
        if epoch == self.seen_epoch {
            return;
        }
        self.seen_epoch = epoch;
        self.epoch_syncs += 1;
        while let Ok(op) = self.rx.try_recv() {
            self.mailbox_ops += 1;
            match op {
                ShardOp::Install {
                    shared,
                    engine,
                    entry,
                    point,
                    at,
                } => {
                    let id = shared.id;
                    self.grafts.insert(
                        id,
                        ShardGraft {
                            shared,
                            engine,
                            entry,
                            local: GraftLedger::default(),
                        },
                    );
                    let chain = &mut self.chains[point as usize];
                    let at = at.min(chain.len());
                    chain.insert(at, id);
                }
                ShardOp::Uninstall(id) => {
                    if let Some(g) = self.grafts.remove(&id) {
                        // Merge before dropping so no counts are lost.
                        g.shared.ledger.merge(&g.local);
                        for chain in &mut self.chains {
                            chain.retain(|&x| x != id);
                        }
                    }
                }
            }
        }
    }

    /// The chain this shard would dispatch at `point`, in order.
    pub fn chain(&mut self, point: AttachPoint) -> Vec<GraftId> {
        self.sync();
        self.chains[point as usize].iter().map(|&id| GraftId(id)).collect()
    }

    /// Grafts at `point` this shard's dispatch would actually consult.
    pub fn active_len(&mut self, point: AttachPoint) -> usize {
        self.sync();
        self.chains[point as usize]
            .iter()
            .filter(|id| !self.grafts[id].shared.is_detached())
            .count()
    }

    /// This shard's replica engine for a graft (e.g. to marshal
    /// shard-local state after install).
    pub fn engine_mut(&mut self, id: GraftId) -> Option<&mut (dyn ExtensionEngine + '_)> {
        self.sync();
        self.grafts.get_mut(&id.0).map(|g| g.engine.as_mut() as _)
    }

    /// This shard's private (unflushed) ledger for a graft.
    pub fn local_ledger(&self, id: GraftId) -> Option<&GraftLedger> {
        self.grafts.get(&id.0).map(|g| &g.local)
    }

    /// This shard's dispatch-path statistics (unflushed view).
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Walks `point`'s chain on this shard — the same verdict, ledger,
    /// and supervisor semantics as [`GraftHost::dispatch`], with the
    /// quarantine gate read from the *shared* supervisor state so a
    /// detach by any shard suppresses invocation here immediately.
    pub fn dispatch<F>(&mut self, point: AttachPoint, mut marshal: F) -> Verdict
    where
        F: FnMut(&mut dyn ExtensionEngine) -> Result<Vec<i64>, GraftError>,
    {
        self.sync();
        let p = point as usize;
        self.stats.dispatches += 1;
        let depth = self.chains[p]
            .iter()
            .filter(|id| !self.grafts[id].shared.is_detached())
            .count();
        self.depth_counts[depth.min(DEPTH_SLOTS - 1)] += 1;
        // One causal id per dispatch; the shard index is the mint
        // source, so ids stay globally unique without a shared atomic.
        let tracing = graft_telemetry::tracing();
        let trace = if tracing {
            self.trace_seq += 1;
            TraceId::mint(self.shard as u16, self.trace_seq)
        } else {
            TraceId::NONE
        };
        let mut chain_seq: u32 = 0;
        for i in 0..self.chains[p].len() {
            let id = self.chains[p][i];
            let Some(g) = self.grafts.get_mut(&id) else {
                continue;
            };
            // The cross-shard quarantine gate: one Acquire load.
            if g.shared.is_detached() {
                // Backoff re-admission: each dispatch served without
                // this graft — on any shard — counts toward its clean
                // built-in window.
                note_backoff_dispatch(&self.control, &mut self.stats, &g.shared);
                continue;
            }
            let started = Instant::now();
            let args = match marshal(g.engine.as_mut()) {
                Ok(args) => args,
                Err(_) => {
                    self.stats.marshal_failures += 1;
                    if tracing {
                        self.recorder.record(TraceEvent {
                            ts_ns: graft_telemetry::since_epoch_ns(started),
                            trace,
                            seq: chain_seq,
                            graft: id,
                            shard: self.shard as u32,
                            point: p as u8,
                            tech: g.shared.tech as u8,
                            verdict: graft_telemetry::TRACE_VERDICT_MARSHAL_FAIL,
                            value: 0,
                            duration_ns: started.elapsed().as_nanos().min(u64::MAX as u128)
                                as u64,
                            fuel: 0,
                        });
                    }
                    chain_seq += 1;
                    continue;
                }
            };
            let result = if tracing {
                g.engine.invoke_id_traced(g.entry, &args, trace)
            } else {
                g.engine.invoke_id(g.entry, &args)
            };
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let fuel = g.engine.fuel_used();
            match result {
                Ok(ret) => {
                    g.local.record_ok(ns, fuel);
                    g.shared.note_clean();
                    self.stats.invocations += 1;
                    let verdict = point.decode(ret);
                    if tracing {
                        let (code, value) = match verdict {
                            Verdict::Override(v) => (graft_telemetry::TRACE_VERDICT_OVERRIDE, v),
                            Verdict::Continue => (graft_telemetry::TRACE_VERDICT_CONTINUE, 0),
                        };
                        self.recorder.record(TraceEvent {
                            ts_ns: graft_telemetry::since_epoch_ns(started),
                            trace,
                            seq: chain_seq,
                            graft: id,
                            shard: self.shard as u32,
                            point: p as u8,
                            tech: g.shared.tech as u8,
                            verdict: code,
                            value,
                            duration_ns: ns,
                            fuel: fuel.unwrap_or(0),
                        });
                    }
                    match verdict {
                        v @ Verdict::Override(_) => {
                            self.stats.overrides += 1;
                            return v;
                        }
                        Verdict::Continue => self.stats.continues += 1,
                    }
                }
                Err(GraftError::Trap(trap)) => {
                    g.local.record_trap(ns, fuel, &trap);
                    self.stats.invocations += 1;
                    self.stats.traps += 1;
                    if tracing {
                        self.recorder.record(TraceEvent {
                            ts_ns: graft_telemetry::since_epoch_ns(started),
                            trace,
                            seq: chain_seq,
                            graft: id,
                            shard: self.shard as u32,
                            point: p as u8,
                            tech: g.shared.tech as u8,
                            verdict: graft_telemetry::TRACE_VERDICT_TRAP,
                            value: trap.kind() as usize as i64,
                            duration_ns: ns,
                            fuel: fuel.unwrap_or(0),
                        });
                    }
                    if g.shared.note_trap(
                        trap.kind(),
                        self.control.config.trap_threshold,
                        &self.control.epoch,
                    ) {
                        // The winning detach bumped the epoch; our next
                        // sync is a (cheap, empty) mailbox drain.
                        win_detach(
                            &self.control.config,
                            &mut self.stats,
                            g,
                            trap.kind(),
                            &self.recorder,
                            self.shard as u32,
                        );
                    }
                }
                Err(_) => {
                    self.stats.marshal_failures += 1;
                }
            }
            chain_seq += 1;
        }
        self.stats.defaults += 1;
        Verdict::Continue
    }

    /// Dispatches `calls` chain walks at `point` as one batch — the
    /// adaptive-dispatch fast path. Returns one verdict per call, in
    /// call order.
    ///
    /// When the chain at `point` is a single attached graft, tracing
    /// is off, and the graft's engine does not meter fuel
    /// ([`ExtensionEngine::fuel_metered`]), the calls fuse into one
    /// [`ExtensionEngine::invoke_batch`] (the PR 2 path): every call is
    /// marshalled first, then the engine runs the whole batch without
    /// re-crossing the chain-walk machinery per call. Accounting stays
    /// call-exact — each call counts one dispatch, one invocation, its
    /// own verdict statistics, and its own supervisor strike. On a
    /// mid-batch trap the faulting call is charged exactly once (ledger
    /// trap, strike, possible winning detach) and the remaining calls
    /// fall back to per-call dispatch, which observes any detach the
    /// trap just caused — exactly like back-to-back scalar dispatches.
    ///
    /// Everything else — deeper or empty chains, tracing runs (each
    /// dispatch needs its own causal id), metered engines (a fused
    /// batch can only report the last call's fuel), ragged arities,
    /// marshal failures — takes the per-call path, whose semantics are
    /// [`dispatch`] in a loop. The `marshal` closure must be pure per
    /// call: the fused path marshals every call before the first
    /// invocation and re-marshals when degrading to per-call dispatch
    /// (see [`ChainDispatch::dispatch_batch`]).
    ///
    /// [`dispatch`]: ShardHandle::dispatch
    pub fn dispatch_batch<F>(
        &mut self,
        point: AttachPoint,
        calls: usize,
        mut marshal: F,
    ) -> Vec<Verdict>
    where
        F: FnMut(usize, &mut dyn ExtensionEngine) -> Result<Vec<i64>, GraftError>,
    {
        self.sync();
        let p = point as usize;
        let fusable = calls > 1
            && !graft_telemetry::tracing()
            && self.chains[p].len() == 1
            && {
                let id = self.chains[p][0];
                self.grafts
                    .get(&id)
                    .is_some_and(|g| !g.shared.is_detached() && !g.engine.fuel_metered())
            };
        if !fusable {
            return (0..calls)
                .map(|i| self.dispatch(point, |e| marshal(i, e)))
                .collect();
        }
        let id = self.chains[p][0];
        // Marshal every call up front (the dispatch_batch purity
        // contract allows it); a failure or ragged arity degrades to
        // the per-call path, re-marshalling from scratch.
        let mut args_flat: Vec<i64> = Vec::new();
        let mut arity: Option<usize> = None;
        {
            let g = self.grafts.get_mut(&id).expect("chain member");
            for i in 0..calls {
                match marshal(i, g.engine.as_mut()) {
                    Ok(args) if *arity.get_or_insert(args.len()) == args.len() => {
                        args_flat.extend_from_slice(&args);
                    }
                    _ => {
                        arity = None;
                        break;
                    }
                }
            }
        }
        if arity.is_none() {
            return (0..calls)
                .map(|i| self.dispatch(point, |e| marshal(i, e)))
                .collect();
        }
        let started = Instant::now();
        let mut out = Vec::with_capacity(calls);
        let g = self.grafts.get_mut(&id).expect("chain member");
        let result = g.engine.invoke_batch(g.entry, calls, &args_flat, &mut out);
        let total_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // Wall-clock attribution per call (an even share; `cum_ns` is
        // the one machine-dependent ledger field).
        let share_ns = total_ns / calls as u64;
        let mut verdicts = Vec::with_capacity(calls);
        // The completed prefix: each result is one full dispatch.
        for &ret in &out {
            self.stats.dispatches += 1;
            self.depth_counts[1.min(DEPTH_SLOTS - 1)] += 1;
            g.local.record_ok(share_ns, None);
            g.shared.note_clean();
            self.stats.invocations += 1;
            match point.decode(ret) {
                v @ Verdict::Override(_) => {
                    self.stats.overrides += 1;
                    verdicts.push(v);
                }
                Verdict::Continue => {
                    self.stats.continues += 1;
                    self.stats.defaults += 1;
                    verdicts.push(Verdict::Continue);
                }
            }
        }
        if let Err(err) = result {
            // The faulting call, charged exactly once; then the batch
            // degrades to per-call dispatch for the remainder, which
            // observes any detach the trap just caused.
            self.stats.dispatches += 1;
            self.depth_counts[1.min(DEPTH_SLOTS - 1)] += 1;
            match err {
                GraftError::Trap(trap) => {
                    g.local.record_trap(share_ns, None, &trap);
                    self.stats.invocations += 1;
                    self.stats.traps += 1;
                    if g.shared.note_trap(
                        trap.kind(),
                        self.control.config.trap_threshold,
                        &self.control.epoch,
                    ) {
                        win_detach(
                            &self.control.config,
                            &mut self.stats,
                            g,
                            trap.kind(),
                            &self.recorder,
                            self.shard as u32,
                        );
                    }
                }
                _ => self.stats.marshal_failures += 1,
            }
            self.stats.defaults += 1;
            verdicts.push(Verdict::Continue);
            for i in verdicts.len()..calls {
                let v = self.dispatch(point, |e| marshal(i, e));
                verdicts.push(v);
            }
        }
        debug_assert_eq!(verdicts.len(), calls);
        verdicts
    }

    /// Drains one adaptively sized batch from `queues` for this shard
    /// and dispatches each item's chain walk at `point`; returns the
    /// number of items dispatched (0 = nothing runnable).
    ///
    /// The steal-safe handoff: the handle syncs membership *before*
    /// dispatching and checks it has caught up with every drained
    /// item's submit-time epoch (monotone, so a mailbox sync after the
    /// drain always suffices) — a stolen item never runs against a
    /// staler chain than its submitter saw. Items executed here mark
    /// this shard warm for their graft, steering future placement and
    /// theft ([`RunQueues::mark_warm`]).
    ///
    /// `to_args` marshals an item's payload into its argument vector;
    /// it must be pure (it may run more than once per item, per the
    /// [`ChainDispatch::dispatch_batch`] contract). `on_result`
    /// observes every `(item, verdict)` pair in execution order.
    pub fn drain_queue_with<T, A, F>(
        &mut self,
        queues: &RunQueues<T>,
        point: AttachPoint,
        mut to_args: A,
        mut on_result: F,
    ) -> usize
    where
        A: FnMut(&T) -> Vec<i64>,
        F: FnMut(&WorkItem<T>, Verdict),
    {
        let mut batch = Vec::new();
        if queues.take(self.shard, &mut batch) == 0 {
            return 0;
        }
        self.sync();
        debug_assert!(
            batch.iter().all(|w| w.epoch <= self.seen_epoch),
            "drained an item stamped past the shard's synced epoch"
        );
        for w in &batch {
            queues.mark_warm(self.shard, w.graft);
        }
        let verdicts =
            self.dispatch_batch(point, batch.len(), |i, _engine| Ok(to_args(&batch[i].payload)));
        for (w, v) in batch.iter().zip(verdicts) {
            on_result(w, v);
        }
        batch.len()
    }

    /// [`drain_queue_with`] discarding the per-item verdicts.
    ///
    /// [`drain_queue_with`]: ShardHandle::drain_queue_with
    pub fn drain_queue<T, A>(
        &mut self,
        queues: &RunQueues<T>,
        point: AttachPoint,
        to_args: A,
    ) -> usize
    where
        A: FnMut(&T) -> Vec<i64>,
    {
        self.drain_queue_with(queues, point, to_args, |_, _| {})
    }

    /// Invokes one graft directly on this shard's replica, with ledger
    /// accounting and the shared quarantine gate: a detached graft
    /// deterministically returns [`GraftError::Unavailable`] — on every
    /// shard, not just the one that observed the traps.
    pub fn invoke(&mut self, id: GraftId, args: &[i64]) -> Result<i64, GraftError> {
        self.sync();
        let Some(g) = self.grafts.get_mut(&id.0) else {
            return Err(GraftError::Unavailable {
                graft: format!("graft#{}", id.0),
                missing: "installation (no such graft)".into(),
            });
        };
        if g.shared.is_detached() {
            let missing = if g.shared.state.load(Ordering::Acquire) == STATE_BANNED {
                "permanently banned at the backoff ceiling"
            } else {
                "detached by quarantine supervisor"
            };
            return Err(GraftError::Unavailable {
                graft: g.shared.name.clone(),
                missing: missing.into(),
            });
        }
        let tracing = graft_telemetry::tracing();
        let trace = if tracing {
            self.trace_seq += 1;
            TraceId::mint(self.shard as u16, self.trace_seq)
        } else {
            TraceId::NONE
        };
        let started = Instant::now();
        let result = if tracing {
            g.engine.invoke_id_traced(g.entry, args, trace)
        } else {
            g.engine.invoke_id(g.entry, args)
        };
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let fuel = g.engine.fuel_used();
        self.stats.invocations += 1;
        if tracing {
            // Direct invocations have no attach point (`u8::MAX`); an
            // `Ok` records the return value under the override verdict.
            let (verdict, value) = match &result {
                Ok(ret) => (graft_telemetry::TRACE_VERDICT_OVERRIDE, *ret),
                Err(GraftError::Trap(trap)) => (
                    graft_telemetry::TRACE_VERDICT_TRAP,
                    trap.kind() as usize as i64,
                ),
                Err(_) => (graft_telemetry::TRACE_VERDICT_MARSHAL_FAIL, 0),
            };
            self.recorder.record(TraceEvent {
                ts_ns: graft_telemetry::since_epoch_ns(started),
                trace,
                seq: 0,
                graft: id.0,
                shard: self.shard as u32,
                point: u8::MAX,
                tech: g.shared.tech as u8,
                verdict,
                value,
                duration_ns: ns,
                fuel: fuel.unwrap_or(0),
            });
        }
        match &result {
            Ok(_) => {
                g.local.record_ok(ns, fuel);
                g.shared.note_clean();
            }
            Err(GraftError::Trap(trap)) => {
                g.local.record_trap(ns, fuel, trap);
                self.stats.traps += 1;
                if g.shared.note_trap(
                    trap.kind(),
                    self.control.config.trap_threshold,
                    &self.control.epoch,
                ) {
                    win_detach(
                        &self.control.config,
                        &mut self.stats,
                        g,
                        trap.kind(),
                        &self.recorder,
                        self.shard as u32,
                    );
                }
            }
            Err(_) => self.stats.marshal_failures += 1,
        }
        result
    }

    /// Merges this shard's private ledgers and statistics into the
    /// shared totals (pure `fetch_add` — lock-free on both sides) and
    /// publishes `kernel.shard.*` telemetry deltas. Idempotent: each
    /// count merges exactly once, and `Drop` flushes whatever remains,
    /// including when the worker thread unwinds out of a panic.
    pub fn flush(&mut self) {
        self.flushes += 1;
        // Publishes only events not yet flushed, and accounts every
        // overwritten-unpublished event to `telemetry.trace.dropped`.
        self.recorder.flush();
        for g in self.grafts.values_mut() {
            g.shared.ledger.merge(&g.local);
            g.local = GraftLedger::default();
        }
        let delta = self.stats.delta_since(&self.published);
        self.published = self.stats;
        self.control.stats.merge(&delta);
        self.control.shard_dispatches[self.shard].fetch_add(delta.dispatches, Ordering::Relaxed);
        if !graft_telemetry::enabled() {
            self.published_depth = self.depth_counts;
            return;
        }
        graft_telemetry::counter!("kernel.shard.dispatches").add(delta.dispatches);
        graft_telemetry::counter!("kernel.shard.invocations").add(delta.invocations);
        graft_telemetry::counter!("kernel.shard.traps").add(delta.traps);
        graft_telemetry::counter!("kernel.shard.detaches").add(delta.quarantine_trips);
        graft_telemetry::counter!("kernel.shard.marshal_failures").add(delta.marshal_failures);
        graft_telemetry::counter!("kernel.shard.epoch_syncs").add(self.epoch_syncs);
        graft_telemetry::counter!("kernel.shard.mailbox_ops").add(self.mailbox_ops);
        graft_telemetry::counter!("kernel.shard.flushes").incr();
        self.epoch_syncs = 0;
        self.mailbox_ops = 0;
        let depth = graft_telemetry::histogram!("kernel.chain_depth");
        for (d, (&n, &p)) in self
            .depth_counts
            .iter()
            .zip(self.published_depth.iter())
            .enumerate()
        {
            depth.record_n(d as u64, n.saturating_sub(p));
        }
        self.published_depth = self.depth_counts;
    }

    /// Every trace event still retained by this shard's flight
    /// recorder, oldest first (empty unless recording was armed).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.recorder.events()
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.flush();
        if graft_telemetry::enabled() {
            // Lifetime per-shard load, one histogram entry per shard:
            // the distribution graftstat summarizes as shard balance.
            graft_telemetry::histogram!("kernel.shard.load").record(self.stats.dispatches);
        }
    }
}

/// Deterministic cooperative driver for a [`ShardedHost`]'s handles —
/// the loom-style interleaving mode.
///
/// All shard handles are held on one thread and stepped in a seeded
/// round-robin: each full round visits every shard once, in an order
/// reshuffled from the seed, so cross-shard supervisor races (two
/// shards observing a graft's third strike, a detach landing between
/// another shard's gate check and its invoke, ...) are explored
/// *deterministically* — the same seed replays the same interleaving,
/// which is what CI needs.
pub struct VirtualShards {
    handles: Vec<ShardHandle>,
    order: Vec<usize>,
    cursor: usize,
    rng: SmallRng,
}

impl VirtualShards {
    /// Takes every remaining handle from `host` and builds a seeded
    /// driver over them.
    pub fn new(host: &mut ShardedHost, seed: u64) -> Self {
        let handles = host.take_handles();
        assert!(!handles.is_empty(), "all shard handles already taken");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..handles.len()).collect();
        order.shuffle(&mut rng);
        VirtualShards {
            handles,
            order,
            cursor: 0,
            rng,
        }
    }

    /// Number of shards driven.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when driving no shards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The next shard in the seeded round-robin (reshuffles the visit
    /// order at the end of each round).
    pub fn next_shard(&mut self) -> &mut ShardHandle {
        if self.cursor >= self.order.len() {
            self.cursor = 0;
            self.order.shuffle(&mut self.rng);
        }
        let idx = self.order[self.cursor];
        self.cursor += 1;
        &mut self.handles[idx]
    }

    /// A specific shard, for tests that script exact placements.
    pub fn shard_mut(&mut self, shard: usize) -> &mut ShardHandle {
        &mut self.handles[shard]
    }

    /// Dispatches on the next shard in the seeded rotation.
    pub fn dispatch<F>(&mut self, point: AttachPoint, marshal: F) -> Verdict
    where
        F: FnMut(&mut dyn ExtensionEngine) -> Result<Vec<i64>, GraftError>,
    {
        self.next_shard().dispatch(point, marshal)
    }

    /// Drains one adaptive batch on the next shard of the seeded
    /// rotation — the deterministic steal-interleaving step. Which
    /// shard drains (and therefore which steals happen) is a pure
    /// function of the seed and the queue state, so the same seed
    /// replays the same steal schedule. Returns items dispatched.
    pub fn drive_queue<T, A>(
        &mut self,
        queues: &RunQueues<T>,
        point: AttachPoint,
        to_args: A,
    ) -> usize
    where
        A: FnMut(&T) -> Vec<i64>,
    {
        self.next_shard().drain_queue(queues, point, to_args)
    }

    /// [`drive_queue`] with a per-item observer, for harnesses that
    /// record execution order.
    ///
    /// [`drive_queue`]: VirtualShards::drive_queue
    pub fn drive_queue_with<T, A, F>(
        &mut self,
        queues: &RunQueues<T>,
        point: AttachPoint,
        to_args: A,
        on_result: F,
    ) -> usize
    where
        A: FnMut(&T) -> Vec<i64>,
        F: FnMut(&WorkItem<T>, Verdict),
    {
        self.next_shard()
            .drain_queue_with(queues, point, to_args, on_result)
    }

    /// Steps the seeded rotation until the plane is empty; returns the
    /// total items dispatched. Terminates because a shard with queued
    /// work always drains at least one item when visited.
    pub fn drain_queue_to_empty<T, A>(
        &mut self,
        queues: &RunQueues<T>,
        point: AttachPoint,
        mut to_args: A,
    ) -> usize
    where
        A: FnMut(&T) -> Vec<i64>,
    {
        let mut total = 0;
        while queues.total_depth() > 0 {
            total += self.drive_queue(queues, point, &mut to_args);
        }
        total
    }

    /// Flushes every shard's ledgers and statistics.
    pub fn flush_all(&mut self) {
        for h in &mut self.handles {
            h.flush();
        }
    }

    /// The causally ordered merge of every shard's flight recorder —
    /// one timeline in which each dispatch's events appear in chain
    /// order and cross-shard events interleave by monotonic time.
    pub fn merged_timeline(&self) -> Vec<TraceEvent> {
        graft_telemetry::merge_timelines(self.handles.iter().map(ShardHandle::trace_events))
    }
}

/// Object-safe chain-dispatch seam: what a substrate adapter needs from
/// "something that hosts graft chains". Implemented by the single-
/// threaded [`SharedHost`](crate::adapters::SharedHost), by a bare
/// [`GraftHost`], and by [`ShardHandle`] (each worker thread's shard),
/// so the same adapters serve both the scalar and the sharded kernels.
pub trait ChainDispatch {
    /// Walks the chain at `point`; see [`GraftHost::dispatch`].
    fn dispatch_chain(&mut self, point: AttachPoint, marshal: &mut MarshalFn<'_>) -> Verdict;

    /// Dispatches `calls` chain walks at `point` as one batch,
    /// returning one verdict per call, in call order.
    ///
    /// `marshal(i, engine)` builds call `i`'s argument vector. The
    /// contract beyond [`dispatch_chain`]: marshalling must be **pure
    /// per call** — implementations may marshal every call before the
    /// first invocation runs (the PR 2 `invoke_batch` shape) and may
    /// re-marshal a call when falling back to per-call dispatch, so a
    /// closure that writes per-call engine state (regions) or has
    /// observable side effects must not be batched. Each call still
    /// counts as its own dispatch: ledgers, verdict statistics, and the
    /// 3-strike supervisor advance exactly as if the calls had been
    /// dispatched one by one.
    ///
    /// The default loops [`dispatch_chain`]; [`ShardHandle`] overrides
    /// it with a fused [`ExtensionEngine::invoke_batch`] path when the
    /// chain shape makes that accounting-safe.
    ///
    /// [`dispatch_chain`]: ChainDispatch::dispatch_chain
    fn dispatch_batch(
        &mut self,
        point: AttachPoint,
        calls: usize,
        marshal: &mut BatchMarshalFn<'_>,
    ) -> Vec<Verdict> {
        (0..calls)
            .map(|i| self.dispatch_chain(point, &mut |engine| marshal(i, engine)))
            .collect()
    }
}

/// The kernel-side marshalling callback a chain walk applies to each
/// engine before invoking it: loads the graft's regions and returns
/// the argument vector (or a kernel-side failure, charged to the
/// host's failure counter, not the graft).
pub type MarshalFn<'a> = dyn FnMut(&mut dyn ExtensionEngine) -> Result<Vec<i64>, GraftError> + 'a;

/// Per-call marshalling for [`ChainDispatch::dispatch_batch`]: builds
/// call `i`'s argument vector against the engine about to run it. Must
/// be pure per call (see the `dispatch_batch` contract).
pub type BatchMarshalFn<'a> =
    dyn FnMut(usize, &mut dyn ExtensionEngine) -> Result<Vec<i64>, GraftError> + 'a;

impl ChainDispatch for GraftHost {
    fn dispatch_chain(
        &mut self,
        point: AttachPoint,
        marshal: &mut MarshalFn<'_>,
    ) -> Verdict {
        self.dispatch(point, marshal)
    }
}

impl ChainDispatch for ShardHandle {
    fn dispatch_chain(
        &mut self,
        point: AttachPoint,
        marshal: &mut MarshalFn<'_>,
    ) -> Verdict {
        self.dispatch(point, marshal)
    }

    fn dispatch_batch(
        &mut self,
        point: AttachPoint,
        calls: usize,
        marshal: &mut BatchMarshalFn<'_>,
    ) -> Vec<Verdict> {
        // The inherent method: fuses through `invoke_batch` when the
        // chain shape makes that accounting-safe.
        ShardHandle::dispatch_batch(self, point, calls, |i, e| marshal(i, e))
    }
}

/// Shared single-threaded handles (`Rc<RefCell<GraftHost>>` — the
/// [`SharedHost`](crate::adapters::SharedHost) alias — and
/// `Rc<RefCell<ShardHandle>>`) dispatch through a runtime borrow, so
/// several substrate adapters can take turns on one host.
impl<T: ChainDispatch> ChainDispatch for std::rc::Rc<std::cell::RefCell<T>> {
    fn dispatch_chain(
        &mut self,
        point: AttachPoint,
        marshal: &mut MarshalFn<'_>,
    ) -> Verdict {
        self.borrow_mut().dispatch_chain(point, marshal)
    }

    fn dispatch_batch(
        &mut self,
        point: AttachPoint,
        calls: usize,
        marshal: &mut BatchMarshalFn<'_>,
    ) -> Vec<Verdict> {
        self.borrow_mut().dispatch_batch(point, calls, marshal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::Trap;
    use graft_api::{EntryPoint, NativeEngine, RegionSpec, RegionStore};
    use graft_api::spec::SharedNativeFactory;

    /// A forkable native engine exporting `select_victim/2` built from
    /// a shared factory (every shard gets a fresh closure instance).
    fn victim_engine_factory<F>(make: F) -> Box<dyn ExtensionEngine>
    where
        F: Fn() -> Box<dyn graft_api::NativeGraft> + Send + Sync + 'static,
    {
        let specs = [RegionSpec::data("scratch", 8)];
        let entries = [EntryPoint {
            name: "select_victim".into(),
            arity: 2,
        }];
        let factory: SharedNativeFactory = Arc::new(make);
        Box::new(NativeEngine::from_factory(&specs, &entries, factory).unwrap())
    }

    fn constant(v: i64) -> Box<dyn ExtensionEngine> {
        victim_engine_factory(move || {
            Box::new(move |_: &str, _: &[i64], _: &mut RegionStore| Ok(v))
        })
    }

    fn trapping() -> Box<dyn ExtensionEngine> {
        victim_engine_factory(|| {
            Box::new(|_: &str, _: &[i64], _: &mut RegionStore| {
                Err(Trap::DivByZero.into())
            })
        })
    }

    #[test]
    fn install_replicates_to_every_shard_and_dispatch_is_local() {
        let mut host = ShardedHost::new(4);
        let id = host
            .install(AttachPoint::VmEvict, "forty-two", constant(42))
            .unwrap();
        let mut shards = VirtualShards::new(&mut host, 7);
        for _ in 0..12 {
            assert_eq!(
                shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0])),
                Verdict::Override(42)
            );
        }
        shards.flush_all();
        let ledger = host.ledger(id).unwrap();
        assert_eq!(ledger.invocations, 12);
        assert_eq!(host.stats().dispatches, 12);
        assert_eq!(host.stats().overrides, 12);
        // Round-robin: every shard saw exactly 3 of the 12 dispatches.
        assert_eq!(host.shard_loads(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn third_trap_on_any_shard_detaches_globally() {
        let mut host = ShardedHost::new(4);
        let bad = host
            .install(AttachPoint::VmEvict, "hostile", trapping())
            .unwrap();
        let good = host
            .install(AttachPoint::VmEvict, "good", constant(9))
            .unwrap();
        let epoch_before = host.epoch();
        let mut shards = VirtualShards::new(&mut host, 3);
        // Traps land on *different* shards; the third — wherever it
        // lands — detaches the graft for everyone.
        for _ in 0..3 {
            assert_eq!(
                shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0])),
                Verdict::Override(9)
            );
        }
        assert!(host.is_quarantined(bad));
        assert!(host.detach_epoch(bad).unwrap() > epoch_before);
        // No shard invokes it afterwards: ledger total stays at 3.
        for _ in 0..8 {
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        }
        shards.flush_all();
        assert_eq!(host.ledger(bad).unwrap().traps, 3);
        assert_eq!(host.ledger(bad).unwrap().invocations, 3);
        assert_eq!(host.stats().quarantine_trips, 1);
        assert_eq!(host.state(good), Some(GraftState::Active));
        // Every shard refuses a direct re-invoke deterministically.
        for s in 0..4 {
            let err = shards.shard_mut(s).invoke(bad, &[0, 0]).unwrap_err();
            assert!(matches!(err, GraftError::Unavailable { .. }));
        }
    }

    #[test]
    fn hot_install_and_uninstall_under_dispatch() {
        let mut host = ShardedHost::new(2);
        let mut shards = VirtualShards::new(&mut host, 11);
        // Chain empty on both shards.
        assert_eq!(
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0])),
            Verdict::Continue
        );
        // Install lands while shards keep dispatching.
        let id = host.install(AttachPoint::VmEvict, "late", constant(5)).unwrap();
        for _ in 0..4 {
            assert_eq!(
                shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0])),
                Verdict::Override(5)
            );
        }
        assert!(host.uninstall(id));
        assert!(!host.uninstall(id));
        for _ in 0..4 {
            assert_eq!(
                shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0])),
                Verdict::Continue
            );
        }
        shards.flush_all();
        assert_eq!(host.stats().installs, 1);
        assert_eq!(host.stats().uninstalls, 1);
    }

    #[test]
    fn readmit_probation_is_global_and_requarantines() {
        let mut host = ShardedHost::with_config(
            2,
            HostConfig {
                trap_threshold: 3,
                fuel_budget: None,
                probation_clean: 2,
                ..HostConfig::default()
            },
        );
        let id = host.install(AttachPoint::VmEvict, "hostile", trapping()).unwrap();
        let mut shards = VirtualShards::new(&mut host, 5);
        for _ in 0..3 {
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        }
        assert!(host.is_quarantined(id));
        let first_detach = host.detach_epoch(id).unwrap();
        assert!(host.readmit(id));
        assert!(!host.readmit(id), "only quarantined grafts re-admit");
        assert!(matches!(
            host.state(id),
            Some(GraftState::Probation { remaining_clean: 2 })
        ));
        // One further trap — observed by whichever shard dispatches
        // next — re-quarantines instantly, with a later detach epoch.
        shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        assert!(host.is_quarantined(id));
        assert!(host.detach_epoch(id).unwrap() > first_detach);
        shards.flush_all();
        assert_eq!(host.stats().readmits, 1);
        assert_eq!(host.stats().quarantine_trips, 2);
    }

    #[test]
    fn real_threads_smoke_concurrent_dispatch_and_detach() {
        // The non-virtual path: four OS threads dispatch concurrently
        // while a saboteur trips the supervisor on some shard; totals
        // still merge exactly and the detach is globally visible.
        let shards_n = 4;
        let per_shard = 200u64;
        let mut host = ShardedHost::new(shards_n);
        // The saboteur goes first in the chain: it declines (-1) except
        // on arg 13, where it traps; the well-behaved tenant behind it
        // serves every dispatch.
        let bad = host
            .install(
                AttachPoint::VmEvict,
                "hostile",
                victim_engine_factory(|| {
                    Box::new(|_: &str, args: &[i64], _: &mut RegionStore| {
                        if args[0] == 13 {
                            Err(Trap::DivByZero.into())
                        } else {
                            Ok(-1)
                        }
                    })
                }),
            )
            .unwrap();
        let good = host.install(AttachPoint::VmEvict, "good", constant(1)).unwrap();
        let handles = host.take_handles();
        let workers: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                std::thread::spawn(move || {
                    for i in 0..per_shard {
                        // arg 13 traps; each shard raises it a few times.
                        let arg = (i % 20) as i64;
                        h.dispatch(AttachPoint::VmEvict, |_| Ok(vec![arg, 0]));
                    }
                    // handle drops here → flush
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert!(host.is_quarantined(bad));
        let bad_ledger = host.ledger(bad).unwrap();
        // At least the three strikes landed; after the detach became
        // visible no shard invoked it again (visibility is immediate in
        // program order per shard, so the count is bounded by one
        // in-flight invocation per shard).
        assert!(bad_ledger.traps >= 3);
        assert!(bad_ledger.traps <= 3 + shards_n as u64);
        // Before detach the saboteur also declined a lot; every one of
        // those invocations was accounted.
        assert!(bad_ledger.invocations >= bad_ledger.traps);
        assert!(bad_ledger.invocations <= shards_n as u64 * per_shard);
        assert_eq!(host.stats().dispatches, shards_n as u64 * per_shard);
        assert_eq!(host.stats().quarantine_trips, 1);
        // The well-behaved tenant served every dispatch.
        assert_eq!(
            host.ledger(good).unwrap().invocations,
            shards_n as u64 * per_shard
        );
        let loads = host.shard_loads();
        assert_eq!(loads, vec![per_shard; shards_n]);
    }

    #[test]
    fn install_fails_atomically_when_fork_is_refused() {
        let mut host = ShardedHost::new(2);
        // NativeEngine::with_entries has no factory → fork refuses.
        let specs = [RegionSpec::data("scratch", 8)];
        let entries = [EntryPoint {
            name: "select_victim".into(),
            arity: 2,
        }];
        let engine: Box<dyn ExtensionEngine> = Box::new(
            NativeEngine::with_entries(
                &specs,
                &entries,
                Box::new(|_: &str, _: &[i64], _: &mut RegionStore| Ok(0)),
            )
            .unwrap(),
        );
        let err = host.install(AttachPoint::VmEvict, "unforkable", engine);
        assert!(matches!(err, Err(GraftError::Unavailable { .. })));
        let mut shards = VirtualShards::new(&mut host, 1);
        assert_eq!(shards.shard_mut(0).active_len(AttachPoint::VmEvict), 0);
        assert_eq!(shards.shard_mut(1).active_len(AttachPoint::VmEvict), 0);
        assert_eq!(host.stats().installs, 0);
    }

    #[test]
    fn one_shard_host_matches_single_host_semantics_without_forking() {
        // shards=1 never calls fork_for_shard, so even a factory-less
        // engine installs (parity with GraftHost for the scalar case).
        let specs = [RegionSpec::data("scratch", 8)];
        let entries = [EntryPoint {
            name: "select_victim".into(),
            arity: 2,
        }];
        let engine: Box<dyn ExtensionEngine> = Box::new(
            NativeEngine::with_entries(
                &specs,
                &entries,
                Box::new(|_: &str, _: &[i64], _: &mut RegionStore| Ok(7)),
            )
            .unwrap(),
        );
        let mut host = ShardedHost::new(1);
        host.install(AttachPoint::VmEvict, "scalar", engine).unwrap();
        let mut shards = VirtualShards::new(&mut host, 0);
        assert_eq!(
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0])),
            Verdict::Override(7)
        );
    }

    #[test]
    fn winning_detach_shard_salvages_its_replica() {
        let mut host = ShardedHost::new(4);
        // Every replica writes its call count into scratch[0], then
        // traps on call 3: whichever shard wins the detach salvages a
        // scratch holding that shard's last pre-trap state (2).
        let bad = host
            .install_with_salvage(
                AttachPoint::VmEvict,
                "stateful",
                victim_engine_factory(|| {
                    let mut calls = 0i64;
                    Box::new(move |_: &str, _: &[i64], regions: &mut RegionStore| {
                        calls += 1;
                        let id = regions.id("scratch").unwrap();
                        regions.write_id(id, 0, calls)?;
                        if calls >= 3 {
                            Err(Trap::DivByZero.into())
                        } else {
                            Ok(-1)
                        }
                    })
                }),
                &["scratch"],
            )
            .unwrap();
        host.install(AttachPoint::VmEvict, "good", constant(1)).unwrap();
        let mut shards = VirtualShards::new(&mut host, 17);
        // Each replica needs 3 calls to reach its first trap; traps
        // accumulate globally, 3 strikes detach.
        for _ in 0..64 {
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
            if host.is_quarantined(bad) {
                break;
            }
        }
        assert!(host.is_quarantined(bad));
        shards.flush_all();
        let s = host.take_salvage(bad).expect("winner salvaged");
        assert_eq!(s.graft, "stateful");
        // The winning shard's replica trapped on its own call 3, after
        // writing 3 into scratch[0] (region writes land before the
        // trap decision in this native graft).
        assert_eq!(s.region("scratch").unwrap()[0], 3);
        assert!(host.take_salvage(bad).is_none(), "taken once");
        assert_eq!(host.stats().salvages, 1);
        // Unknown salvage regions fail the install atomically.
        let err = host.install_with_salvage(
            AttachPoint::VmEvict,
            "typo",
            constant(2),
            &["missing"],
        );
        assert!(err.is_err());
    }

    #[test]
    fn backoff_ladder_is_shared_atomic_across_shards() {
        let mut host = ShardedHost::with_config(
            4,
            HostConfig {
                backoff_base: 4,
                ban_ceiling: 2,
                probation_clean: 1,
                ..HostConfig::default()
            },
        );
        let bad = host
            .install(AttachPoint::VmEvict, "hostile", trapping())
            .unwrap();
        host.install(AttachPoint::VmEvict, "good", constant(1)).unwrap();
        let mut shards = VirtualShards::new(&mut host, 23);
        for _ in 0..3 {
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        }
        assert!(host.is_quarantined(bad));
        assert_eq!(host.quarantine_count(bad), Some(1));
        // The clean built-in window counts dispatches from *any* shard.
        for _ in 0..3 {
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
            assert!(host.is_quarantined(bad));
        }
        shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        assert!(matches!(
            host.state(bad),
            Some(GraftState::Probation { .. })
        ));
        // Second strike is the ceiling: permanent ban, everywhere.
        shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        assert_eq!(host.state(bad), Some(GraftState::Banned));
        assert!(!host.readmit(bad), "banned grafts never re-admit");
        for _ in 0..32 {
            shards.dispatch(AttachPoint::VmEvict, |_| Ok(vec![0, 0]));
        }
        assert_eq!(host.state(bad), Some(GraftState::Banned));
        for s in 0..4 {
            let err = shards.shard_mut(s).invoke(bad, &[0, 0]).unwrap_err();
            match err {
                GraftError::Unavailable { missing, .. } => {
                    assert!(missing.contains("banned"), "{missing}");
                }
                other => panic!("expected Unavailable, got {other}"),
            }
        }
        shards.flush_all();
        assert_eq!(host.stats().auto_readmits, 1);
        assert_eq!(host.stats().bans, 1);
        assert_eq!(host.stats().readmits, 1, "auto-readmit counted once");
    }

    #[test]
    fn virtual_scheduler_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<usize> {
            let mut host = ShardedHost::new(4);
            let mut shards = VirtualShards::new(&mut host, seed);
            (0..16).map(|_| shards.next_shard().shard()).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same interleaving");
        assert_ne!(run(42), run(43), "different seed explores differently");
        // Every round visits each shard exactly once.
        let order = run(9);
        for round in order.chunks(4) {
            let mut sorted = round.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    /// An engine echoing its first argument (negative = Continue,
    /// non-negative = Override at eviction points), so batch verdicts
    /// can be scripted per call.
    fn echo() -> Box<dyn ExtensionEngine> {
        victim_engine_factory(|| {
            Box::new(|_: &str, args: &[i64], _: &mut RegionStore| Ok(args[0]))
        })
    }

    #[test]
    fn fused_batch_matches_per_call_dispatch_exactly() {
        // Same calls through the fused invoke_batch path and through a
        // per-call dispatch loop: identical verdicts, stats, and
        // ledgers (the native echo engine is unmetered, single-graft
        // chain, tracing off — the fusable shape).
        let args: Vec<[i64; 2]> = (0..13).map(|i| [if i % 3 == 0 { i } else { -1 }, 0]).collect();
        let run = |batched: bool| {
            let mut host = ShardedHost::new(2);
            let id = host.install(AttachPoint::VmEvict, "echo", echo()).unwrap();
            let mut vs = VirtualShards::new(&mut host, 5);
            let h = vs.shard_mut(0);
            let verdicts: Vec<Verdict> = if batched {
                h.dispatch_batch(AttachPoint::VmEvict, args.len(), |i, _| Ok(args[i].to_vec()))
            } else {
                args.iter().map(|a| h.dispatch(AttachPoint::VmEvict, |_| Ok(a.to_vec()))).collect()
            };
            vs.flush_all();
            let mut stats = host.stats();
            stats.installs = 0; // control-plane, not dispatch-path
            (verdicts, stats, host.ledger(id).map(|l| (l.invocations, l.traps)))
        };
        let (v1, s1, l1) = run(true);
        let (v2, s2, l2) = run(false);
        assert_eq!(v1, v2, "verdicts diverge");
        assert_eq!(s1, s2, "host stats diverge");
        assert_eq!(l1, l2, "ledgers diverge");
        assert_eq!(v1[0], Verdict::Override(0));
        assert_eq!(v1[1], Verdict::Continue);
    }

    #[test]
    fn mid_batch_trap_strikes_exactly_once_and_detaches() {
        let mut host = ShardedHost::new(2);
        let bad = host.install(AttachPoint::VmEvict, "hostile", trapping()).unwrap();
        let mut vs = VirtualShards::new(&mut host, 3);
        // An 8-call batch against an always-trapping graft: the fused
        // path charges the first trap once, then degrades to per-call
        // dispatch — strikes 2 and 3 detach, calls 4-8 run against the
        // detached chain and charge nothing.
        let verdicts = vs
            .shard_mut(0)
            .dispatch_batch(AttachPoint::VmEvict, 8, |_, _| Ok(vec![0, 0]));
        assert_eq!(verdicts, vec![Verdict::Continue; 8]);
        assert!(host.is_quarantined(bad), "three strikes did not detach");
        vs.flush_all();
        let ledger = host.ledger(bad).unwrap();
        assert_eq!(ledger.traps, 3, "a mid-batch strike was double-counted");
        assert_eq!(ledger.invocations, 3);
        let stats = host.stats();
        assert_eq!(stats.dispatches, 8);
        assert_eq!(stats.defaults, 8);
        assert_eq!(stats.quarantine_trips, 1);
    }

    #[test]
    fn drain_queue_runs_every_item_once_and_marks_warm() {
        let mut host = ShardedHost::new(4);
        let id = host.install(AttachPoint::VmEvict, "decline", constant(-1)).unwrap();
        let q: RunQueues<Vec<i64>> = host.run_queues(StealPolicy::default());
        let n = 300u64;
        for k in 0..n {
            host.enqueue(&q, k, Some(id), vec![k as i64, 0]).expect("room");
        }
        assert_eq!(q.stats().enqueued, n);
        let mut vs = VirtualShards::new(&mut host, 42);
        let ran = vs.drain_queue_to_empty(&q, AttachPoint::VmEvict, |p| p.clone());
        assert_eq!(ran as u64, n, "items lost or double-run");
        vs.flush_all();
        assert_eq!(host.ledger(id).unwrap().invocations, n);
        assert_eq!(host.stats().dispatches, n);
        // Every shard that executed work went warm for the graft.
        let st = q.stats();
        assert!(st.batches > 0);
        assert!((0..4).any(|s| q.is_warm(s, id.0)));
        // Adaptive widths realized: more items than batches.
        assert!(st.batched_items / st.batches >= 1);
    }

    #[test]
    fn drain_queue_replays_identically_from_the_same_seed() {
        let run = |seed: u64| -> (Vec<(usize, u64)>, u64, u64) {
            let mut host = ShardedHost::new(4);
            let id = host.install(AttachPoint::VmEvict, "decline", constant(-1)).unwrap();
            let q: RunQueues<u64> = host.run_queues(StealPolicy::default());
            for k in 0..200u64 {
                host.enqueue(&q, k % 7, Some(id), k).expect("room");
            }
            let mut vs = VirtualShards::new(&mut host, seed);
            let mut order = Vec::new();
            while q.total_depth() > 0 {
                let h = vs.next_shard();
                let s = h.shard();
                h.drain_queue_with(&q, AttachPoint::VmEvict, |&k| vec![k as i64, 0], |w, _| {
                    order.push((s, w.payload));
                });
            }
            let st = q.stats();
            (order, st.steals, st.diverted)
        };
        assert_eq!(run(7), run(7), "same seed, same steal schedule");
        let (order, steals, _) = run(7);
        assert_eq!(order.len(), 200);
        assert!(steals > 0, "a 7-hot-key trace on 4 shards must steal");
    }

    #[test]
    fn graft_quarantined_mid_steal_charges_the_thief_exactly_once() {
        let mut host = ShardedHost::new(2);
        let bad = host.install(AttachPoint::VmEvict, "hostile", trapping()).unwrap();
        let q: RunQueues<u64> = host.run_queues(StealPolicy::default());
        // All work homes to one hot key's shard; the other shard will
        // steal its share and execute the traps itself.
        let hot = 1u64;
        let home = q.home(hot);
        let thief = 1 - home;
        for k in 0..10u64 {
            host.enqueue(&q, hot, Some(bad), k).expect("room");
        }
        // The thief drains first: its own queue is empty, so it steals
        // the back half and the traps happen on the *stealing* shard.
        let mut vs = VirtualShards::new(&mut host, 1);
        let to_args = |&k: &u64| vec![k as i64, 0];
        let stolen = vs.shard_mut(thief).drain_queue(&q, AttachPoint::VmEvict, to_args);
        assert_eq!(q.stats().steals, 5);
        assert_eq!(stolen, 5);
        assert!(host.is_quarantined(bad), "stolen traps did not strike");
        // The home shard drains the rest against a detached chain.
        let mut rest = 0;
        while q.total_depth() > 0 {
            rest += vs.shard_mut(home).drain_queue(&q, AttachPoint::VmEvict, to_args);
        }
        assert_eq!(rest, 5);
        vs.flush_all();
        let ledger = host.ledger(bad).unwrap();
        assert_eq!(ledger.traps, 3, "strikes must count exactly once");
        assert_eq!(ledger.invocations, 3);
        // The postmortem names the thief as the detaching shard.
        let pm = host.take_postmortems();
        assert_eq!(pm.len(), 1);
        assert_eq!(pm[0].shard, Some(thief as u32));
    }
}
