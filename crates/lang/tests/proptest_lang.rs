//! Property tests for the Grail front end.

use graft_api::RegionSpec;
use graft_lang::lexer::lex;
use graft_lang::token::TokenKind;
use proptest::prelude::*;

proptest! {
    /// The whole front end never panics on arbitrary input: it either
    /// compiles or reports a located diagnostic.
    #[test]
    fn compile_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = graft_lang::compile(&src, &[RegionSpec::data("buf", 4)]);
    }

    /// Decimal integer literals round-trip through the lexer.
    #[test]
    fn decimal_literals_round_trip(v in 0i64..i64::MAX) {
        let toks = lex(&v.to_string()).unwrap();
        prop_assert_eq!(&toks[0].kind, &TokenKind::Int(v));
    }

    /// Hex literals round-trip (including the full u64 range, which
    /// reinterprets as two's complement).
    #[test]
    fn hex_literals_round_trip(v in any::<u64>()) {
        let toks = lex(&format!("0x{v:X}")).unwrap();
        prop_assert_eq!(&toks[0].kind, &TokenKind::Int(v as i64));
    }

    /// Identifiers lex as single tokens with exact spans.
    #[test]
    fn identifiers_lex_whole(name in "[a-z_][a-z0-9_]{0,20}") {
        prop_assume!(graft_lang::token::keyword(&name).is_none());
        let toks = lex(&name).unwrap();
        prop_assert_eq!(toks.len(), 2); // ident + EOF
        prop_assert_eq!(&toks[0].kind, &TokenKind::Ident(name.clone()));
        prop_assert_eq!(toks[0].span.end - toks[0].span.start, name.len());
    }

    /// Whitespace and comments never change the token stream.
    #[test]
    fn trivia_is_invisible(pad in "[ \\t\\n]{0,10}") {
        let plain = lex("let x = 1 + 2;").unwrap();
        let padded = lex(&format!("{pad}let{pad} x ={pad}1 /*c*/ + // c\n 2;{pad}")).unwrap();
        let kinds = |ts: &[graft_lang::token::Token]| {
            ts.iter().map(|t| t.kind.clone()).collect::<Vec<_>>()
        };
        prop_assert_eq!(kinds(&plain), kinds(&padded));
    }

    /// Generated well-formed programs always compile, and their checked
    /// function inventory matches the source.
    #[test]
    fn generated_programs_compile(
        nfuncs in 1usize..5,
        nlets in 0usize..4,
    ) {
        let mut src = String::new();
        for f in 0..nfuncs {
            src.push_str(&format!("fn f{f}(a: int) -> int {{\n"));
            for l in 0..nlets {
                src.push_str(&format!("    let v{l} = a + {l};\n"));
            }
            if nlets > 0 {
                src.push_str(&format!("    return v{};\n}}\n", nlets - 1));
            } else {
                src.push_str("    return a;\n}\n");
            }
        }
        let program = graft_lang::compile(&src, &[]).unwrap();
        prop_assert_eq!(program.funcs.len(), nfuncs);
        for (i, func) in program.funcs.iter().enumerate() {
            prop_assert_eq!(&func.name, &format!("f{i}"));
            prop_assert_eq!(func.frame_size, 1 + nlets);
        }
    }
}
