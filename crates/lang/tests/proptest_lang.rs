//! Property tests for the Grail front end, driven by a seeded RNG (no
//! network deps).

use graft_api::RegionSpec;
use graft_lang::lexer::lex;
use graft_lang::token::TokenKind;
use graft_rng::{Rng, SmallRng};

/// The whole front end never panics on arbitrary input: it either
/// compiles or reports a located diagnostic.
#[test]
fn compile_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xF0);
    for _case in 0..256 {
        let len = rng.gen_range(0usize..200);
        // Printable ASCII plus newline, as the original generator drew.
        let src: String = (0..len)
            .map(|_| {
                let c = rng.gen_range(0u32..96);
                if c == 95 {
                    '\n'
                } else {
                    char::from_u32(0x20 + c).unwrap()
                }
            })
            .collect();
        let _ = graft_lang::compile(&src, &[RegionSpec::data("buf", 4)]);
    }
}

/// Decimal integer literals round-trip through the lexer.
#[test]
fn decimal_literals_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0xDEC);
    let mut cases: Vec<i64> = (0..100).map(|_| rng.gen_range(0i64..i64::MAX)).collect();
    cases.extend([0, 1, i64::MAX]);
    for v in cases {
        let toks = lex(&v.to_string()).unwrap();
        assert_eq!(&toks[0].kind, &TokenKind::Int(v));
    }
}

/// Hex literals round-trip (including the full u64 range, which
/// reinterprets as two's complement).
#[test]
fn hex_literals_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x4E);
    let mut cases: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
    cases.extend([0, 1, u64::MAX]);
    for v in cases {
        let toks = lex(&format!("0x{v:X}")).unwrap();
        assert_eq!(&toks[0].kind, &TokenKind::Int(v as i64));
    }
}

/// Identifiers lex as single tokens with exact spans.
#[test]
fn identifiers_lex_whole() {
    let mut rng = SmallRng::seed_from_u64(0x1D);
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    for _case in 0..200 {
        let len = rng.gen_range(0usize..21);
        let mut name = String::new();
        name.push(FIRST[rng.gen_range(0usize..FIRST.len())] as char);
        for _ in 0..len {
            name.push(REST[rng.gen_range(0usize..REST.len())] as char);
        }
        if graft_lang::token::keyword(&name).is_some() {
            continue;
        }
        let toks = lex(&name).unwrap();
        assert_eq!(toks.len(), 2); // ident + EOF
        assert_eq!(&toks[0].kind, &TokenKind::Ident(name.clone()));
        assert_eq!(toks[0].span.end - toks[0].span.start, name.len());
    }
}

/// Whitespace and comments never change the token stream.
#[test]
fn trivia_is_invisible() {
    let mut rng = SmallRng::seed_from_u64(0x7121);
    const PAD: &[u8] = b" \t\n";
    for _case in 0..64 {
        let len = rng.gen_range(0usize..10);
        let pad: String = (0..len)
            .map(|_| PAD[rng.gen_range(0usize..PAD.len())] as char)
            .collect();
        let plain = lex("let x = 1 + 2;").unwrap();
        let padded =
            lex(&format!("{pad}let{pad} x ={pad}1 /*c*/ + // c\n 2;{pad}")).unwrap();
        let kinds = |ts: &[graft_lang::token::Token]| {
            ts.iter().map(|t| t.kind.clone()).collect::<Vec<_>>()
        };
        assert_eq!(kinds(&plain), kinds(&padded));
    }
}

/// Generated well-formed programs always compile, and their checked
/// function inventory matches the source.
#[test]
fn generated_programs_compile() {
    let mut rng = SmallRng::seed_from_u64(0x6E4);
    for _case in 0..40 {
        let nfuncs = rng.gen_range(1usize..5);
        let nlets = rng.gen_range(0usize..4);
        let mut src = String::new();
        for f in 0..nfuncs {
            src.push_str(&format!("fn f{f}(a: int) -> int {{\n"));
            for l in 0..nlets {
                src.push_str(&format!("    let v{l} = a + {l};\n"));
            }
            if nlets > 0 {
                src.push_str(&format!("    return v{};\n}}\n", nlets - 1));
            } else {
                src.push_str("    return a;\n}\n");
            }
        }
        let program = graft_lang::compile(&src, &[]).unwrap();
        assert_eq!(program.funcs.len(), nfuncs);
        for (i, func) in program.funcs.iter().enumerate() {
            assert_eq!(&func.name, &format!("f{i}"));
            assert_eq!(func.frame_size, 1 + nlets);
        }
    }
}
