//! Token definitions for the Grail lexer.

use crate::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (decimal or `0x` hexadecimal), already decoded.
    Int(i64),
    /// Identifier or keyword candidate.
    Ident(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `var`
    Var,
    /// `const`
    Const,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    TyInt,
    /// `bool`
    TyBool,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(v) => write!(f, "integer `{v}`"),
            Ident(s) => write!(f, "identifier `{s}`"),
            Fn => f.write_str("`fn`"),
            Let => f.write_str("`let`"),
            Var => f.write_str("`var`"),
            Const => f.write_str("`const`"),
            If => f.write_str("`if`"),
            Else => f.write_str("`else`"),
            While => f.write_str("`while`"),
            For => f.write_str("`for`"),
            Break => f.write_str("`break`"),
            Continue => f.write_str("`continue`"),
            Return => f.write_str("`return`"),
            True => f.write_str("`true`"),
            False => f.write_str("`false`"),
            TyInt => f.write_str("`int`"),
            TyBool => f.write_str("`bool`"),
            LParen => f.write_str("`(`"),
            RParen => f.write_str("`)`"),
            LBrace => f.write_str("`{`"),
            RBrace => f.write_str("`}`"),
            LBracket => f.write_str("`[`"),
            RBracket => f.write_str("`]`"),
            Comma => f.write_str("`,`"),
            Semi => f.write_str("`;`"),
            Colon => f.write_str("`:`"),
            Arrow => f.write_str("`->`"),
            Assign => f.write_str("`=`"),
            Plus => f.write_str("`+`"),
            Minus => f.write_str("`-`"),
            Star => f.write_str("`*`"),
            Slash => f.write_str("`/`"),
            Percent => f.write_str("`%`"),
            Amp => f.write_str("`&`"),
            Pipe => f.write_str("`|`"),
            Caret => f.write_str("`^`"),
            Tilde => f.write_str("`~`"),
            Bang => f.write_str("`!`"),
            Shl => f.write_str("`<<`"),
            Shr => f.write_str("`>>`"),
            EqEq => f.write_str("`==`"),
            NotEq => f.write_str("`!=`"),
            Lt => f.write_str("`<`"),
            Le => f.write_str("`<=`"),
            Gt => f.write_str("`>`"),
            Ge => f.write_str("`>=`"),
            AndAnd => f.write_str("`&&`"),
            OrOr => f.write_str("`||`"),
            Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token appeared.
    pub span: Span,
}

impl Token {
    /// Builds a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// Maps an identifier to its keyword kind, if it is a keyword.
pub fn keyword(ident: &str) -> Option<TokenKind> {
    Some(match ident {
        "fn" => TokenKind::Fn,
        "let" => TokenKind::Let,
        "var" => TokenKind::Var,
        "const" => TokenKind::Const,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "while" => TokenKind::While,
        "for" => TokenKind::For,
        "break" => TokenKind::Break,
        "continue" => TokenKind::Continue,
        "return" => TokenKind::Return,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        "int" => TokenKind::TyInt,
        "bool" => TokenKind::TyBool,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(keyword("fn"), Some(TokenKind::Fn));
        assert_eq!(keyword("while"), Some(TokenKind::While));
        assert_eq!(keyword("frobnicate"), None);
    }

    #[test]
    fn display_names_are_quoted() {
        assert_eq!(TokenKind::Arrow.to_string(), "`->`");
        assert_eq!(TokenKind::Int(7).to_string(), "integer `7`");
    }
}
