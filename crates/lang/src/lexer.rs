//! The Grail lexer.

use crate::token::{keyword, Token, TokenKind};
use crate::{Diagnostic, Span};

/// Tokenizes Grail source, including a trailing [`TokenKind::Eof`].
///
/// Comments (`// ...` and `/* ... */`) and whitespace are skipped.
/// Integer literals may be decimal or `0x` hexadecimal; values up to
/// `u64::MAX` are accepted and reinterpreted as two's-complement `i64`
/// (so `0xFFFFFFFFFFFFFFFF` lexes to `-1`), matching the language's
/// wrapping arithmetic.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(&c) = self.src.get(self.pos) else {
                tokens.push(Token::new(TokenKind::Eof, Span::new(start, start)));
                return Ok(tokens);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.operator()?,
            };
            tokens.push(Token::new(kind, Span::new(start, self.pos)));
        }
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.src.get(self.pos) {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(&c) = self.src.get(self.pos) {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let open = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.src.get(self.pos), self.src.get(self.pos + 1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(Diagnostic::new(
                                    "unterminated block comment",
                                    Span::new(open, open + 2),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        let hex = self.src.get(self.pos) == Some(&b'0')
            && matches!(self.src.get(self.pos + 1), Some(b'x') | Some(b'X'));
        if hex {
            self.pos += 2;
        }
        let digits_start = self.pos;
        while let Some(&c) = self.src.get(self.pos) {
            let ok = if hex {
                c.is_ascii_hexdigit() || c == b'_'
            } else {
                c.is_ascii_digit() || c == b'_'
            };
            if !ok {
                break;
            }
            self.pos += 1;
        }
        let text: String = std::str::from_utf8(&self.src[digits_start..self.pos])
            .expect("digits are ASCII")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if text.is_empty() {
            return Err(Diagnostic::new(
                "integer literal has no digits",
                Span::new(start, self.pos),
            ));
        }
        let radix = if hex { 16 } else { 10 };
        match u64::from_str_radix(&text, radix) {
            Ok(v) => Ok(TokenKind::Int(v as i64)),
            Err(_) => Err(Diagnostic::new(
                "integer literal does not fit in 64 bits",
                Span::new(start, self.pos),
            )),
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(&c) = self.src.get(self.pos) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier chars are ASCII")
            .to_string();
        keyword(&text).unwrap_or(TokenKind::Ident(text))
    }

    fn operator(&mut self) -> Result<TokenKind, Diagnostic> {
        use TokenKind::*;
        let start = self.pos;
        let one = self.src[self.pos];
        let two = self.src.get(self.pos + 1).copied();
        let (kind, len) = match (one, two) {
            (b'-', Some(b'>')) => (Arrow, 2),
            (b'<', Some(b'<')) => (Shl, 2),
            (b'>', Some(b'>')) => (Shr, 2),
            (b'=', Some(b'=')) => (EqEq, 2),
            (b'!', Some(b'=')) => (NotEq, 2),
            (b'<', Some(b'=')) => (Le, 2),
            (b'>', Some(b'=')) => (Ge, 2),
            (b'&', Some(b'&')) => (AndAnd, 2),
            (b'|', Some(b'|')) => (OrOr, 2),
            (b'(', _) => (LParen, 1),
            (b')', _) => (RParen, 1),
            (b'{', _) => (LBrace, 1),
            (b'}', _) => (RBrace, 1),
            (b'[', _) => (LBracket, 1),
            (b']', _) => (RBracket, 1),
            (b',', _) => (Comma, 1),
            (b';', _) => (Semi, 1),
            (b':', _) => (Colon, 1),
            (b'=', _) => (Assign, 1),
            (b'+', _) => (Plus, 1),
            (b'-', _) => (Minus, 1),
            (b'*', _) => (Star, 1),
            (b'/', _) => (Slash, 1),
            (b'%', _) => (Percent, 1),
            (b'&', _) => (Amp, 1),
            (b'|', _) => (Pipe, 1),
            (b'^', _) => (Caret, 1),
            (b'~', _) => (Tilde, 1),
            (b'!', _) => (Bang, 1),
            (b'<', _) => (Lt, 1),
            (b'>', _) => (Gt, 1),
            (c, _) => {
                return Err(Diagnostic::new(
                    format!("unexpected character `{}`", c as char),
                    Span::new(start, start + 1),
                ))
            }
        };
        self.pos += len;
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_function_header() {
        assert_eq!(
            kinds("fn f(a: int) -> bool {}"),
            vec![
                Fn,
                Ident("f".into()),
                LParen,
                Ident("a".into()),
                Colon,
                TyInt,
                RParen,
                Arrow,
                TyBool,
                LBrace,
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("0 42 0x2A 1_000"), vec![Int(0), Int(42), Int(42), Int(1000), Eof]);
    }

    #[test]
    fn hex_u64_wraps_to_negative() {
        assert_eq!(kinds("0xFFFFFFFFFFFFFFFF"), vec![Int(-1), Eof]);
    }

    #[test]
    fn overlong_literal_is_rejected() {
        assert!(lex("0x1FFFFFFFFFFFFFFFF").is_err());
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // comment\n 2 /* multi\nline */ 3"),
            vec![Int(1), Int(2), Int(3), Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        assert_eq!(kinds("<< <= < ->-"), vec![Shl, Le, Lt, Arrow, Minus, Eof]);
        assert_eq!(kinds("&& & || |"), vec![AndAnd, Amp, OrOr, Pipe, Eof]);
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = lex("fn @").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.span, Span::new(3, 4));
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("let xyz").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 7));
    }
}
