//! Recursive-descent parser for Grail.

use crate::ast::*;
use crate::token::{Token, TokenKind};
use crate::{Diagnostic, Span};

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into
/// top-level items.
pub fn parse(tokens: &[Token]) -> Result<Vec<Item>, Diagnostic> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at(&TokenKind::Eof) {
        items.push(p.item()?);
    }
    Ok(items)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            let got = self.peek();
            Err(Diagnostic::new(
                format!("expected {kind}, found {}", got.kind),
                got.span,
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), Diagnostic> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, t.span))
            }
            other => Err(Diagnostic::new(
                format!("expected identifier, found {other}"),
                t.span,
            )),
        }
    }

    fn item(&mut self) -> Result<Item, Diagnostic> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Fn => self.function().map(Item::Function),
            TokenKind::Var => self.global().map(Item::Global),
            TokenKind::Const => self.const_decl().map(Item::Const),
            other => Err(Diagnostic::new(
                format!("expected `fn`, `var`, or `const` at top level, found {other}"),
                t.span,
            )),
        }
    }

    fn ty(&mut self) -> Result<TypeAst, Diagnostic> {
        let t = self.bump();
        match t.kind {
            TokenKind::TyInt => Ok(TypeAst::Int),
            TokenKind::TyBool => Ok(TypeAst::Bool),
            other => Err(Diagnostic::new(
                format!("expected type `int` or `bool`, found {other}"),
                t.span,
            )),
        }
    }

    fn function(&mut self) -> Result<FunctionAst, Diagnostic> {
        let start = self.expect(TokenKind::Fn)?.span;
        let (name, name_span) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (pname, _) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.at(&TokenKind::Arrow) {
            self.bump();
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FunctionAst {
            name,
            params,
            ret,
            body,
            span: start.to(name_span),
        })
    }

    fn global(&mut self) -> Result<GlobalAst, Diagnostic> {
        let start = self.expect(TokenKind::Var)?.span;
        let (name, name_span) = self.ident()?;
        let init = if self.at(&TokenKind::Assign) {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(GlobalAst {
            name,
            init,
            span: start.to(name_span),
        })
    }

    fn const_decl(&mut self) -> Result<ConstAst, Diagnostic> {
        let start = self.expect(TokenKind::Const)?.span;
        let (name, name_span) = self.ident()?;
        if self.at(&TokenKind::LBracket) {
            self.bump();
            let declared_len = if self.at(&TokenKind::RBracket) {
                None
            } else {
                let t = self.bump();
                match t.kind {
                    TokenKind::Int(v) if v >= 0 => Some(v as usize),
                    other => {
                        return Err(Diagnostic::new(
                            format!("expected table length, found {other}"),
                            t.span,
                        ))
                    }
                }
            };
            self.expect(TokenKind::RBracket)?;
            self.expect(TokenKind::Assign)?;
            self.expect(TokenKind::LBrace)?;
            let mut values = Vec::new();
            while !self.at(&TokenKind::RBrace) {
                values.push(self.expr()?);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(TokenKind::RBrace)?;
            self.expect(TokenKind::Semi)?;
            Ok(ConstAst {
                name,
                table: Some(values),
                scalar: None,
                declared_len,
                span: start.to(name_span),
            })
        } else {
            self.expect(TokenKind::Assign)?;
            let value = self.expr()?;
            self.expect(TokenKind::Semi)?;
            Ok(ConstAst {
                name,
                table: None,
                scalar: Some(value),
                declared_len: None,
                span: start.to(name_span),
            })
        }
    }

    fn block(&mut self) -> Result<Vec<StmtAst>, Diagnostic> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(Diagnostic::new("unterminated block", self.peek().span));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<StmtAst, Diagnostic> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Let => {
                let start = self.bump().span;
                let (name, _) = self.ident()?;
                let ty = if self.at(&TokenKind::Colon) {
                    self.bump();
                    Some(self.ty()?)
                } else {
                    None
                };
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StmtAst::Let {
                    name,
                    ty,
                    init,
                    span: start.to(end),
                })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                let start = self.bump().span;
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(StmtAst::While {
                    cond,
                    body,
                    span: start,
                })
            }
            TokenKind::For => {
                // `for i = e0; cond; i = step { body }`
                let start = self.bump().span;
                let (var, _) = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let cond = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let (var2, var2_span) = self.ident()?;
                if var2 != var {
                    return Err(Diagnostic::new(
                        format!("`for` step must assign the loop variable `{var}`"),
                        var2_span,
                    ));
                }
                self.expect(TokenKind::Assign)?;
                let step = self.expr()?;
                let body = self.block()?;
                Ok(StmtAst::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                    span: start,
                })
            }
            TokenKind::Break => {
                let span = self.bump().span;
                self.expect(TokenKind::Semi)?;
                Ok(StmtAst::Break(span))
            }
            TokenKind::Continue => {
                let span = self.bump().span;
                self.expect(TokenKind::Semi)?;
                Ok(StmtAst::Continue(span))
            }
            TokenKind::Return => {
                let span = self.bump().span;
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(StmtAst::Return(value, span))
            }
            TokenKind::Ident(_) => self.assign_or_expr_stmt(),
            other => Err(Diagnostic::new(
                format!("expected statement, found {other}"),
                t.span,
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<StmtAst, Diagnostic> {
        let start = self.expect(TokenKind::If)?.span;
        let cond = self.expr()?;
        let then_branch = self.block()?;
        let else_branch = if self.at(&TokenKind::Else) {
            self.bump();
            if self.at(&TokenKind::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(StmtAst::If {
            cond,
            then_branch,
            else_branch,
            span: start,
        })
    }

    /// Disambiguates `name = e;`, `name[i] = e;`, and expression
    /// statements such as `name(args);`.
    fn assign_or_expr_stmt(&mut self) -> Result<StmtAst, Diagnostic> {
        let (name, name_span) = self.ident()?;
        match self.peek().kind.clone() {
            TokenKind::Assign => {
                self.bump();
                let value = self.expr()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StmtAst::Assign {
                    name,
                    value,
                    span: name_span.to(end),
                })
            }
            TokenKind::LBracket => {
                self.bump();
                let index = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                if self.at(&TokenKind::Assign) {
                    self.bump();
                    let value = self.expr()?;
                    let end = self.expect(TokenKind::Semi)?.span;
                    Ok(StmtAst::Store {
                        name,
                        index,
                        value,
                        span: name_span.to(end),
                    })
                } else {
                    // A bare `name[i]` used in a larger expression
                    // statement, e.g. `f(name[i]);` never reaches here
                    // (that parses through `expr`), so a lone load
                    // statement is useless; report it.
                    Err(Diagnostic::new(
                        "region load used as a statement has no effect",
                        name_span,
                    ))
                }
            }
            TokenKind::LParen => {
                let call = self.call_tail(name, name_span)?;
                self.expect(TokenKind::Semi)?;
                Ok(StmtAst::Expr(call))
            }
            other => Err(Diagnostic::new(
                format!("expected `=`, `[`, or `(` after identifier, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn call_tail(&mut self, name: String, name_span: Span) -> Result<ExprAst, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let end = self.expect(TokenKind::RParen)?.span;
        Ok(ExprAst::Call {
            name,
            args,
            span: name_span.to(end),
        })
    }

    fn expr(&mut self) -> Result<ExprAst, Diagnostic> {
        self.binary(0)
    }

    /// Precedence-climbing binary expression parser.
    fn binary(&mut self, min_prec: u8) -> Result<ExprAst, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let Some((op, prec)) = binop_of(&self.peek().kind) else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = ExprAst::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary(&mut self) -> Result<ExprAst, Diagnostic> {
        let t = self.peek().clone();
        let op = match t.kind {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Bang => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary()?;
            let span = t.span.to(expr.span());
            return Ok(ExprAst::Unary {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<ExprAst, Diagnostic> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(ExprAst::Int(v, t.span))
            }
            TokenKind::True => {
                self.bump();
                Ok(ExprAst::Bool(true, t.span))
            }
            TokenKind::False => {
                self.bump();
                Ok(ExprAst::Bool(false, t.span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek().kind.clone() {
                    TokenKind::LParen => self.call_tail(name, t.span),
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        let end = self.expect(TokenKind::RBracket)?.span;
                        Ok(ExprAst::Index {
                            name,
                            index: Box::new(index),
                            span: t.span.to(end),
                        })
                    }
                    _ => Ok(ExprAst::Name(name, t.span)),
                }
            }
            other => Err(Diagnostic::new(
                format!("expected expression, found {other}"),
                t.span,
            )),
        }
    }
}

/// Returns `(operator, precedence)` for tokens that begin a binary
/// operator; higher binds tighter.
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
    use TokenKind::*;
    Some(match kind {
        OrOr => (BinOp::LogicalOr, 1),
        AndAnd => (BinOp::LogicalAnd, 2),
        Pipe => (BinOp::Or, 3),
        Caret => (BinOp::Xor, 4),
        Amp => (BinOp::And, 5),
        EqEq => (BinOp::Eq, 6),
        NotEq => (BinOp::Ne, 6),
        Lt => (BinOp::Lt, 7),
        Le => (BinOp::Le, 7),
        Gt => (BinOp::Gt, 7),
        Ge => (BinOp::Ge, 7),
        Shl => (BinOp::Shl, 8),
        Shr => (BinOp::Shr, 8),
        Plus => (BinOp::Add, 9),
        Minus => (BinOp::Sub, 9),
        Star => (BinOp::Mul, 10),
        Slash => (BinOp::Div, 10),
        Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Vec<Item>, Diagnostic> {
        parse(&lex(src).unwrap())
    }

    fn parse_expr(src: &str) -> ExprAst {
        let items = parse_src(&format!("fn t() -> int {{ return {src}; }}")).unwrap();
        let Item::Function(f) = &items[0] else {
            panic!()
        };
        let StmtAst::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        e.clone()
    }

    #[test]
    fn parses_function_with_params() {
        let items = parse_src("fn add(a: int, b: int) -> int { return a + b; }").unwrap();
        let Item::Function(f) = &items[0] else {
            panic!("expected function")
        };
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(TypeAst::Int));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        let ExprAst::Binary { op: BinOp::Add, rhs, .. } = e else {
            panic!("expected top-level add")
        };
        assert!(matches!(*rhs, ExprAst::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_shift_over_compare_over_bitand() {
        // `a & b == c << 2` parses as `a & (b == (c << 2))`.
        let e = parse_expr("a & b == c << 2");
        let ExprAst::Binary { op: BinOp::And, rhs, .. } = e else {
            panic!("expected `&` at top")
        };
        assert!(matches!(*rhs, ExprAst::Binary { op: BinOp::Eq, .. }));
    }

    #[test]
    fn left_associativity() {
        let e = parse_expr("10 - 4 - 3");
        let ExprAst::Binary { op: BinOp::Sub, lhs, .. } = e else {
            panic!()
        };
        assert!(matches!(*lhs, ExprAst::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn unary_chains() {
        let e = parse_expr("-~!x");
        let ExprAst::Unary { op: UnOp::Neg, expr, .. } = e else {
            panic!()
        };
        let ExprAst::Unary { op: UnOp::BitNot, expr, .. } = *expr else {
            panic!()
        };
        assert!(matches!(*expr, ExprAst::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn parses_region_store_and_load() {
        let items =
            parse_src("fn f() { buf[0] = buf[1] + 2; }").unwrap();
        let Item::Function(f) = &items[0] else { panic!() };
        assert!(matches!(&f.body[0], StmtAst::Store { name, .. } if name == "buf"));
    }

    #[test]
    fn parses_if_else_chain() {
        let items = parse_src(
            "fn f(x: int) -> int { if x > 0 { return 1; } else if x < 0 { return 2; } else { return 3; } }",
        )
        .unwrap();
        let Item::Function(f) = &items[0] else { panic!() };
        let StmtAst::If { else_branch, .. } = &f.body[0] else {
            panic!()
        };
        assert!(matches!(&else_branch[0], StmtAst::If { .. }));
    }

    #[test]
    fn parses_for_loop() {
        let items =
            parse_src("fn f() { for i = 0; i < 10; i = i + 1 { buf[i] = i; } }").unwrap();
        let Item::Function(f) = &items[0] else { panic!() };
        assert!(matches!(&f.body[0], StmtAst::For { var, .. } if var == "i"));
    }

    #[test]
    fn for_loop_step_must_use_loop_var() {
        let err = parse_src("fn f() { for i = 0; i < 10; j = j + 1 { } }").unwrap_err();
        assert!(err.message.contains("loop variable"));
    }

    #[test]
    fn parses_const_table() {
        let items = parse_src("const K[3] = { 1, 2, 3 };").unwrap();
        let Item::Const(c) = &items[0] else { panic!() };
        assert_eq!(c.declared_len, Some(3));
        assert_eq!(c.table.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn parses_scalar_const_and_global() {
        let items = parse_src("const LIMIT = 64; var count = 0;").unwrap();
        assert!(matches!(&items[0], Item::Const(c) if c.scalar.is_some()));
        assert!(matches!(&items[1], Item::Global(g) if g.init.is_some()));
    }

    #[test]
    fn bare_load_statement_is_rejected() {
        let err = parse_src("fn f() { buf[0]; }").unwrap_err();
        assert!(err.message.contains("no effect"));
    }

    #[test]
    fn unterminated_block_is_reported() {
        let err = parse_src("fn f() { let x = 1;").unwrap_err();
        assert!(err.message.contains("unterminated") || err.message.contains("expected"));
    }

    #[test]
    fn call_statement_parses() {
        let items = parse_src("fn f() { g(1, 2); } fn g(a: int, b: int) {}").unwrap();
        let Item::Function(f) = &items[0] else { panic!() };
        assert!(matches!(&f.body[0], StmtAst::Expr(ExprAst::Call { .. })));
    }

    #[test]
    fn logical_ops_have_lowest_precedence() {
        let e = parse_expr("a == 1 && b == 2 || c == 3");
        assert!(matches!(e, ExprAst::Binary { op: BinOp::LogicalOr, .. }));
    }
}
