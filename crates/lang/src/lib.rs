//! **Grail** — the graftbench extension language.
//!
//! Grail is the C-like source language every benchmark graft is written
//! in once and then executed under each compiled or interpreted
//! technology (the Tcl-analogue grafts are written separately in Tickle).
//! It corresponds to the extension source the paper feeds to `gcc -O`,
//! the Modula-3 compiler, omniC++, and `javac`: a small, strongly typed
//! procedural language over 64-bit integers, booleans, shared kernel
//! regions, and constant tables.
//!
//! A program is a list of items:
//!
//! ```text
//! const S[4] = { 7, 12, 17, 22 };     // constant table
//! var calls = 0;                      // module-level variable
//!
//! fn scan(limit: int) -> int {        // function
//!     let i = 0;
//!     while i < limit {
//!         if hotlist[i] == 0 { return i; }
//!         i = i + 1;
//!     }
//!     calls = calls + 1;
//!     return 0 - 1;
//! }
//! ```
//!
//! `hotlist[i]` reads the kernel-shared region named `hotlist`; regions
//! are declared by the graft's [`RegionSpec`] list and passed to
//! [`compile`]. Integer arithmetic wraps (two's complement); shifts mask
//! their amount to 0..63; division by zero is a trap in every technology.
//! 32-bit work (for example MD5) is expressed by masking to
//! `0xFFFFFFFF`, mirroring the paper's Alpha `Word` discussion.
//!
//! The output of [`compile`] is a resolved, typed HIR ([`hir::Program`])
//! consumed by the IR lowering in `graft-ir` and by the bytecode compiler
//! in `engine-bytecode`.
//!
//! [`RegionSpec`]: graft_api::RegionSpec

pub mod ast;
pub mod check;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod token;

use graft_api::{GraftError, RegionSpec};

/// Compiles Grail source against a region ABI into checked HIR.
///
/// # Examples
///
/// ```
/// use graft_api::RegionSpec;
/// let program = graft_lang::compile(
///     "fn add(a: int, b: int) -> int { return a + b; }",
///     &[RegionSpec::data("buf", 8)],
/// )
/// .unwrap();
/// assert_eq!(program.funcs.len(), 1);
/// ```
pub fn compile(source: &str, regions: &[RegionSpec]) -> Result<hir::Program, GraftError> {
    let tokens = lexer::lex(source).map_err(|e| GraftError::Compile(e.render(source)))?;
    let items = parser::parse(&tokens).map_err(|e| GraftError::Compile(e.render(source)))?;
    check::check(&items, regions).map_err(|e| GraftError::Compile(e.render(source)))
}

/// A source location range, in byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Builds a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A compile-time diagnostic with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where in the source it went wrong.
    pub span: Span,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic as `line:col: message` against the source
    /// it was produced from.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start);
        format!("{line}:{col}: {}", self.message)
    }
}

/// Computes the 1-based line and column of a byte offset.
fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in source.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn diagnostics_render_line_and_column() {
        let src = "fn f() {\n  oops\n}";
        let d = Diagnostic::new("bad", Span::new(11, 15));
        assert_eq!(d.render(src), "2:3: bad");
    }

    #[test]
    fn compile_smoke() {
        let p = compile("fn main() -> int { return 41 + 1; }", &[]).unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
    }

    #[test]
    fn compile_reports_location() {
        let err = compile("fn main() -> int { return x; }", &[]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("1:"), "error should carry a location: {msg}");
        assert!(msg.contains('x'));
    }
}
