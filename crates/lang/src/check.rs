//! Name resolution, type checking, constant folding, and desugaring.

use std::collections::HashMap;

use graft_api::RegionSpec;

use crate::ast::{BinOp, ConstAst, ExprAst, FunctionAst, Item, StmtAst, TypeAst, UnOp};
use crate::hir::{ops, ConstPool, Expr, Func, Global, Program, RegionRef, Stmt, Ty};
use crate::{Diagnostic, Span};

/// Checks parsed items against a region ABI, producing HIR.
pub fn check(items: &[Item], regions: &[RegionSpec]) -> Result<Program, Diagnostic> {
    Checker::new(regions)?.run(items)
}

fn ty_of(ast: TypeAst) -> Ty {
    match ast {
        TypeAst::Int => Ty::Int,
        TypeAst::Bool => Ty::Bool,
    }
}

/// Signature of a program function, recorded before bodies are checked so
/// that forward calls resolve.
struct FuncSig {
    params: Vec<Ty>,
    ret: Option<Ty>,
}

struct Checker<'a> {
    regions: &'a [RegionSpec],
    region_index: HashMap<String, u16>,
    const_scalars: HashMap<String, i64>,
    const_pools: Vec<ConstPool>,
    pool_index: HashMap<String, u16>,
    globals: Vec<Global>,
    global_index: HashMap<String, usize>,
    func_sigs: Vec<FuncSig>,
    func_index: HashMap<String, usize>,
}

/// Lexical scope for locals inside one function body.
struct Scope {
    /// `(name, slot, ty)` triples; later entries shadow earlier ones.
    vars: Vec<(String, usize, Ty)>,
    /// Stack of scope start marks.
    marks: Vec<usize>,
    /// Next fresh slot.
    next_slot: usize,
}

impl Scope {
    fn new() -> Self {
        Scope {
            vars: Vec::new(),
            marks: Vec::new(),
            next_slot: 0,
        }
    }

    fn push(&mut self) {
        self.marks.push(self.vars.len());
    }

    fn pop(&mut self) {
        let mark = self.marks.pop().expect("scope underflow");
        self.vars.truncate(mark);
    }

    fn declare(&mut self, name: &str, ty: Ty) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.vars.push((name.to_string(), slot, ty));
        slot
    }

    fn lookup(&self, name: &str) -> Option<(usize, Ty)> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map(|&(_, slot, ty)| (slot, ty))
    }
}

impl<'a> Checker<'a> {
    fn new(regions: &'a [RegionSpec]) -> Result<Self, Diagnostic> {
        let mut region_index = HashMap::new();
        for (i, spec) in regions.iter().enumerate() {
            if region_index.insert(spec.name.clone(), i as u16).is_some() {
                return Err(Diagnostic::new(
                    format!("duplicate region `{}` in ABI", spec.name),
                    Span::default(),
                ));
            }
        }
        Ok(Checker {
            regions,
            region_index,
            const_scalars: HashMap::new(),
            const_pools: Vec::new(),
            pool_index: HashMap::new(),
            globals: Vec::new(),
            global_index: HashMap::new(),
            func_sigs: Vec::new(),
            func_index: HashMap::new(),
        })
    }

    fn run(mut self, items: &[Item]) -> Result<Program, Diagnostic> {
        // Pass 1: consts and globals, in order (consts may reference
        // earlier consts).
        for item in items {
            match item {
                Item::Const(c) => self.declare_const(c)?,
                Item::Global(g) => {
                    self.check_unique(&g.name, g.span)?;
                    let init = match &g.init {
                        Some(e) => self.const_eval(e)?,
                        None => 0,
                    };
                    self.global_index.insert(g.name.clone(), self.globals.len());
                    self.globals.push(Global {
                        name: g.name.clone(),
                        init,
                    });
                }
                Item::Function(_) => {}
            }
        }
        // Pass 2: function signatures.
        let mut fn_asts: Vec<&FunctionAst> = Vec::new();
        for item in items {
            if let Item::Function(f) = item {
                self.check_unique(&f.name, f.span)?;
                if f.name == "abort" {
                    return Err(Diagnostic::new(
                        "`abort` is a builtin and cannot be redefined",
                        f.span,
                    ));
                }
                self.func_index.insert(f.name.clone(), self.func_sigs.len());
                self.func_sigs.push(FuncSig {
                    params: f.params.iter().map(|(_, t)| ty_of(*t)).collect(),
                    ret: f.ret.map(ty_of),
                });
                fn_asts.push(f);
            }
        }
        // Pass 3: bodies.
        let mut funcs = Vec::new();
        for f in fn_asts {
            funcs.push(self.check_function(f)?);
        }
        Ok(Program {
            funcs,
            globals: self.globals,
            const_pools: self.const_pools,
            regions: self.regions.to_vec(),
            func_index: self.func_index,
        })
    }

    /// Rejects reuse of a name across the module-level namespaces.
    fn check_unique(&self, name: &str, span: Span) -> Result<(), Diagnostic> {
        let taken = self.region_index.contains_key(name)
            || self.const_scalars.contains_key(name)
            || self.pool_index.contains_key(name)
            || self.global_index.contains_key(name)
            || self.func_index.contains_key(name);
        if taken {
            Err(Diagnostic::new(
                format!("name `{name}` is already defined"),
                span,
            ))
        } else {
            Ok(())
        }
    }

    fn declare_const(&mut self, c: &ConstAst) -> Result<(), Diagnostic> {
        self.check_unique(&c.name, c.span)?;
        if let Some(values) = &c.table {
            let folded: Vec<i64> = values
                .iter()
                .map(|e| self.const_eval(e))
                .collect::<Result<_, _>>()?;
            if let Some(decl) = c.declared_len {
                if decl != folded.len() {
                    return Err(Diagnostic::new(
                        format!(
                            "const table `{}` declares {decl} elements but initializes {}",
                            c.name,
                            folded.len()
                        ),
                        c.span,
                    ));
                }
            }
            if folded.is_empty() {
                return Err(Diagnostic::new(
                    format!("const table `{}` must not be empty", c.name),
                    c.span,
                ));
            }
            self.pool_index
                .insert(c.name.clone(), self.const_pools.len() as u16);
            self.const_pools.push(ConstPool {
                name: c.name.clone(),
                values: folded,
            });
        } else {
            let value = self.const_eval(c.scalar.as_ref().expect("scalar const has value"))?;
            self.const_scalars.insert(c.name.clone(), value);
        }
        Ok(())
    }

    /// Evaluates a constant expression (literals, earlier scalar consts,
    /// arithmetic).
    fn const_eval(&self, e: &ExprAst) -> Result<i64, Diagnostic> {
        match e {
            ExprAst::Int(v, _) => Ok(*v),
            ExprAst::Bool(b, _) => Ok(*b as i64),
            ExprAst::Name(name, span) => {
                self.const_scalars.get(name).copied().ok_or_else(|| {
                    Diagnostic::new(
                        format!("`{name}` is not a constant known at this point"),
                        *span,
                    )
                })
            }
            ExprAst::Unary { op, expr, .. } => Ok(ops::unary(*op, self.const_eval(expr)?)),
            ExprAst::Binary { op, lhs, rhs, span } => {
                let a = self.const_eval(lhs)?;
                let b = self.const_eval(rhs)?;
                ops::binary(*op, a, b)
                    .ok_or_else(|| Diagnostic::new("division by zero in constant", *span))
            }
            other => Err(Diagnostic::new(
                "expression is not constant",
                other.span(),
            )),
        }
    }

    fn check_function(&self, f: &FunctionAst) -> Result<Func, Diagnostic> {
        let mut scope = Scope::new();
        scope.push();
        for (name, ty) in &f.params {
            if scope.lookup(name).is_some() {
                return Err(Diagnostic::new(
                    format!("duplicate parameter `{name}`"),
                    f.span,
                ));
            }
            scope.declare(name, ty_of(*ty));
        }
        let ret = f.ret.map(ty_of);
        let mut ctx = FnCtx {
            checker: self,
            scope,
            ret,
            loop_depth: 0,
        };
        let body = ctx.block(&f.body)?;
        if ret.is_some() && !always_returns(&body) {
            return Err(Diagnostic::new(
                format!(
                    "function `{}` declares a return type but may fall off the end",
                    f.name
                ),
                f.span,
            ));
        }
        Ok(Func {
            name: f.name.clone(),
            params: f
                .params
                .iter()
                .map(|(n, t)| (n.clone(), ty_of(*t)))
                .collect(),
            ret,
            frame_size: ctx.scope.next_slot,
            body,
        })
    }
}

/// Conservative all-paths-return analysis (the Java rule): a statement
/// list returns if any statement definitely returns; `if` returns when
/// both branches do; loops never count.
fn always_returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Return(_) => true,
        Stmt::Expr(Expr::Abort { .. }) => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => always_returns(then_branch) && always_returns(else_branch),
        _ => false,
    })
}

struct FnCtx<'a, 'b> {
    checker: &'b Checker<'a>,
    scope: Scope,
    ret: Option<Ty>,
    loop_depth: usize,
}

impl FnCtx<'_, '_> {
    fn block(&mut self, stmts: &[StmtAst]) -> Result<Vec<Stmt>, Diagnostic> {
        self.scope.push();
        let out = stmts.iter().map(|s| self.stmt(s)).collect();
        self.scope.pop();
        out
    }

    fn stmt(&mut self, s: &StmtAst) -> Result<Stmt, Diagnostic> {
        match s {
            StmtAst::Let { name, ty, init, span } => {
                let (init, init_ty) = self.expr(init)?;
                if let Some(decl) = ty {
                    let decl = ty_of(*decl);
                    if decl != init_ty {
                        return Err(Diagnostic::new(
                            format!("`let {name}: {decl}` initialized with {init_ty}"),
                            *span,
                        ));
                    }
                }
                let slot = self.scope.declare(name, init_ty);
                Ok(Stmt::Let { slot, init })
            }
            StmtAst::Assign { name, value, span } => {
                let (value, vty) = self.expr(value)?;
                if let Some((slot, ty)) = self.scope.lookup(name) {
                    if ty != vty {
                        return Err(Diagnostic::new(
                            format!("cannot assign {vty} to `{name}: {ty}`"),
                            *span,
                        ));
                    }
                    Ok(Stmt::AssignLocal { slot, value })
                } else if let Some(&index) = self.checker.global_index.get(name) {
                    if vty != Ty::Int {
                        return Err(Diagnostic::new(
                            format!("global `{name}` holds int, cannot assign {vty}"),
                            *span,
                        ));
                    }
                    Ok(Stmt::AssignGlobal { index, value })
                } else {
                    Err(Diagnostic::new(
                        format!("cannot assign to unknown variable `{name}`"),
                        *span,
                    ))
                }
            }
            StmtAst::Store {
                name,
                index,
                value,
                span,
            } => {
                let region = self.resolve_region(name, *span)?;
                match region {
                    RegionRef::Pool(_) => {
                        return Err(Diagnostic::new(
                            format!("cannot store into constant table `{name}`"),
                            *span,
                        ))
                    }
                    RegionRef::Shared(idx) => {
                        if !self.checker.regions[idx as usize].writable {
                            return Err(Diagnostic::new(
                                format!("region `{name}` is read-only"),
                                *span,
                            ));
                        }
                    }
                }
                let (index, ity) = self.expr(index)?;
                let (value, vty) = self.expr(value)?;
                self.require(ity, Ty::Int, "region index", *span)?;
                self.require(vty, Ty::Int, "stored value", *span)?;
                Ok(Stmt::Store {
                    region,
                    index,
                    value,
                })
            }
            StmtAst::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let (cond, cty) = self.expr(cond)?;
                self.require(cty, Ty::Bool, "`if` condition", *span)?;
                Ok(Stmt::If {
                    cond,
                    then_branch: self.block(then_branch)?,
                    else_branch: self.block(else_branch)?,
                })
            }
            StmtAst::While { cond, body, span } => {
                let (cond, cty) = self.expr(cond)?;
                self.require(cty, Ty::Bool, "`while` condition", *span)?;
                self.loop_depth += 1;
                let body = self.block(body)?;
                self.loop_depth -= 1;
                Ok(Stmt::While { cond, body })
            }
            StmtAst::For {
                var,
                init,
                cond,
                step,
                body,
                span,
            } => {
                // Desugar: { let var = init; while cond { body; var = step; } }
                self.scope.push();
                let (init, ity) = self.expr(init)?;
                self.require(ity, Ty::Int, "`for` initializer", *span)?;
                let slot = self.scope.declare(var, Ty::Int);
                let (cond, cty) = self.expr(cond)?;
                self.require(cty, Ty::Bool, "`for` condition", *span)?;
                let (step, sty) = self.expr(step)?;
                self.require(sty, Ty::Int, "`for` step", *span)?;
                self.loop_depth += 1;
                let mut while_body = self.block(body)?;
                self.loop_depth -= 1;
                self.scope.pop();
                while_body.push(Stmt::AssignLocal { slot, value: step });
                let desugared = Stmt::While {
                    cond,
                    body: while_body,
                };
                Ok(Stmt::If {
                    cond: Expr::Int(1),
                    then_branch: vec![Stmt::Let { slot, init }, desugared],
                    else_branch: Vec::new(),
                })
            }
            StmtAst::Break(span) => {
                if self.loop_depth == 0 {
                    return Err(Diagnostic::new("`break` outside of a loop", *span));
                }
                Ok(Stmt::Break)
            }
            StmtAst::Continue(span) => {
                if self.loop_depth == 0 {
                    return Err(Diagnostic::new("`continue` outside of a loop", *span));
                }
                Ok(Stmt::Continue)
            }
            StmtAst::Return(value, span) => match (self.ret, value) {
                (None, None) => Ok(Stmt::Return(None)),
                (None, Some(v)) => Err(Diagnostic::new(
                    "cannot return a value from a function with no return type",
                    v.span(),
                )),
                (Some(want), Some(v)) => {
                    let (v, vty) = self.expr(v)?;
                    if vty != want {
                        return Err(Diagnostic::new(
                            format!("return type mismatch: expected {want}, found {vty}"),
                            *span,
                        ));
                    }
                    Ok(Stmt::Return(Some(v)))
                }
                (Some(want), None) => Err(Diagnostic::new(
                    format!("function must return a value of type {want}"),
                    *span,
                )),
            },
            StmtAst::Expr(e) => {
                let span = e.span();
                if !matches!(e, ExprAst::Call { .. }) {
                    return Err(Diagnostic::new(
                        "only calls may be used as statements",
                        span,
                    ));
                }
                let (e, _) = self.expr(e)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn require(&self, got: Ty, want: Ty, what: &str, span: Span) -> Result<(), Diagnostic> {
        if got == want {
            Ok(())
        } else {
            Err(Diagnostic::new(
                format!("{what} must be {want}, found {got}"),
                span,
            ))
        }
    }

    fn resolve_region(&self, name: &str, span: Span) -> Result<RegionRef, Diagnostic> {
        if let Some(&idx) = self.checker.region_index.get(name) {
            Ok(RegionRef::Shared(idx))
        } else if let Some(&idx) = self.checker.pool_index.get(name) {
            Ok(RegionRef::Pool(idx))
        } else {
            Err(Diagnostic::new(
                format!("`{name}` is not a region or constant table"),
                span,
            ))
        }
    }

    fn expr(&mut self, e: &ExprAst) -> Result<(Expr, Ty), Diagnostic> {
        match e {
            ExprAst::Int(v, _) => Ok((Expr::Int(*v), Ty::Int)),
            ExprAst::Bool(b, _) => Ok((Expr::Int(*b as i64), Ty::Bool)),
            ExprAst::Name(name, span) => {
                if let Some((slot, ty)) = self.scope.lookup(name) {
                    Ok((Expr::Local(slot), ty))
                } else if let Some(&index) = self.checker.global_index.get(name) {
                    Ok((Expr::Global(index), Ty::Int))
                } else if let Some(&v) = self.checker.const_scalars.get(name) {
                    Ok((Expr::Int(v), Ty::Int))
                } else {
                    Err(Diagnostic::new(
                        format!("unknown variable `{name}`"),
                        *span,
                    ))
                }
            }
            ExprAst::Index { name, index, span } => {
                let region = self.resolve_region(name, *span)?;
                let (index, ity) = self.expr(index)?;
                self.require(ity, Ty::Int, "index", *span)?;
                Ok((
                    Expr::Load {
                        region,
                        index: Box::new(index),
                    },
                    Ty::Int,
                ))
            }
            ExprAst::Call { name, args, span } => {
                if name == "abort" {
                    if args.len() != 1 {
                        return Err(Diagnostic::new("`abort` takes one argument", *span));
                    }
                    let (code, cty) = self.expr(&args[0])?;
                    self.require(cty, Ty::Int, "abort code", *span)?;
                    return Ok((
                        Expr::Abort {
                            code: Box::new(code),
                        },
                        Ty::Int,
                    ));
                }
                let Some(&func) = self.checker.func_index.get(name) else {
                    return Err(Diagnostic::new(
                        format!("unknown function `{name}`"),
                        *span,
                    ));
                };
                let sig = &self.checker.func_sigs[func];
                if sig.params.len() != args.len() {
                    return Err(Diagnostic::new(
                        format!(
                            "`{name}` expects {} arguments, found {}",
                            sig.params.len(),
                            args.len()
                        ),
                        *span,
                    ));
                }
                let mut checked = Vec::with_capacity(args.len());
                for (arg, want) in args.iter().zip(&sig.params) {
                    let (a, ty) = self.expr(arg)?;
                    if ty != *want {
                        return Err(Diagnostic::new(
                            format!("argument type mismatch: expected {want}, found {ty}"),
                            arg.span(),
                        ));
                    }
                    checked.push(a);
                }
                let ret = sig.ret.unwrap_or(Ty::Int);
                Ok((Expr::Call { func, args: checked }, ret))
            }
            ExprAst::Unary { op, expr, span } => {
                let (inner, ty) = self.expr(expr)?;
                let out = match op {
                    UnOp::Neg | UnOp::BitNot => {
                        self.require(ty, Ty::Int, "operand", *span)?;
                        Ty::Int
                    }
                    UnOp::Not => {
                        self.require(ty, Ty::Bool, "operand of `!`", *span)?;
                        Ty::Bool
                    }
                };
                Ok((
                    Expr::Unary {
                        op: *op,
                        expr: Box::new(inner),
                    },
                    out,
                ))
            }
            ExprAst::Binary { op, lhs, rhs, span } => {
                let (l, lt) = self.expr(lhs)?;
                let (r, rt) = self.expr(rhs)?;
                let out = match op {
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::Div
                    | BinOp::Rem
                    | BinOp::And
                    | BinOp::Or
                    | BinOp::Xor
                    | BinOp::Shl
                    | BinOp::Shr => {
                        self.require(lt, Ty::Int, "left operand", *span)?;
                        self.require(rt, Ty::Int, "right operand", *span)?;
                        Ty::Int
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        self.require(lt, Ty::Int, "left operand", *span)?;
                        self.require(rt, Ty::Int, "right operand", *span)?;
                        Ty::Bool
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if lt != rt {
                            return Err(Diagnostic::new(
                                format!("cannot compare {lt} with {rt}"),
                                *span,
                            ));
                        }
                        Ty::Bool
                    }
                    BinOp::LogicalAnd | BinOp::LogicalOr => {
                        self.require(lt, Ty::Bool, "left operand", *span)?;
                        self.require(rt, Ty::Bool, "right operand", *span)?;
                        Ty::Bool
                    }
                };
                Ok((
                    Expr::Binary {
                        op: *op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    out,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use graft_api::RegionSpec;

    fn regions() -> Vec<RegionSpec> {
        vec![
            RegionSpec::data("buf", 16),
            RegionSpec::read_only("input", 8),
        ]
    }

    fn ok(src: &str) -> Program {
        compile(src, &regions()).unwrap()
    }

    fn err(src: &str) -> String {
        compile(src, &regions()).unwrap_err().to_string()
    }

    #[test]
    fn resolves_params_and_locals_to_slots() {
        let p = ok("fn f(a: int, b: int) -> int { let c = a + b; return c; }");
        let f = &p.funcs[0];
        assert_eq!(f.frame_size, 3);
        assert_eq!(f.body[0], Stmt::Let {
            slot: 2,
            init: Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Local(0)),
                rhs: Box::new(Expr::Local(1)),
            }
        });
    }

    #[test]
    fn shadowing_gets_fresh_slots() {
        let p = ok("fn f() -> int { let x = 1; if x == 1 { let x = 2; buf[0] = x; } return x; }");
        let f = &p.funcs[0];
        assert_eq!(f.frame_size, 2);
        // The outer `return x` must reference slot 0.
        assert_eq!(*f.body.last().unwrap(), Stmt::Return(Some(Expr::Local(0))));
    }

    #[test]
    fn inner_scope_names_do_not_leak() {
        let msg = err("fn f() { if true { let y = 1; buf[0] = y; } buf[1] = y; }");
        assert!(msg.contains("unknown variable `y`"));
    }

    #[test]
    fn scalar_consts_fold_into_literals() {
        let p = ok("const N = 4 * 16; fn f() -> int { return N; }");
        assert_eq!(p.funcs[0].body[0], Stmt::Return(Some(Expr::Int(64))));
    }

    #[test]
    fn const_tables_become_pools() {
        let p = ok("const K[3] = { 1, 1 + 1, 9 / 3 }; fn f() -> int { return K[0]; }");
        assert_eq!(p.const_pools[0].values, vec![1, 2, 3]);
        let Stmt::Return(Some(Expr::Load { region, .. })) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(*region, RegionRef::Pool(0));
    }

    #[test]
    fn const_table_length_mismatch_is_rejected() {
        let msg = err("const K[2] = { 1, 2, 3 };");
        assert!(msg.contains("declares 2"));
    }

    #[test]
    fn globals_resolve_and_initialize() {
        let p = ok("var hits = 7; fn bump() { hits = hits + 1; }");
        assert_eq!(p.globals[0].init, 7);
        assert!(matches!(
            p.funcs[0].body[0],
            Stmt::AssignGlobal { index: 0, .. }
        ));
    }

    #[test]
    fn region_names_resolve_by_declaration_order() {
        let p = ok("fn f() -> int { return buf[0] + input[1]; }");
        let Stmt::Return(Some(Expr::Binary { lhs, rhs, .. })) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Load { region: RegionRef::Shared(0), .. }));
        assert!(matches!(**rhs, Expr::Load { region: RegionRef::Shared(1), .. }));
    }

    #[test]
    fn store_to_read_only_region_is_rejected() {
        let msg = err("fn f() { input[0] = 1; }");
        assert!(msg.contains("read-only"));
    }

    #[test]
    fn store_to_const_table_is_rejected() {
        let msg = err("const K[1] = { 5 }; fn f() { K[0] = 1; }");
        assert!(msg.contains("constant table"));
    }

    #[test]
    fn condition_must_be_bool() {
        let msg = err("fn f() { if 1 { } }");
        assert!(msg.contains("must be bool"));
    }

    #[test]
    fn arithmetic_on_bool_is_rejected() {
        let msg = err("fn f() -> int { return true + 1; }");
        assert!(msg.contains("must be int"));
    }

    #[test]
    fn eq_requires_same_types() {
        let msg = err("fn f() -> bool { return true == 1; }");
        assert!(msg.contains("cannot compare"));
    }

    #[test]
    fn call_arity_and_types_checked() {
        let msg = err("fn g(a: int) {} fn f() { g(); }");
        assert!(msg.contains("expects 1 arguments"));
        let msg = err("fn g(a: bool) {} fn f() { g(3); }");
        assert!(msg.contains("argument type mismatch"));
    }

    #[test]
    fn forward_calls_resolve() {
        let p = ok("fn f() -> int { return g(); } fn g() -> int { return 1; }");
        assert!(matches!(
            p.funcs[0].body[0],
            Stmt::Return(Some(Expr::Call { func: 1, .. }))
        ));
    }

    #[test]
    fn missing_return_is_rejected() {
        let msg = err("fn f(x: int) -> int { if x > 0 { return 1; } }");
        assert!(msg.contains("fall off the end"));
    }

    #[test]
    fn both_branches_returning_is_accepted() {
        ok("fn f(x: int) -> int { if x > 0 { return 1; } else { return 2; } }");
    }

    #[test]
    fn abort_counts_as_returning() {
        ok("fn f(x: int) -> int { if x > 0 { return 1; } abort(9); }");
    }

    #[test]
    fn break_outside_loop_is_rejected() {
        let msg = err("fn f() { break; }");
        assert!(msg.contains("outside of a loop"));
    }

    #[test]
    fn for_loop_desugars_to_while() {
        let p = ok("fn f() -> int { let s = 0; for i = 0; i < 4; i = i + 1 { s = s + i; } return s; }");
        // The desugaring wraps the loop in an `if true` block carrying the
        // loop variable's scope.
        let Stmt::If { then_branch, .. } = &p.funcs[0].body[1] else {
            panic!("expected desugared for");
        };
        assert!(matches!(then_branch[1], Stmt::While { .. }));
    }

    #[test]
    fn duplicate_names_across_namespaces_are_rejected() {
        let msg = err("var buf = 0;");
        assert!(msg.contains("already defined"));
        let msg = err("const f = 1; fn f() {}");
        assert!(msg.contains("already defined"));
    }

    #[test]
    fn abort_cannot_be_redefined() {
        let msg = err("fn abort(x: int) {}");
        assert!(msg.contains("builtin"));
    }

    #[test]
    fn non_call_expression_statement_is_rejected() {
        // Parser already rejects bare loads; a name is caught here.
        let msg = err("fn f() { let x = 1; x; }");
        assert!(msg.contains("expected") || msg.contains("statement"));
    }

    #[test]
    fn void_function_returns_are_checked() {
        let msg = err("fn f() { return 3; }");
        assert!(msg.contains("no return type"));
        let msg = err("fn f() -> int { return; }");
        assert!(msg.contains("must return a value"));
    }
}
