//! The Grail surface syntax tree, produced by the parser.
//!
//! Names are unresolved strings at this stage; the checker in
//! [`crate::check`] resolves them and produces the typed HIR.

use crate::Span;

/// A surface type annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeAst {
    /// 64-bit wrapping integer.
    Int,
    /// Boolean.
    Bool,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `fn name(params) -> ty { ... }`
    Function(FunctionAst),
    /// `var name = expr;` — a module-level mutable integer.
    Global(GlobalAst),
    /// `const NAME[len] = { ... };` or `const NAME = expr;`
    Const(ConstAst),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionAst {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, TypeAst)>,
    /// Declared return type; `None` means the function returns no value.
    pub ret: Option<TypeAst>,
    /// Body statements.
    pub body: Vec<StmtAst>,
    /// Span of the `fn name` header.
    pub span: Span,
}

/// A module-level variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalAst {
    /// Variable name.
    pub name: String,
    /// Optional initializer (must be a constant expression).
    pub init: Option<ExprAst>,
    /// Declaration span.
    pub span: Span,
}

/// A constant declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstAst {
    /// Constant name.
    pub name: String,
    /// `Some(values)` for a table, `None` for a scalar.
    pub table: Option<Vec<ExprAst>>,
    /// Scalar initializer when `table` is `None`.
    pub scalar: Option<ExprAst>,
    /// Declared table length, when given as `const N[len]`.
    pub declared_len: Option<usize>,
    /// Declaration span.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtAst {
    /// `let name: ty = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Optional annotation.
        ty: Option<TypeAst>,
        /// Initializer.
        init: ExprAst,
        /// Statement span.
        span: Span,
    },
    /// `name = expr;` — assignment to a local or global.
    Assign {
        /// Target name.
        name: String,
        /// Value.
        value: ExprAst,
        /// Statement span.
        span: Span,
    },
    /// `name[index] = expr;` — store into a region or const table.
    Store {
        /// Region name.
        name: String,
        /// Index expression.
        index: ExprAst,
        /// Value expression.
        value: ExprAst,
        /// Statement span.
        span: Span,
    },
    /// `if cond { .. } else { .. }`
    If {
        /// Condition.
        cond: ExprAst,
        /// Then branch.
        then_branch: Vec<StmtAst>,
        /// Else branch (possibly empty).
        else_branch: Vec<StmtAst>,
        /// Statement span.
        span: Span,
    },
    /// `while cond { .. }`
    While {
        /// Condition.
        cond: ExprAst,
        /// Loop body.
        body: Vec<StmtAst>,
        /// Statement span.
        span: Span,
    },
    /// `for init; cond; step { .. }` — sugar over `while`.
    For {
        /// Loop variable name (declared with `let` semantics).
        var: String,
        /// Initial value.
        init: ExprAst,
        /// Condition.
        cond: ExprAst,
        /// Step expression assigned back to the loop variable.
        step: ExprAst,
        /// Loop body.
        body: Vec<StmtAst>,
        /// Statement span.
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `return expr?;`
    Return(Option<ExprAst>, Span),
    /// An expression evaluated for its effect (a call).
    Expr(ExprAst),
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (wrapping)
    Add,
    /// `-` (wrapping)
    Sub,
    /// `*` (wrapping)
    Mul,
    /// `/` (traps on zero)
    Div,
    /// `%` (traps on zero)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (amount masked to 0..63)
    Shl,
    /// `>>` — *logical* shift right (amount masked to 0..63)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogicalAnd,
    /// `||` (short-circuit)
    LogicalOr,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (wrapping).
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Boolean negation.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// A name: local, global, or scalar const.
    Name(String, Span),
    /// `name[index]`: region or const-table load.
    Index {
        /// Region or table name.
        name: String,
        /// Index expression.
        index: Box<ExprAst>,
        /// Expression span.
        span: Span,
    },
    /// `name(args)` function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<ExprAst>,
        /// Expression span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<ExprAst>,
        /// Expression span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
        /// Expression span.
        span: Span,
    },
}

impl ExprAst {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            ExprAst::Int(_, s)
            | ExprAst::Bool(_, s)
            | ExprAst::Name(_, s)
            | ExprAst::Index { span: s, .. }
            | ExprAst::Call { span: s, .. }
            | ExprAst::Unary { span: s, .. }
            | ExprAst::Binary { span: s, .. } => *s,
        }
    }
}
