//! The resolved, typed high-level IR produced by the checker.
//!
//! All names are resolved to indexes (local slots, global indexes, region
//! ids, function ids), `for` loops are desugared to `while`, scalar
//! constants are folded, and booleans are erased to 0/1 integers. This is
//! the common input to both the register-IR lowering (`graft-ir`, used by
//! the compiled technologies) and the stack-bytecode compiler
//! (`engine-bytecode`, the Java analogue).

pub use crate::ast::{BinOp, UnOp};
use graft_api::RegionSpec;
use std::collections::HashMap;

/// A Grail type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit wrapping integer.
    Int,
    /// Boolean (erased to 0/1 at runtime).
    Bool,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Ty::Int => "int",
            Ty::Bool => "bool",
        })
    }
}

/// A checked program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All functions, in declaration order.
    pub funcs: Vec<Func>,
    /// Module-level variables with their initial values.
    pub globals: Vec<Global>,
    /// Constant tables (`const K[n] = {..}`), folded to values.
    pub const_pools: Vec<ConstPool>,
    /// The shared-region ABI the program was compiled against.
    pub regions: Vec<RegionSpec>,
    /// Function name → index into [`Program::funcs`].
    pub func_index: HashMap<String, usize>,
}

impl Program {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.func_index.get(name).map(|&i| &self.funcs[i])
    }
}

/// A module-level variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Initial value (constant-folded).
    pub init: i64,
}

/// A folded constant table.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstPool {
    /// Table name.
    pub name: String,
    /// Table contents.
    pub values: Vec<i64>,
}

/// A checked function.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameter names and types; parameters occupy local slots
    /// `0..params.len()`.
    pub params: Vec<(String, Ty)>,
    /// Return type; `None` means the function returns no value (callers
    /// observe 0).
    pub ret: Option<Ty>,
    /// Total number of local slots (parameters plus `let` bindings).
    pub frame_size: usize,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Where an indexed load/store goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionRef {
    /// A kernel-shared region, by declaration order.
    Shared(u16),
    /// A read-only constant table embedded in the module.
    Pool(u16),
}

/// A checked statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Bind local slot `slot` to the value of `init`.
    Let {
        /// Destination slot.
        slot: usize,
        /// Initializer.
        init: Expr,
    },
    /// Assign to a local slot.
    AssignLocal {
        /// Destination slot.
        slot: usize,
        /// Value.
        value: Expr,
    },
    /// Assign to a global.
    AssignGlobal {
        /// Global index.
        index: usize,
        /// Value.
        value: Expr,
    },
    /// Store into a shared region (stores into pools are rejected at
    /// check time).
    Store {
        /// Target region.
        region: RegionRef,
        /// Index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Two-way conditional.
    If {
        /// Condition (boolean).
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch.
        else_branch: Vec<Stmt>,
    },
    /// Loop while `cond` holds.
    While {
        /// Condition (boolean).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Exit the innermost loop.
    Break,
    /// Restart the innermost loop.
    Continue,
    /// Return from the function.
    Return(Option<Expr>),
    /// Evaluate for effect.
    Expr(Expr),
}

/// A checked expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer (or erased boolean) literal.
    Int(i64),
    /// Read a local slot.
    Local(usize),
    /// Read a global.
    Global(usize),
    /// Indexed load from a region or constant pool.
    Load {
        /// Source region.
        region: RegionRef,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation (`LogicalAnd`/`LogicalOr` short-circuit).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Call a program function by index.
    Call {
        /// Callee index into [`Program::funcs`].
        func: usize,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// The `abort(code)` builtin: raises [`graft_api::Trap::Abort`].
    Abort {
        /// Abort code.
        code: Box<Expr>,
    },
}

/// Evaluation helpers shared by engines: the defined semantics of Grail's
/// operators on two's-complement 64-bit integers.
pub mod ops {
    use super::{BinOp, UnOp};

    /// Applies a non-short-circuit binary operator.
    ///
    /// Returns `None` for division or remainder by zero (the caller
    /// raises [`graft_api::Trap::DivByZero`]). Comparison and logical
    /// results are 0/1. Shift amounts are masked to `0..=63`. `>>` is a
    /// logical (unsigned) shift, the natural choice for the bit-twiddling
    /// grafts the paper studies.
    #[inline]
    pub fn binary(op: BinOp, a: i64, b: i64) -> Option<i64> {
        Some(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
            // Short-circuit forms are handled structurally by engines;
            // when both sides are already evaluated this is the result.
            BinOp::LogicalAnd => ((a != 0) && (b != 0)) as i64,
            BinOp::LogicalOr => ((a != 0) || (b != 0)) as i64,
        })
    }

    /// Applies a unary operator.
    #[inline]
    pub fn unary(op: UnOp, v: i64) -> i64 {
        match op {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::BitNot => !v,
            UnOp::Not => (v == 0) as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ops::{binary, unary};
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(binary(BinOp::Add, i64::MAX, 1), Some(i64::MIN));
        assert_eq!(binary(BinOp::Mul, i64::MAX, 2), Some(-2));
        assert_eq!(unary(UnOp::Neg, i64::MIN), i64::MIN);
    }

    #[test]
    fn division_by_zero_is_none() {
        assert_eq!(binary(BinOp::Div, 1, 0), None);
        assert_eq!(binary(BinOp::Rem, 1, 0), None);
        assert_eq!(binary(BinOp::Div, 7, 2), Some(3));
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(binary(BinOp::Shl, 1, 64), Some(1));
        assert_eq!(binary(BinOp::Shl, 1, 65), Some(2));
        assert_eq!(binary(BinOp::Shr, -1, 32), Some(0xFFFF_FFFF));
    }

    #[test]
    fn shr_is_logical() {
        assert_eq!(binary(BinOp::Shr, -1, 63), Some(1));
        assert_eq!(binary(BinOp::Shr, i64::MIN, 1), Some(1 << 62));
    }

    #[test]
    fn comparisons_yield_zero_one() {
        assert_eq!(binary(BinOp::Lt, 1, 2), Some(1));
        assert_eq!(binary(BinOp::Ge, 1, 2), Some(0));
        assert_eq!(unary(UnOp::Not, 0), 1);
        assert_eq!(unary(UnOp::Not, 5), 0);
    }

    #[test]
    fn md5_style_32bit_masking_works() {
        // (0xFFFFFFFF + 1) & 0xFFFFFFFF == 0 — the Alpha Word-package
        // idiom the paper discusses, expressible in 64-bit Grail.
        let sum = binary(BinOp::Add, 0xFFFF_FFFF, 1).unwrap();
        assert_eq!(binary(BinOp::And, sum, 0xFFFF_FFFF), Some(0));
    }
}
