//! RFC 1321 MD5, implemented from scratch.
//!
//! MD5 is the paper's representative **stream graft** (Section 3.2): a
//! filter inserted into the I/O path that fingerprints file data so
//! tampering can be detected. This crate provides the reference Rust
//! implementation used three ways in the workspace:
//!
//! * as the `RustNative` row of Table 5;
//! * as the *golden oracle* against which the Grail, bytecode, and
//!   Tickle MD5 grafts are checked word for word;
//! * as a plain library for anyone who wants a digest.
//!
//! The implementation is the streaming structure of the RFC reference
//! code: 64-byte blocks, four rounds of sixteen operations, a 64-bit
//! message-length counter, and the standard padding. The sine-derived
//! `T` table is spelled out as constants, exactly as in the RFC
//! appendix.
//!
//! # Examples
//!
//! ```
//! let digest = graft_md5::digest(b"abc");
//! assert_eq!(graft_md5::hex(&digest), "900150983cd24fb0d6963f7d28e17f72");
//! ```

/// The per-round shift amounts (RFC 1321 §3.4).
pub const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

/// The sine-derived additive constants `T[i] = floor(2^32 * |sin(i+1)|)`
/// (RFC 1321 §3.4).
pub const T: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// Initial chaining values A, B, C, D (RFC 1321 §3.3).
pub const INIT: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

/// A streaming MD5 context.
///
/// Mirrors the RFC's `MD5_CTX`: call [`Md5::update`] any number of
/// times, then [`Md5::finish`].
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    /// Pending partial block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Starts a new digest.
    pub fn new() -> Self {
        Md5 {
            state: INIT,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Pads and produces the 16-byte fingerprint.
    pub fn finish(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zeros until 56 mod 64, then the length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length bytes must not be counted, so write them directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// The current chaining state (exposed so graft implementations can
    /// be compared mid-stream in tests).
    pub fn state(&self) -> [u32; 4] {
        self.state
    }

    /// The RFC 1321 compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(T[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot digest of a byte slice.
pub fn digest(data: &[u8]) -> [u8; 16] {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finish()
}

/// Renders a digest as lowercase hex.
pub fn hex(digest: &[u8; 16]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(32);
    for b in digest {
        let _ = write!(out, "{b:02x}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RFC 1321 appendix A.5 test suite, verbatim.
    #[test]
    fn rfc1321_test_suite() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(&digest(input)), want, "input {input:?}");
        }
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..200u16).map(|i| (i * 7 % 251) as u8).collect();
        let want = digest(&data);
        for split in 0..data.len() {
            let mut ctx = Md5::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finish(), want, "split at {split}");
        }
    }

    #[test]
    fn many_small_updates_match() {
        let data = vec![0xABu8; 1000];
        let want = digest(&data);
        let mut ctx = Md5::new();
        for b in &data {
            ctx.update(std::slice::from_ref(b));
        }
        assert_eq!(ctx.finish(), want);
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths straddling the 56-byte padding boundary and the
        // 64-byte block boundary are the classic bug farm.
        for len in [55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![b'x'; len];
            let one = digest(&data);
            let mut ctx = Md5::new();
            ctx.update(&data);
            assert_eq!(ctx.finish(), one, "len {len}");
        }
    }

    #[test]
    fn single_bit_change_changes_fingerprint() {
        let a = vec![0u8; 4096];
        let mut b = a.clone();
        b[2048] ^= 1;
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn split_updates_match_on_the_megabyte_workload() {
        // Deterministic 1 MB workload used by the Table 5 harness; the
        // same generator feeds every technology.
        let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        let mut ctx = Md5::new();
        ctx.update(&data[..500_000]);
        ctx.update(&data[500_000..]);
        assert_eq!(ctx.finish(), digest(&data));
    }
}
