//! Property tests for the MD5 reference implementation.

use graft_md5::{digest, hex, Md5};
use proptest::prelude::*;

proptest! {
    /// Streaming in arbitrary chunkings always equals the one-shot
    /// digest.
    #[test]
    fn chunking_is_irrelevant(
        data in prop::collection::vec(any::<u8>(), 0..600),
        cuts in prop::collection::vec(any::<u16>(), 0..8),
    ) {
        let want = digest(&data);
        let mut cuts: Vec<usize> = cuts
            .into_iter()
            .map(|c| c as usize % (data.len() + 1))
            .collect();
        cuts.sort_unstable();
        let mut ctx = Md5::new();
        let mut at = 0;
        for cut in cuts {
            ctx.update(&data[at..cut.max(at)]);
            at = cut.max(at);
        }
        ctx.update(&data[at..]);
        prop_assert_eq!(ctx.finish(), want);
    }

    /// Any single-bit corruption is detected.
    #[test]
    fn single_corruption_is_detected(
        mut data in prop::collection::vec(any::<u8>(), 1..300),
        at in any::<u16>(),
        bit in 0u8..8,
    ) {
        let clean = digest(&data);
        let at = at as usize % data.len();
        data[at] ^= 1 << bit;
        prop_assert_ne!(digest(&data), clean);
    }

    /// Hex rendering is 32 lowercase hex chars.
    #[test]
    fn hex_shape(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let h = hex(&digest(&data));
        prop_assert_eq!(h.len(), 32);
        prop_assert!(h.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
