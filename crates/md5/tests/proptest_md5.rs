//! Property tests for the MD5 reference implementation, driven by a
//! seeded RNG (no network deps).

use graft_md5::{digest, hex, Md5};
use graft_rng::{Rng, SmallRng};

fn random_bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0usize..max_len);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Streaming in arbitrary chunkings always equals the one-shot digest.
#[test]
fn chunking_is_irrelevant() {
    let mut rng = SmallRng::seed_from_u64(0x3D5);
    for _case in 0..128 {
        let data = random_bytes(&mut rng, 600);
        let ncuts = rng.gen_range(0usize..8);
        let want = digest(&data);
        let mut cuts: Vec<usize> = (0..ncuts)
            .map(|_| rng.gen_range(0usize..data.len() + 1))
            .collect();
        cuts.sort_unstable();
        let mut ctx = Md5::new();
        let mut at = 0;
        for cut in cuts {
            ctx.update(&data[at..cut.max(at)]);
            at = cut.max(at);
        }
        ctx.update(&data[at..]);
        assert_eq!(ctx.finish(), want);
    }
}

/// Any single-bit corruption is detected.
#[test]
fn single_corruption_is_detected() {
    let mut rng = SmallRng::seed_from_u64(0xC0);
    for _case in 0..256 {
        let mut data = random_bytes(&mut rng, 300);
        if data.is_empty() {
            data.push(rng.next_u64() as u8);
        }
        let at = rng.gen_range(0usize..data.len());
        let bit = rng.gen_range(0u8..8);
        let clean = digest(&data);
        data[at] ^= 1 << bit;
        assert_ne!(digest(&data), clean);
    }
}

/// Hex rendering is 32 lowercase hex chars.
#[test]
fn hex_shape() {
    let mut rng = SmallRng::seed_from_u64(0x4e);
    for _case in 0..64 {
        let data = random_bytes(&mut rng, 64);
        let h = hex(&digest(&data));
        assert_eq!(h.len(), 32);
        assert!(h
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
