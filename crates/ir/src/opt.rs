//! Load-time IR optimization.
//!
//! The paper measured a *pre-release* Omniware whose translator "does
//! not include an optimizer for the SFI instructions" (§5.2), and
//! attributes part of its overhead to that. This module is the
//! optimizer that system was missing: a short pipeline of classic
//! load-time passes, safe to run before any engine translates the IR.
//!
//! Passes (in order, iterated to a fixed point once):
//!
//! 1. **constant folding** — `Bin`/`Un`/`Mov` over known constants
//!    collapse to `Const`; trapping operations (division by a constant
//!    zero) are deliberately *not* folded so traps still occur at run
//!    time;
//! 2. **branch folding** — `Br` on a known constant becomes `Jmp`;
//! 3. **jump threading** — `Jmp`→`Jmp` chains collapse;
//! 4. **unreachable-code elimination** — instructions no path reaches
//!    are removed and targets remapped.
//!
//! The optimizer is off by default in the experiment harness (paper
//! parity: the measured Omniware had none); the `ablation_optimizer`
//! bench measures what it buys.

use std::collections::HashMap;

use graft_lang::hir::{ops, BinOp};

use crate::module::{Inst, IrFunc, Module, Reg};

/// Optimizes every function in the module in place.
pub fn optimize(module: &mut Module) {
    for func in &mut module.funcs {
        fold_constants(func);
        thread_jumps(func);
        remove_unreachable(func);
    }
}

/// Returns the set of instruction indexes that are jump targets (block
/// leaders, where constant knowledge must be discarded).
fn leaders(func: &IrFunc) -> Vec<bool> {
    let mut leader = vec![false; func.code.len()];
    for inst in &func.code {
        match inst {
            Inst::Jmp { target } => leader[*target as usize] = true,
            Inst::Br { then_t, else_t, .. } => {
                leader[*then_t as usize] = true;
                leader[*else_t as usize] = true;
            }
            _ => {}
        }
    }
    leader
}

/// Linear-scan constant propagation within basic blocks, plus branch
/// folding.
fn fold_constants(func: &mut IrFunc) {
    let leader = leaders(func);
    let mut known: HashMap<Reg, i64> = HashMap::new();
    for (at, &is_leader) in leader.iter().enumerate() {
        if is_leader {
            known.clear();
        }
        let replacement = match &func.code[at] {
            Inst::Const { dst, value } => {
                known.insert(*dst, *value);
                None
            }
            Inst::Mov { dst, src } => match known.get(src).copied() {
                Some(v) => {
                    known.insert(*dst, v);
                    Some(Inst::Const { dst: *dst, value: v })
                }
                None => {
                    known.remove(dst);
                    None
                }
            },
            Inst::Un { op, dst, src } => match known.get(src).copied() {
                Some(v) => {
                    let folded = ops::unary(*op, v);
                    known.insert(*dst, folded);
                    Some(Inst::Const {
                        dst: *dst,
                        value: folded,
                    })
                }
                None => {
                    known.remove(dst);
                    None
                }
            },
            Inst::Bin { op, dst, a, b } => {
                let folded = match (known.get(a), known.get(b)) {
                    (Some(&a), Some(&b)) => ops::binary(*op, a, b),
                    _ => None,
                };
                // `None` from a trapping op (x / 0) must keep trapping
                // at run time, so only fold real values.
                match folded {
                    Some(v)
                        if !matches!(op, BinOp::Div | BinOp::Rem)
                            || known.get(b).copied() != Some(0) =>
                    {
                        known.insert(*dst, v);
                        Some(Inst::Const {
                            dst: *dst,
                            value: v,
                        })
                    }
                    _ => {
                        known.remove(dst);
                        None
                    }
                }
            }
            Inst::Br {
                cond,
                then_t,
                else_t,
            } => known.get(cond).copied().map(|v| Inst::Jmp {
                target: if v != 0 { *then_t } else { *else_t },
            }),
            // Any other writer invalidates what we knew about `dst`.
            Inst::Load { dst, .. }
            | Inst::GlobalGet { dst, .. }
            | Inst::Call { dst, .. }
            | Inst::Mask { dst, .. }
            | Inst::MaskedLoad { dst, .. }
            | Inst::ArenaLoad { dst, .. } => {
                known.remove(dst);
                None
            }
            _ => None,
        };
        if let Some(inst) = replacement {
            func.code[at] = inst;
        }
    }
}

/// Collapses `Jmp`-to-`Jmp` chains (with a hop bound so degenerate
/// cycles terminate).
fn thread_jumps(func: &mut IrFunc) {
    let resolve = |mut target: u32, code: &[Inst]| -> u32 {
        for _ in 0..code.len() {
            match &code[target as usize] {
                Inst::Jmp { target: next } if *next != target => target = *next,
                _ => break,
            }
        }
        target
    };
    let code_snapshot = func.code.clone();
    for inst in &mut func.code {
        match inst {
            Inst::Jmp { target } => *target = resolve(*target, &code_snapshot),
            Inst::Br { then_t, else_t, .. } => {
                *then_t = resolve(*then_t, &code_snapshot);
                *else_t = resolve(*else_t, &code_snapshot);
            }
            _ => {}
        }
    }
}

/// Removes instructions unreachable from the entry and remaps targets.
fn remove_unreachable(func: &mut IrFunc) {
    let len = func.code.len();
    let mut reachable = vec![false; len];
    let mut work = vec![0usize];
    while let Some(at) = work.pop() {
        if at >= len || reachable[at] {
            continue;
        }
        reachable[at] = true;
        match &func.code[at] {
            Inst::Jmp { target } => work.push(*target as usize),
            Inst::Br { then_t, else_t, .. } => {
                work.push(*then_t as usize);
                work.push(*else_t as usize);
            }
            Inst::Ret { .. } | Inst::Abort { .. } => {}
            _ => work.push(at + 1),
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    // Build the old→new index map and compact.
    let mut new_index = vec![0u32; len];
    let mut next = 0u32;
    for (at, &r) in reachable.iter().enumerate() {
        new_index[at] = next;
        if r {
            next += 1;
        }
    }
    let old = std::mem::take(&mut func.code);
    func.code = old
        .into_iter()
        .enumerate()
        .filter(|(at, _)| reachable[*at])
        .map(|(_, mut inst)| {
            match &mut inst {
                Inst::Jmp { target } => *target = new_index[*target as usize],
                Inst::Br { then_t, else_t, .. } => {
                    *then_t = new_index[*then_t as usize];
                    *else_t = new_index[*else_t as usize];
                }
                _ => {}
            }
            inst
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::RegionSpec;

    fn lower(src: &str) -> Module {
        let hir = graft_lang::compile(src, &[RegionSpec::data("buf", 8)]).unwrap();
        crate::lower(&hir)
    }

    #[test]
    fn folding_collapses_constant_arithmetic() {
        let mut m = lower("fn f() -> int { return (2 + 3) * (10 - 6); }");
        let before = m.code_len();
        optimize(&mut m);
        crate::verify(&m).unwrap();
        assert!(m.code_len() < before, "{}", crate::disasm::module(&m));
        // The whole body must now be a single constant return.
        assert!(m.funcs[0]
            .code
            .iter()
            .any(|i| matches!(i, Inst::Const { value: 20, .. })));
        assert!(!m.funcs[0].code.iter().any(|i| matches!(i, Inst::Bin { .. })));
    }

    #[test]
    fn constant_division_by_zero_is_not_folded() {
        let mut m = lower("fn f() -> int { return 1 / 0; }");
        optimize(&mut m);
        crate::verify(&m).unwrap();
        assert!(
            m.funcs[0]
                .code
                .iter()
                .any(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. })),
            "the trapping division must survive: {}",
            crate::disasm::module(&m)
        );
    }

    #[test]
    fn branch_on_constant_folds_and_dead_branch_is_removed() {
        let mut m = lower(
            "fn f() -> int { if true { return 1; } else { return buf[0] + buf[1] + buf[2]; } }",
        );
        optimize(&mut m);
        crate::verify(&m).unwrap();
        // The dead else branch (three loads) must be gone.
        assert!(
            !m.funcs[0]
                .code
                .iter()
                .any(|i| matches!(i, Inst::Load { .. })),
            "{}",
            crate::disasm::module(&m)
        );
        assert!(!m.funcs[0].code.iter().any(|i| matches!(i, Inst::Br { .. })));
    }

    #[test]
    fn loop_code_survives_optimization_and_verifies() {
        let src = "fn f(n: int) -> int { let s = 0; let i = 0; while i < n { s = s + i; i = i + 1; } return s; }";
        let mut m = lower(src);
        optimize(&mut m);
        crate::verify(&m).unwrap();
        // The loop condition depends on a parameter; the backedge must
        // survive.
        assert!(m.funcs[0].code.iter().any(|i| matches!(i, Inst::Br { .. })));
    }

    #[test]
    fn jump_threading_eliminates_chains() {
        let mut m = lower("fn f() -> int { while true { break; } return 9; }");
        optimize(&mut m);
        crate::verify(&m).unwrap();
        // No Jmp may point at another Jmp after threading.
        let code = &m.funcs[0].code;
        for inst in code {
            if let Inst::Jmp { target } = inst {
                assert!(
                    !matches!(code[*target as usize], Inst::Jmp { target: t } if t != *target),
                    "unthreaded chain: {}",
                    crate::disasm::module(&m)
                );
            }
        }
    }

    #[test]
    fn idempotent() {
        let mut m = lower("fn f(x: int) -> int { return (x + 0) + (2 * 3); }");
        optimize(&mut m);
        let once = m.clone();
        optimize(&mut m);
        assert_eq!(m, once);
    }
}
