//! Machine-independent register IR for the compiled extension
//! technologies.
//!
//! This is the analogue of the "machine independent code" the paper's
//! Omniware compiler emits and of the object code a Modula-3 or C
//! compiler would hand to the kernel's load-time translator. Grail HIR is
//! lowered here once; the threaded-code engine in `engine-native` then
//! translates the IR at *load time* under one of three safety modes
//! (unchecked / safe-checked / SFI-instrumented), exactly the placement
//! the paper describes for load-time translation (Section 4.2).
//!
//! The IR is a flat, infinite-register, three-address code with explicit
//! jump targets. Registers `0..arity` hold the arguments on entry; local
//! slots occupy the next registers; expression temporaries follow.

pub mod disasm;
pub mod lower;
pub mod module;
pub mod opt;
pub mod verify;

pub use lower::lower;
pub use opt::optimize;
pub use module::{Inst, IrFunc, MemRef, Module, Reg};
pub use verify::verify;

#[cfg(test)]
mod tests {
    use graft_api::RegionSpec;

    /// End-to-end: compile + lower + verify a representative program.
    #[test]
    fn compile_lower_verify_round_trip() {
        let src = r#"
            const K[4] = { 10, 20, 30, 40 };
            var total = 0;

            fn accumulate(n: int) -> int {
                let i = 0;
                while i < n {
                    total = total + K[i & 3] + buf[i];
                    i = i + 1;
                }
                return total;
            }
        "#;
        let hir = graft_lang::compile(src, &[RegionSpec::data("buf", 8)]).unwrap();
        let module = crate::lower(&hir);
        crate::verify(&module).expect("lowered module must verify");
        assert_eq!(module.funcs.len(), 1);
        assert_eq!(module.funcs[0].arity, 1);
        assert!(module.funcs[0].regs >= 2);
    }
}
