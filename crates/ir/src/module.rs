//! IR data structures.

use std::collections::HashMap;

pub use graft_lang::hir::{BinOp, UnOp};
use graft_api::RegionSpec;

/// A virtual register index within one function frame.
pub type Reg = u16;

/// Where an indexed memory access goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRef {
    /// A kernel-shared region, by ABI declaration order.
    Region(u16),
    /// A module-embedded read-only constant pool.
    Pool(u16),
}

/// One IR instruction.
///
/// `Shared`/`Pool` accesses are expressed as a region id plus an index
/// register; the load-time translator decides how (and whether) the index
/// is checked. The `MaskedLoad`/`MaskedStore`/`Mask` forms never appear
/// in lowered code — they are produced by the SFI instrumentation pass in
/// `engine-native` and accepted by the verifier only in SFI modules.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = op src`
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst = a op b` (never a short-circuit operator).
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Unconditional jump to an instruction index.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// Conditional branch: jump to `then_t` if `cond != 0`, else `else_t`.
    Br {
        /// Condition register.
        cond: Reg,
        /// Target when true.
        then_t: u32,
        /// Target when false.
        else_t: u32,
    },
    /// `dst = mem[addr]`
    Load {
        /// Destination register.
        dst: Reg,
        /// Memory being read.
        mem: MemRef,
        /// Index register.
        addr: Reg,
    },
    /// `mem[addr] = src`
    Store {
        /// Memory being written.
        mem: MemRef,
        /// Index register.
        addr: Reg,
        /// Value register.
        src: Reg,
    },
    /// `dst = globals[index]`
    GlobalGet {
        /// Destination register.
        dst: Reg,
        /// Global index.
        index: u16,
    },
    /// `globals[index] = src`
    GlobalSet {
        /// Global index.
        index: u16,
        /// Value register.
        src: Reg,
    },
    /// `dst = funcs[func](args...)`
    Call {
        /// Destination register (receives 0 from void functions).
        dst: Reg,
        /// Callee index.
        func: u32,
        /// Argument registers.
        args: Box<[Reg]>,
    },
    /// Return, with an optional value register.
    Ret {
        /// Value register, if the function returns one.
        src: Option<Reg>,
    },
    /// Raise [`graft_api::Trap::Abort`] with the code in `code`.
    Abort {
        /// Code register.
        code: Reg,
    },

    // ---- SFI-only instructions (inserted by instrumentation) ----
    /// `dst = (src + offset) & arena_mask` — the explicit sandboxing
    /// instruction of Wahbe et al.: adds the region's arena base and
    /// masks the result into the sandbox.
    Mask {
        /// Destination (sandboxed address) register.
        dst: Reg,
        /// Raw index register.
        src: Reg,
        /// Arena offset of the region being accessed.
        offset: u32,
    },
    /// `dst = arena[addr]` where `addr` was produced by [`Inst::Mask`]
    /// (only when read protection is enabled; otherwise reads compile to
    /// unmasked arena accesses via `MaskedLoad` with a pre-added base).
    MaskedLoad {
        /// Destination register.
        dst: Reg,
        /// Sandboxed address register.
        addr: Reg,
    },
    /// `arena[addr] = src` where `addr` was produced by [`Inst::Mask`].
    MaskedStore {
        /// Sandboxed address register.
        addr: Reg,
        /// Value register.
        src: Reg,
    },
    /// `dst = arena[src + offset]` — an *unprotected* sandbox read, used
    /// when read protection is disabled (the omniC++ 1.0β configuration
    /// the paper measured). The base add and wrap are fused into the
    /// access, so it costs the same as an unchecked read; enabling read
    /// protection replaces this with an explicit [`Inst::Mask`] +
    /// [`Inst::MaskedLoad`] pair.
    ArenaLoad {
        /// Destination register.
        dst: Reg,
        /// Raw index register.
        src: Reg,
        /// Arena offset of the region being read.
        offset: u32,
    },
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunc {
    /// Function name.
    pub name: String,
    /// Number of parameters (registers `0..arity` on entry).
    pub arity: usize,
    /// Total virtual registers used.
    pub regs: usize,
    /// Flat instruction stream.
    pub code: Vec<Inst>,
}

/// A lowered module: the downloadable unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Functions, in declaration order.
    pub funcs: Vec<IrFunc>,
    /// Initial values of module globals.
    pub globals: Vec<i64>,
    /// Read-only constant pools.
    pub const_pools: Vec<Vec<i64>>,
    /// The shared-region ABI the module was compiled against.
    pub regions: Vec<RegionSpec>,
    /// Function name → index.
    pub func_index: HashMap<String, usize>,
}

impl Module {
    /// Looks up a function index by name.
    pub fn func_id(&self, name: &str) -> Option<usize> {
        self.func_index.get(name).copied()
    }

    /// Total instruction count across all functions (a code-size metric
    /// used by the SFI expansion tests and reports).
    pub fn code_len(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_is_reasonably_small() {
        // The dispatch loop streams these; keep them cache-friendly.
        assert!(std::mem::size_of::<Inst>() <= 24);
    }

    #[test]
    fn code_len_sums_functions() {
        let m = Module {
            funcs: vec![
                IrFunc {
                    name: "a".into(),
                    arity: 0,
                    regs: 1,
                    code: vec![Inst::Ret { src: None }],
                },
                IrFunc {
                    name: "b".into(),
                    arity: 0,
                    regs: 1,
                    code: vec![
                        Inst::Const { dst: 0, value: 1 },
                        Inst::Ret { src: Some(0) },
                    ],
                },
            ],
            globals: vec![],
            const_pools: vec![],
            regions: vec![],
            func_index: HashMap::new(),
        };
        assert_eq!(m.code_len(), 3);
    }
}
