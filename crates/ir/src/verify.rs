//! Load-time IR verification.
//!
//! The paper (Section 4.2) notes that a kernel accepting compiled
//! extensions must verify at load time that the code it was handed is
//! well-formed — either by translating it itself or by checking marks
//! left by a trusted toolchain. This verifier is the former: a
//! linear-time structural check run before any engine translates a
//! module.
//!
//! The SFI-specific part — that every arena store is immediately
//! preceded by a `Mask` of its address register — lives in
//! `engine-native::sfi`, because only SFI-instrumented modules contain
//! masked instructions; this verifier *rejects* them in ordinary modules
//! (`allow_masked = false`).

use graft_api::GraftError;
use graft_lang::hir::BinOp;

use crate::module::{Inst, IrFunc, MemRef, Module};

/// Verifies a freshly lowered (non-SFI) module.
pub fn verify(module: &Module) -> Result<(), GraftError> {
    verify_with(module, false)
}

/// Verifies a module, optionally accepting SFI-inserted masked
/// instructions (used by the SFI engine after instrumentation).
pub fn verify_with(module: &Module, allow_masked: bool) -> Result<(), GraftError> {
    for func in &module.funcs {
        verify_func(module, func, allow_masked)
            .map_err(|msg| GraftError::Verify(format!("{}: {msg}", func.name)))?;
    }
    Ok(())
}

fn verify_func(module: &Module, func: &IrFunc, allow_masked: bool) -> Result<(), String> {
    if func.arity > func.regs {
        return Err(format!(
            "arity {} exceeds register count {}",
            func.arity, func.regs
        ));
    }
    if func.code.is_empty() {
        return Err("empty code".into());
    }
    let len = func.code.len() as u32;
    let reg_ok = |r: u16| (r as usize) < func.regs;
    let target_ok = |t: u32| t < len;
    for (at, inst) in func.code.iter().enumerate() {
        let ok = match inst {
            Inst::Const { dst, .. } => reg_ok(*dst),
            Inst::Mov { dst, src } => reg_ok(*dst) && reg_ok(*src),
            Inst::Un { dst, src, .. } => reg_ok(*dst) && reg_ok(*src),
            Inst::Bin { op, dst, a, b } => {
                if matches!(op, BinOp::LogicalAnd | BinOp::LogicalOr) {
                    return Err(format!(
                        "short-circuit operator materialized as Bin at {at}"
                    ));
                }
                reg_ok(*dst) && reg_ok(*a) && reg_ok(*b)
            }
            Inst::Jmp { target } => target_ok(*target),
            Inst::Br {
                cond,
                then_t,
                else_t,
            } => reg_ok(*cond) && target_ok(*then_t) && target_ok(*else_t),
            Inst::Load { dst, mem, addr } => {
                reg_ok(*dst) && reg_ok(*addr) && mem_ok(module, *mem)
            }
            Inst::Store { mem, addr, src } => {
                if let MemRef::Pool(_) = mem {
                    return Err(format!("store into constant pool at {at}"));
                }
                if let MemRef::Region(r) = mem {
                    match module.regions.get(*r as usize) {
                        Some(spec) if !spec.writable => {
                            return Err(format!("store into read-only region at {at}"))
                        }
                        _ => {}
                    }
                }
                reg_ok(*addr) && reg_ok(*src) && mem_ok(module, *mem)
            }
            Inst::GlobalGet { dst, index } => {
                reg_ok(*dst) && (*index as usize) < module.globals.len()
            }
            Inst::GlobalSet { index, src } => {
                reg_ok(*src) && (*index as usize) < module.globals.len()
            }
            Inst::Call { dst, func: f, args } => {
                let Some(callee) = module.funcs.get(*f as usize) else {
                    return Err(format!("call to unknown function {f} at {at}"));
                };
                if callee.arity != args.len() {
                    return Err(format!(
                        "call to `{}` with {} args (arity {}) at {at}",
                        callee.name,
                        args.len(),
                        callee.arity
                    ));
                }
                reg_ok(*dst) && args.iter().all(|a| reg_ok(*a))
            }
            Inst::Ret { src } => src.is_none_or(reg_ok),
            Inst::Abort { code } => reg_ok(*code),
            Inst::Mask { dst, src, .. } => {
                if !allow_masked {
                    return Err(format!("SFI instruction outside SFI module at {at}"));
                }
                reg_ok(*dst) && reg_ok(*src)
            }
            Inst::MaskedLoad { dst, addr } => {
                if !allow_masked {
                    return Err(format!("SFI instruction outside SFI module at {at}"));
                }
                reg_ok(*dst) && reg_ok(*addr)
            }
            Inst::MaskedStore { addr, src } => {
                if !allow_masked {
                    return Err(format!("SFI instruction outside SFI module at {at}"));
                }
                reg_ok(*addr) && reg_ok(*src)
            }
            Inst::ArenaLoad { dst, src, .. } => {
                if !allow_masked {
                    return Err(format!("SFI instruction outside SFI module at {at}"));
                }
                reg_ok(*dst) && reg_ok(*src)
            }
        };
        if !ok {
            return Err(format!("operand out of range at {at}: {inst:?}"));
        }
    }
    Ok(())
}

fn mem_ok(module: &Module, mem: MemRef) -> bool {
    match mem {
        MemRef::Region(r) => (r as usize) < module.regions.len(),
        MemRef::Pool(p) => (p as usize) < module.const_pools.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::IrFunc;
    use std::collections::HashMap;

    fn module_with(code: Vec<Inst>, regs: usize) -> Module {
        let mut func_index = HashMap::new();
        func_index.insert("f".to_string(), 0);
        Module {
            funcs: vec![IrFunc {
                name: "f".into(),
                arity: 0,
                regs,
                code,
            }],
            globals: vec![0],
            const_pools: vec![vec![1, 2]],
            regions: vec![graft_api::RegionSpec::data("buf", 4)],
            func_index,
        }
    }

    #[test]
    fn accepts_wellformed_code() {
        let m = module_with(
            vec![
                Inst::Const { dst: 0, value: 3 },
                Inst::Load {
                    dst: 1,
                    mem: MemRef::Region(0),
                    addr: 0,
                },
                Inst::Ret { src: Some(1) },
            ],
            2,
        );
        verify(&m).unwrap();
    }

    #[test]
    fn rejects_register_out_of_range() {
        let m = module_with(vec![Inst::Const { dst: 9, value: 0 }, Inst::Ret { src: None }], 2);
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_jump_out_of_range() {
        let m = module_with(vec![Inst::Jmp { target: 99 }], 1);
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_store_to_pool() {
        let m = module_with(
            vec![
                Inst::Const { dst: 0, value: 0 },
                Inst::Store {
                    mem: MemRef::Pool(0),
                    addr: 0,
                    src: 0,
                },
                Inst::Ret { src: None },
            ],
            1,
        );
        let err = verify(&m).unwrap_err().to_string();
        assert!(err.contains("constant pool"));
    }

    #[test]
    fn rejects_bad_call_arity() {
        let m = module_with(
            vec![
                Inst::Call {
                    dst: 0,
                    func: 0,
                    args: vec![0].into_boxed_slice(),
                },
                Inst::Ret { src: None },
            ],
            1,
        );
        let err = verify(&m).unwrap_err().to_string();
        assert!(err.contains("arity"));
    }

    #[test]
    fn rejects_unknown_region() {
        let m = module_with(
            vec![
                Inst::Const { dst: 0, value: 0 },
                Inst::Load {
                    dst: 0,
                    mem: MemRef::Region(7),
                    addr: 0,
                },
                Inst::Ret { src: None },
            ],
            1,
        );
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_masked_instructions_outside_sfi() {
        let m = module_with(
            vec![
                Inst::Mask {
                    dst: 0,
                    src: 0,
                    offset: 0,
                },
                Inst::Ret { src: None },
            ],
            1,
        );
        let err = verify(&m).unwrap_err().to_string();
        assert!(err.contains("SFI"));
        verify_with(&m, true).unwrap();
    }

    #[test]
    fn rejects_store_to_read_only_region() {
        let mut m = module_with(
            vec![
                Inst::Const { dst: 0, value: 0 },
                Inst::Store {
                    mem: MemRef::Region(0),
                    addr: 0,
                    src: 0,
                },
                Inst::Ret { src: None },
            ],
            1,
        );
        m.regions = vec![graft_api::RegionSpec::read_only("input", 4)];
        let err = verify(&m).unwrap_err().to_string();
        assert!(err.contains("read-only"));
    }
}
