//! Human-readable IR disassembly, for debugging grafts and for the SFI
//! instrumentation tests.

use std::fmt::Write as _;

use crate::module::{Inst, IrFunc, MemRef, Module};

/// Renders one instruction.
pub fn inst(i: &Inst) -> String {
    match i {
        Inst::Const { dst, value } => format!("r{dst} = {value}"),
        Inst::Mov { dst, src } => format!("r{dst} = r{src}"),
        Inst::Un { op, dst, src } => format!("r{dst} = {op:?} r{src}"),
        Inst::Bin { op, dst, a, b } => format!("r{dst} = r{a} {op:?} r{b}"),
        Inst::Jmp { target } => format!("jmp @{target}"),
        Inst::Br {
            cond,
            then_t,
            else_t,
        } => format!("br r{cond} ? @{then_t} : @{else_t}"),
        Inst::Load { dst, mem, addr } => format!("r{dst} = {}[r{addr}]", mem_name(*mem)),
        Inst::Store { mem, addr, src } => format!("{}[r{addr}] = r{src}", mem_name(*mem)),
        Inst::GlobalGet { dst, index } => format!("r{dst} = g{index}"),
        Inst::GlobalSet { index, src } => format!("g{index} = r{src}"),
        Inst::Call { dst, func, args } => {
            let args: Vec<String> = args.iter().map(|a| format!("r{a}")).collect();
            format!("r{dst} = call f{func}({})", args.join(", "))
        }
        Inst::Ret { src: Some(s) } => format!("ret r{s}"),
        Inst::Ret { src: None } => "ret".to_string(),
        Inst::Abort { code } => format!("abort r{code}"),
        Inst::Mask { dst, src, offset } => format!("r{dst} = sfi_mask(r{src} + {offset})"),
        Inst::MaskedLoad { dst, addr } => format!("r{dst} = arena[r{addr}]"),
        Inst::MaskedStore { addr, src } => format!("arena[r{addr}] = r{src}"),
        Inst::ArenaLoad { dst, src, offset } => {
            format!("r{dst} = arena[r{src} + {offset}] (unprotected)")
        }
    }
}

fn mem_name(mem: MemRef) -> String {
    match mem {
        MemRef::Region(r) => format!("region{r}"),
        MemRef::Pool(p) => format!("pool{p}"),
    }
}

/// Renders one function.
pub fn func(f: &IrFunc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn {} (arity {}, regs {}):", f.name, f.arity, f.regs);
    for (at, i) in f.code.iter().enumerate() {
        let _ = writeln!(out, "  @{at:<4} {}", inst(i));
    }
    out
}

/// Renders a whole module.
pub fn module(m: &Module) -> String {
    let mut out = String::new();
    for f in &m.funcs {
        out.push_str(&func(f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::RegionSpec;

    #[test]
    fn disassembly_mentions_every_instruction() {
        let hir = graft_lang::compile(
            "var g = 0; fn f(x: int) -> int { g = x; if x > 0 { return buf[x]; } return g; }",
            &[RegionSpec::data("buf", 8)],
        )
        .unwrap();
        let m = crate::lower(&hir);
        let text = module(&m);
        assert!(text.contains("fn f"));
        assert!(text.contains("region0["));
        assert!(text.contains("br "));
        assert!(text.contains("ret"));
        // One line per instruction plus the header and trailing newline.
        assert_eq!(
            text.trim_end().lines().count(),
            m.funcs[0].code.len() + 1
        );
    }
}
