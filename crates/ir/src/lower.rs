//! Lowering from Grail HIR to register IR.

use graft_lang::hir::{self, BinOp, Expr, Program, RegionRef, Stmt};

use crate::module::{Inst, IrFunc, MemRef, Module, Reg};

/// Lowers a checked program to an IR module.
pub fn lower(program: &Program) -> Module {
    let funcs = program
        .funcs
        .iter()
        .map(|f| FnLower::new(f).run())
        .collect();
    Module {
        funcs,
        globals: program.globals.iter().map(|g| g.init).collect(),
        const_pools: program.const_pools.iter().map(|p| p.values.clone()).collect(),
        regions: program.regions.clone(),
        func_index: program.func_index.clone(),
    }
}

fn mem_of(region: RegionRef) -> MemRef {
    match region {
        RegionRef::Shared(i) => MemRef::Region(i),
        RegionRef::Pool(i) => MemRef::Pool(i),
    }
}

struct LoopCtx {
    /// Instruction indexes of `Jmp`s to patch to the loop exit.
    break_patches: Vec<usize>,
    /// Target of `continue` (the condition re-evaluation point).
    continue_target: u32,
}

struct FnLower<'a> {
    func: &'a hir::Func,
    code: Vec<Inst>,
    /// Next free temporary register.
    next_temp: usize,
    /// High-water mark across the whole function.
    regs_high: usize,
    loops: Vec<LoopCtx>,
}

impl<'a> FnLower<'a> {
    fn new(func: &'a hir::Func) -> Self {
        FnLower {
            func,
            code: Vec::new(),
            next_temp: func.frame_size,
            regs_high: func.frame_size.max(1),
            loops: Vec::new(),
        }
    }

    fn run(mut self) -> IrFunc {
        for stmt in &self.func.body {
            self.stmt(stmt);
        }
        // Fallthrough return for void functions (unreachable when the
        // checker proved all paths return).
        self.code.push(Inst::Ret { src: None });
        IrFunc {
            name: self.func.name.clone(),
            arity: self.func.params.len(),
            regs: self.regs_high,
            code: self.code,
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_temp;
        self.next_temp += 1;
        self.regs_high = self.regs_high.max(self.next_temp);
        assert!(r <= Reg::MAX as usize, "function uses too many registers");
        r as Reg
    }

    /// Resets the temporary cursor between statements; slots below
    /// `frame_size` are stable locals and never reused.
    fn reset_temps(&mut self) {
        self.next_temp = self.func.frame_size;
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a placeholder jump, returning its index for later patching.
    fn emit_jmp_placeholder(&mut self) -> usize {
        self.code.push(Inst::Jmp { target: u32::MAX });
        self.code.len() - 1
    }

    fn patch_jmp(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Inst::Jmp { target: t } => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        self.reset_temps();
        match stmt {
            Stmt::Let { slot, init } | Stmt::AssignLocal { slot, value: init } => {
                let v = self.expr(init);
                if v != *slot as Reg {
                    self.code.push(Inst::Mov {
                        dst: *slot as Reg,
                        src: v,
                    });
                }
            }
            Stmt::AssignGlobal { index, value } => {
                let v = self.expr(value);
                self.code.push(Inst::GlobalSet {
                    index: *index as u16,
                    src: v,
                });
            }
            Stmt::Store {
                region,
                index,
                value,
            } => {
                let addr = self.expr(index);
                let src = self.expr(value);
                self.code.push(Inst::Store {
                    mem: mem_of(*region),
                    addr,
                    src,
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.expr(cond);
                let br_at = self.code.len();
                self.code.push(Inst::Br {
                    cond: c,
                    then_t: u32::MAX,
                    else_t: u32::MAX,
                });
                let then_start = self.here();
                for s in then_branch {
                    self.stmt(s);
                }
                let skip_else = if else_branch.is_empty() {
                    None
                } else {
                    Some(self.emit_jmp_placeholder())
                };
                let else_start = self.here();
                for s in else_branch {
                    self.stmt(s);
                }
                let end = self.here();
                if let Inst::Br { then_t, else_t, .. } = &mut self.code[br_at] {
                    *then_t = then_start;
                    *else_t = else_start;
                }
                if let Some(j) = skip_else {
                    self.patch_jmp(j, end);
                }
            }
            Stmt::While { cond, body } => {
                let cond_start = self.here();
                let c = self.expr(cond);
                let br_at = self.code.len();
                self.code.push(Inst::Br {
                    cond: c,
                    then_t: u32::MAX,
                    else_t: u32::MAX,
                });
                let body_start = self.here();
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_target: cond_start,
                });
                for s in body {
                    self.stmt(s);
                }
                self.code.push(Inst::Jmp { target: cond_start });
                let end = self.here();
                if let Inst::Br { then_t, else_t, .. } = &mut self.code[br_at] {
                    *then_t = body_start;
                    *else_t = end;
                }
                let ctx = self.loops.pop().expect("loop context");
                for at in ctx.break_patches {
                    self.patch_jmp(at, end);
                }
            }
            Stmt::Break => {
                let at = self.emit_jmp_placeholder();
                self.loops
                    .last_mut()
                    .expect("break outside loop rejected by checker")
                    .break_patches
                    .push(at);
            }
            Stmt::Continue => {
                let target = self
                    .loops
                    .last()
                    .expect("continue outside loop rejected by checker")
                    .continue_target;
                self.code.push(Inst::Jmp { target });
            }
            Stmt::Return(value) => {
                let src = value.as_ref().map(|v| self.expr(v));
                self.code.push(Inst::Ret { src });
            }
            Stmt::Expr(e) => {
                self.expr(e);
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Int(v) => {
                let dst = self.fresh();
                self.code.push(Inst::Const { dst, value: *v });
                dst
            }
            Expr::Local(slot) => *slot as Reg,
            Expr::Global(index) => {
                let dst = self.fresh();
                self.code.push(Inst::GlobalGet {
                    dst,
                    index: *index as u16,
                });
                dst
            }
            Expr::Load { region, index } => {
                let addr = self.expr(index);
                let dst = self.fresh();
                self.code.push(Inst::Load {
                    dst,
                    mem: mem_of(*region),
                    addr,
                });
                dst
            }
            Expr::Unary { op, expr } => {
                let src = self.expr(expr);
                let dst = self.fresh();
                self.code.push(Inst::Un { op: *op, dst, src });
                dst
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::LogicalAnd => self.short_circuit(lhs, rhs, true),
                BinOp::LogicalOr => self.short_circuit(lhs, rhs, false),
                _ => {
                    let a = self.expr(lhs);
                    let b = self.expr(rhs);
                    let dst = self.fresh();
                    self.code.push(Inst::Bin {
                        op: *op,
                        dst,
                        a,
                        b,
                    });
                    dst
                }
            },
            Expr::Call { func, args } => {
                let arg_regs: Box<[Reg]> = args.iter().map(|a| self.expr(a)).collect();
                let dst = self.fresh();
                self.code.push(Inst::Call {
                    dst,
                    func: *func as u32,
                    args: arg_regs,
                });
                dst
            }
            Expr::Abort { code } => {
                let c = self.expr(code);
                self.code.push(Inst::Abort { code: c });
                // Abort never returns; the register is a placeholder.
                let dst = self.fresh();
                self.code.push(Inst::Const { dst, value: 0 });
                dst
            }
        }
    }

    /// Lowers `a && b` (`is_and`) or `a || b` with short-circuit control
    /// flow.
    fn short_circuit(&mut self, lhs: &Expr, rhs: &Expr, is_and: bool) -> Reg {
        let dst = self.fresh();
        let a = self.expr(lhs);
        let br_at = self.code.len();
        self.code.push(Inst::Br {
            cond: a,
            then_t: u32::MAX,
            else_t: u32::MAX,
        });
        // Path that evaluates the right-hand side.
        let eval_rhs = self.here();
        let b = self.expr(rhs);
        self.code.push(Inst::Mov { dst, src: b });
        let done_jmp = self.emit_jmp_placeholder();
        // Path that short-circuits to a constant.
        let short = self.here();
        self.code.push(Inst::Const {
            dst,
            value: if is_and { 0 } else { 1 },
        });
        let end = self.here();
        if let Inst::Br { then_t, else_t, .. } = &mut self.code[br_at] {
            if is_and {
                // true → evaluate rhs, false → result 0.
                *then_t = eval_rhs;
                *else_t = short;
            } else {
                // true → result 1, false → evaluate rhs.
                *then_t = short;
                *else_t = eval_rhs;
            }
        }
        self.patch_jmp(done_jmp, end);
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_api::RegionSpec;

    fn lower_src(src: &str) -> Module {
        let hir = graft_lang::compile(src, &[RegionSpec::data("buf", 8)]).unwrap();
        lower(&hir)
    }

    #[test]
    fn params_land_in_low_registers() {
        let m = lower_src("fn f(a: int, b: int) -> int { return a + b; }");
        let f = &m.funcs[0];
        assert_eq!(f.arity, 2);
        assert!(matches!(
            f.code[0],
            Inst::Bin { op: BinOp::Add, a: 0, b: 1, .. }
        ));
    }

    #[test]
    fn while_loop_has_backedge() {
        let m = lower_src("fn f() { let i = 0; while i < 3 { i = i + 1; } }");
        let f = &m.funcs[0];
        let has_backedge = f
            .code
            .iter()
            .enumerate()
            .any(|(at, inst)| matches!(inst, Inst::Jmp { target } if (*target as usize) < at));
        assert!(has_backedge, "loop must produce a backward jump: {f:?}");
    }

    #[test]
    fn break_jumps_past_loop_end() {
        let m = lower_src("fn f() { while true { break; } buf[0] = 1; }");
        let f = &m.funcs[0];
        // All jump targets must be in range (the placeholder u32::MAX
        // would blow this up if the patching missed one).
        for inst in &f.code {
            match inst {
                Inst::Jmp { target } => assert!((*target as usize) <= f.code.len()),
                Inst::Br { then_t, else_t, .. } => {
                    assert!((*then_t as usize) <= f.code.len());
                    assert!((*else_t as usize) <= f.code.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn short_circuit_and_does_not_always_eval_rhs() {
        let m = lower_src(
            "fn f(x: int) -> bool { return x != 0 && buf[0] / x > 0; }",
        );
        let f = &m.funcs[0];
        // Must contain a branch (short-circuit), not just a Bin for `&&`.
        assert!(f.code.iter().any(|i| matches!(i, Inst::Br { .. })));
        assert!(!f
            .code
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinOp::LogicalAnd, .. })));
    }

    #[test]
    fn void_function_ends_with_ret_none() {
        let m = lower_src("fn f() { buf[0] = 1; }");
        assert_eq!(*m.funcs[0].code.last().unwrap(), Inst::Ret { src: None });
    }

    #[test]
    fn globals_and_pools_carry_initial_values() {
        let m = lower_src("const K[2] = { 5, 6 }; var g = 9; fn f() { g = K[1]; }");
        assert_eq!(m.globals, vec![9]);
        assert_eq!(m.const_pools, vec![vec![5, 6]]);
    }

    #[test]
    fn temporaries_reset_between_statements() {
        // Two statements with equally deep expressions should reuse the
        // same temp registers rather than growing the frame.
        let m1 = lower_src("fn f() { buf[0] = 1 + 2 * 3; }");
        let m2 = lower_src("fn f() { buf[0] = 1 + 2 * 3; buf[1] = 4 + 5 * 6; buf[2] = 7 + 8 * 9; }");
        assert_eq!(m1.funcs[0].regs, m2.funcs[0].regs);
    }
}
